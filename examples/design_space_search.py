"""Design-space exploration: screen, search, rank, and report.

Section V of the paper maps the accuracy/complexity trade-off by
building every model variant by hand.  This example runs the chaos-dse
campaign engine over the same space on a platform of your choice:
a fractional-factorial screen to rank which knobs matter, a small
seeded genetic search whose candidate evaluations are cacheable engine
tasks, the Pareto frontier with MCDM scores, and the self-contained
HTML report.  It then re-runs the search against the same artifact
cache to show the crash-resume contract: every candidate is served
warm and the campaign payload is bit-identical.

Run with:  python examples/design_space_search.py [platform]
           (platform: atom, core2, athlon, opteron, xeon_sata, xeon_sas)
"""

import sys
import tempfile

from repro.dse import (
    OBJECTIVE_NAMES,
    CampaignConfig,
    GAConfig,
    build_substrate,
    chaos_space,
    save_report,
    screen_campaign,
    search_campaign,
)
from repro.engine import ArtifactCache
from repro.framework import render_table


def main(platform_key: str = "atom") -> None:
    config = CampaignConfig(
        platform=platform_key,
        workload="sort",
        machines=2,
        runs=2,
        seed=2012,
        ranking="catalog",
        probe_seconds=5,
        ga=GAConfig(population=10, generations=3, elites=2),
    )
    substrate = build_substrate(
        config.platform,
        config.workload,
        n_machines=config.machines,
        n_runs=config.runs,
        seed=config.seed,
        ranking=config.ranking,
    )
    space = chaos_space(substrate)
    print(f"=== chaos-dse campaign on {platform_key}/sort ===\n")
    print(f"design space {space.digest()[:12]}: "
          + ", ".join(p.name for p in space.parameters) + "\n")

    with tempfile.TemporaryDirectory() as tmp:
        cache = ArtifactCache(tmp)

        # 1. Screen: which parameters move the objectives at all?
        screen = screen_campaign(config, substrate=substrate, cache=cache)
        print(render_table(
            ["parameter", "strength"] + list(OBJECTIVE_NAMES),
            [
                [factor.name, f"{factor.strength:.3f}"]
                + [f"{effect:+.4g}" for effect in factor.effects]
                for factor in screen.factors
            ],
            title=f"screening: {screen.n_runs_evaluated} factorial runs, "
                  f"main effects (mean high - mean low)",
        ))

        # 2. Search: spend the budget where the screen says it pays.
        result = search_campaign(config, substrate=substrate, cache=cache)
        print(f"\nsearch: {len(result.candidates)} candidates evaluated, "
              f"frontier {len(result.frontier)}, "
              f"payload {result.payload_digest()[:12]}")

        # 3. Rank: the frontier is partial, the MCDM score is total.
        rows = []
        for entry in result.mcdm[:5]:
            verdict = result.candidates[entry["digest"]]
            detail = verdict.get("detail") or {}
            rows.append(
                [entry["digest"][:10],
                 str(detail.get("label", "?")),
                 f"{entry['score']:.4f}"]
                + [f"{verdict['objectives'][name]:.4g}"
                   for name in OBJECTIVE_NAMES]
            )
        print(render_table(
            ["candidate", "config", "mcdm"] + list(OBJECTIVE_NAMES),
            rows,
            title="top candidates (weighted score, lower = better)",
        ))

        # 4. Report: one self-contained HTML file, no external fetches.
        save_report(result.to_payload(), "dse_report.html")
        print("\nfrontier report -> dse_report.html")

        # 5. Resume: same config + same cache = pure warm replay.
        rerun = search_campaign(config, substrate=substrate, cache=cache)
        hit_rate = rerun.telemetry.to_summary()["hit_rate"]
        identical = rerun.payload_digest() == result.payload_digest()
        print(f"warm re-run: cache hit rate {hit_rate:.2f}, "
              f"payload identical: {identical}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "atom")
