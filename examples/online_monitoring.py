"""Online monitoring: the deployed 1 Hz agent loop.

What actually runs on a production host: once per second, read the
selected OS counters, feed them to the streaming predictor, and hand the
watts estimate to whatever consumes it (here: a power-cap controller and
a rolling dashboard).  This example also demonstrates model persistence —
the model is trained once, saved to JSON, and the "agent" loads it cold,
exactly as a fleet rollout would.

Run with:  python examples/online_monitoring.py
"""

import tempfile

from repro.applications import CapState, GuardBand, PowerCapController
from repro.cluster import execute_runs
from repro.framework import OnlinePowerPredictor, train_platform_model
from repro.models import load_platform_model, save_platform_model
from repro.platforms import OPTERON
from repro.workloads import SortWorkload


def main() -> None:
    print("=== Online monitoring agent (Opteron, Sort) ===\n")

    # Characterization phase: train once, ship a JSON artifact.
    trained = train_platform_model(OPTERON, n_runs=3, seed=55)
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        model_path = handle.name
    save_platform_model(trained.platform_model, model_path)
    print(f"model trained and saved ({len(trained.selected_counters)} "
          f"counters) -> {model_path}")

    # Production host: load the artifact, stream counters through it.
    platform_model = load_platform_model(model_path)
    predictor = OnlinePowerPredictor(platform_model, history_seconds=120)
    controller = PowerCapController(
        cap_w=185.0,
        guard_band=GuardBand(watts=4.0, quantile=0.999),
    )

    live = execute_runs(
        trained.cluster, SortWorkload(), n_runs=4, seed=trained.cluster.seed
    )[-1]
    machine_id = live.machine_ids[0]
    log = live.logs[machine_id]

    print(f"\nstreaming {log.n_seconds} seconds of {machine_id}:")
    throttle_seconds = 0
    for t in range(log.n_seconds):
        sample = {
            name: float(log.column(name)[t])
            for name in predictor.required_counters
        }
        watts = predictor.observe(sample)
        if controller.step(watts) is CapState.THROTTLED:
            throttle_seconds += 1
        if t % 60 == 0:
            print(
                f"  t={t:4d}s  predicted {watts:6.1f} W  "
                f"rolling(60s) {predictor.rolling_mean_w(60):6.1f} W  "
                f"state={controller.state.value}"
            )

    actual = log.power_w
    print(
        f"\nrun summary: predicted peak {predictor.peak_w():.1f} W "
        f"(metered peak {actual.max():.1f} W), "
        f"throttled {throttle_seconds}s of {log.n_seconds}s"
    )


if __name__ == "__main__":
    main()
