"""Heterogeneous clusters: compose per-platform models for free.

The paper's Section V-B scenario: a data center mixes mobile-class
Core 2 machines with Opteron servers in one 10-machine cluster.  CHAOS
trains one machine model per platform (on that platform's homogeneous
cluster) and composes cluster power as the Eq. 5 sum, applying each
machine its own platform's model — no retraining on the mixed cluster.

Run with:  python examples/heterogeneous_cluster.py
"""

import numpy as np

from repro.cluster import Cluster, execute_runs
from repro.framework import compose_heterogeneous, train_platform_model
from repro.metrics import AccuracyReport
from repro.platforms import CORE2, OPTERON
from repro.workloads import default_suite


def main() -> None:
    print("=== Heterogeneous cluster composition (Core 2 + Opteron) ===\n")

    # One CHAOS model per platform, trained independently.
    trained = []
    for spec in (CORE2, OPTERON):
        print(f"training {spec.display_name} ...")
        trained.append(train_platform_model(spec, n_runs=3, seed=88))
    print()

    # A mixed 10-machine cluster; same seed means the Opteron machines are
    # the very same individuals the Opteron model was trained around.
    mixed = Cluster.heterogeneous([(CORE2, 5), (OPTERON, 5)], seed=88)
    model = compose_heterogeneous(trained, mixed)

    print(f"mixed cluster: {mixed.name} ({mixed.n_machines} machines)")
    print("predicting every workload on the mixed cluster:\n")

    worst_dre = 0.0
    for name, workload in default_suite().items():
        run = execute_runs(mixed, workload, n_runs=1)[0]
        measured = run.cluster_power()
        predicted = model.predict_cluster(run)
        report = AccuracyReport.from_predictions(measured, predicted)
        worst_dre = max(worst_dre, report.dre)
        print(
            f"  {name:10s} measured {measured.min():4.0f}-"
            f"{measured.max():4.0f} W | predicted "
            f"{predicted.min():4.0f}-{predicted.max():4.0f} W | "
            f"DRE {report.dre:.1%}"
        )

    print(
        f"\nworst-case cluster DRE: {worst_dre:.1%} "
        "(paper: same ~12% worst case as homogeneous clusters)"
    )

    # Per-platform attribution: who is burning the rack budget?
    run = execute_runs(mixed, default_suite()["sort"], n_runs=1)[0]
    by_platform: dict[str, np.ndarray] = {}
    for machine in mixed.machines:
        prediction = model.predict_machine(run, machine.machine_id)
        key = machine.spec.key
        by_platform[key] = by_platform.get(key, 0) + prediction
    print("\npredicted mean power by platform during Sort:")
    for platform, series in by_platform.items():
        print(f"  {platform}: {np.mean(series):.0f} W")


if __name__ == "__main__":
    main()
