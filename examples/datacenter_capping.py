"""Power capping with CHAOS models — the paper's motivating use case.

A data-center operator wants to enforce a rack power cap without per-
server metering hardware (Section I: model-based power capping, and the
cost of inaccuracy — every watt of model error becomes guard band,
stranding power).

This example uses the ``repro.applications`` layer end to end:

1. train CHAOS models for a Xeon (SAS) cluster;
2. size a guard band from validation error (``GuardBand``);
3. drive a hysteretic ``PowerCapController`` from *predicted* power on an
   unseen PageRank run and score it against the (hidden) meters;
4. show what the same model error costs at provisioning time.

Run with:  python examples/datacenter_capping.py
"""

import numpy as np

from repro.applications import (
    GuardBand,
    MachinePowerProfile,
    PowerCapController,
    assess_capping,
    plan_provisioning,
)
from repro.cluster import execute_runs
from repro.framework import train_platform_model
from repro.platforms import XEON_SAS
from repro.workloads import PageRankWorkload

RACK_CAP_W = 1550.0
"""Contractual rack budget for the five Xeon machines: deliberately
tight, so PageRank's compute bursts genuinely cross it."""


def _cluster_prediction(trained, run) -> np.ndarray:
    return np.sum(
        [
            trained.platform_model.predict_log(run.logs[machine_id])
            for machine_id in run.machine_ids
        ],
        axis=0,
    )


def main() -> None:
    print("=== Model-based power capping on the Xeon/SAS cluster ===\n")

    trained = train_platform_model(XEON_SAS, n_runs=4, seed=77)
    print(
        f"trained quadratic model on {len(trained.selected_counters)} "
        "OS counters (no power meters needed at runtime)\n"
    )

    # Guard band from a validation run the model did not train on.
    runs = execute_runs(
        trained.cluster, PageRankWorkload(), n_runs=6,
        seed=trained.cluster.seed,
    )
    validation, live = runs[-2], runs[-1]
    band = GuardBand.from_errors(
        validation.cluster_power(),
        _cluster_prediction(trained, validation),
        quantile=0.999,
    )
    print(
        f"guard band from validation: {band.watts:.1f} W at the "
        f"{band.quantile:.1%} underprediction quantile"
    )

    # Drive the capper on the live run's *predictions*.
    controller = PowerCapController(cap_w=RACK_CAP_W, guard_band=band)
    predicted = _cluster_prediction(trained, live)
    measured = live.cluster_power()
    assessment = assess_capping(controller, predicted, measured)

    print(f"\nrack cap {RACK_CAP_W:.0f} W, throttle threshold "
          f"{controller.threshold_w:.0f} W")
    true_overshoots = (
        assessment.missed_overshoot_seconds
        + assessment.covered_overshoot_seconds
    )
    print(
        f"measured {measured.min():.0f}-{measured.max():.0f} W over "
        f"{assessment.total_seconds} s; true overshoots: "
        f"{true_overshoots} s"
    )
    print(
        f"capper coverage of overshoots: {assessment.coverage:.1%} "
        f"(missed {assessment.missed_overshoot_seconds} s); "
        f"throttle duty {assessment.throttle_duty:.1%}"
    )
    print(
        f"stranded power from model error: {controller.stranded_w:.1f} W "
        f"({controller.stranded_w / RACK_CAP_W:.2%} of the rack budget)"
    )

    # The provisioning view of the same error (Section V-D).
    per_machine = trained.platform_model.predict_log(
        live.logs[live.machine_ids[0]]
    )
    profile = MachinePowerProfile.from_predictions("xeon_sas", per_machine)
    oracle = plan_provisioning(20000.0, profile)
    with_error = plan_provisioning(
        20000.0, profile, model_guard_band_w=band.watts / 5.0
    )
    print(
        f"\nprovisioning a 20 kW room: {oracle.machines_supported} machines "
        f"with a perfect model vs {with_error.machines_supported} with the "
        f"guard band -> model error costs "
        f"{with_error.machines_lost_to_guard_band} machine(s)"
    )


if __name__ == "__main__":
    main()
