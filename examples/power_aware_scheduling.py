"""Power-aware job placement across a heterogeneous rack.

Section V-B closes with "CHAOS power models could be used in a
heterogeneous cluster environment for power capping and power-aware
resource scheduling."  This example does the scheduling half: a rack of
Core 2 and Opteron machines, each under its own power limit, receives a
queue of jobs with known counter footprints; the scheduler places each
job where the *predicted* power leaves the most headroom.

Run with:  python examples/power_aware_scheduling.py
"""

from repro.applications import JobRequest, MachineSlot, PowerAwareScheduler
from repro.framework import train_platform_model
from repro.models.featuresets import (
    CPU_UTILIZATION_COUNTER,
    FREQUENCY_COUNTER,
)
from repro.platforms import CORE2, OPTERON


def main() -> None:
    print("=== Power-aware scheduling on a mixed rack ===\n")

    trained = {}
    for spec in (CORE2, OPTERON):
        print(f"training {spec.key} model ...")
        trained[spec.key] = train_platform_model(spec, n_runs=3, seed=121)
    print()

    models = {
        key: item.platform_model for key, item in trained.items()
    }

    # Idle counter levels per platform, read off a real idle second.
    def idle_counters(key):
        run = trained[key].runs_by_workload["wordcount"][0]
        log = run.logs[run.machine_ids[0]]
        quietest = int(log.power_w.argmin())
        return {
            name: float(log.column(name)[quietest])
            for name in models[key].feature_set.counters
        }

    slots = (
        [
            MachineSlot(f"core2-{i:02d}", "core2", power_limit_w=42.0,
                        idle_counters=idle_counters("core2"))
            for i in range(3)
        ]
        + [
            MachineSlot(f"opteron-{i:02d}", "opteron", power_limit_w=175.0,
                        idle_counters=idle_counters("opteron"))
            for i in range(2)
        ]
    )
    scheduler = PowerAwareScheduler(platform_models=models, slots=slots)

    print("initial predicted headroom:")
    for slot in slots:
        print(f"  {slot.machine_id}: {scheduler.headroom_w(slot.machine_id):6.1f} W "
              f"(limit {slot.power_limit_w:.0f} W)")

    # A queue of jobs characterized by their expected counter footprint.
    # The footprint must cover the load-bearing counters: a busy job also
    # drives the DVFS governor, so expected frequency comes with it
    # (2000 MHz is within every platform's range here).
    jobs = [
        JobRequest(f"batch-{index}", {
            CPU_UTILIZATION_COUNTER: utilization,
            FREQUENCY_COUNTER: 2000.0,
        })
        for index, utilization in enumerate(
            [65.0, 40.0, 80.0, 55.0, 90.0, 30.0, 70.0]
        )
    ]

    print("\nplacing jobs:")
    placements = scheduler.place_all(jobs)
    for placement in placements:
        print(
            f"  {placement.job_name} -> {placement.machine_id} "
            f"(machine now at {placement.predicted_power_w:.1f} W predicted)"
        )
    skipped = len(jobs) - len(placements)
    if skipped:
        print(f"  ({skipped} job(s) unplaceable under the power limits)")

    print(
        f"\nrack total predicted power: "
        f"{scheduler.total_predicted_power_w():.1f} W across "
        f"{len(slots)} machines"
    )
    print("residual headroom:")
    for slot in slots:
        print(f"  {slot.machine_id}: {scheduler.headroom_w(slot.machine_id):6.1f} W")


if __name__ == "__main__":
    main()
