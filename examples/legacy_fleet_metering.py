"""Replacing meters on a legacy fleet — characterization-phase training.

Section III: "Training and model building ... can be done using a small
collection of machines, removing or augmenting instrumentation from the
install base in a data center."  This example plays that deployment
story end to end:

1. instrument only TWO machines of an Opteron fleet with WattsUp meters
   and train a CHAOS model on their telemetry;
2. roll the model out to the remaining, unmetered machines;
3. validate against the (simulated) ground-truth meters the operator
   doesn't have, including the per-machine spread caused by
   manufacturing variation.

Run with:  python examples/legacy_fleet_metering.py
"""

import numpy as np

from repro.cluster import Cluster, execute_runs
from repro.metrics import AccuracyReport
from repro.models import QuadraticPowerModel, cluster_set, pool_features
from repro.platforms import OPTERON
from repro.selection import run_algorithm1
from repro.workloads import default_suite


def main() -> None:
    print("=== Legacy fleet: train on 2 metered machines, deploy to 5 ===\n")

    fleet = Cluster.homogeneous(OPTERON, n_machines=5, seed=44)
    suite = default_suite()
    runs_by_workload = {
        name: execute_runs(fleet, workload, n_runs=3)
        for name, workload in suite.items()
    }

    metered = [m.machine_id for m in fleet.machines[:2]]
    unmetered = [m.machine_id for m in fleet.machines[2:]]
    print(f"metered during characterization: {metered}")
    print(f"production machines (no meters): {unmetered}\n")

    # Feature selection and model fitting see ONLY the metered machines.
    selection = run_algorithm1(
        fleet,
        runs_by_workload,
        platform_key="opteron",
        machine_ids=metered,
    )
    feature_set = cluster_set(selection.selected)
    design, power = pool_features(
        [run for runs in runs_by_workload.values() for run in runs],
        feature_set,
        machine_ids=metered,
    )
    model = QuadraticPowerModel(feature_set.feature_names).fit(design, power)
    print(
        f"model trained on {design.shape[0]} machine-seconds from "
        f"{len(metered)} machines, {len(selection.selected)} counters\n"
    )

    # Deploy: predict the unmetered machines on fresh runs and check
    # against ground truth the operator never sees.
    print("validation on fresh runs (per unmetered machine):")
    validation = execute_runs(
        fleet, suite["pagerank"], n_runs=5, seed=fleet.seed
    )[-1]
    dres = []
    for machine_id in unmetered:
        log = validation.logs[machine_id]
        prediction = model.predict(feature_set.extract(log))
        report = AccuracyReport.from_predictions(log.power_w, prediction)
        dres.append(report.dre)
        print(f"  {machine_id}: {report.describe()}")

    print(
        f"\nmean DRE on never-metered machines: {np.mean(dres):.1%} "
        f"(spread {np.min(dres):.1%}-{np.max(dres):.1%})"
    )
    print(
        "machine-to-machine variation is why the spread exists; pooled\n"
        "training across the metered machines is what keeps it bounded."
    )


if __name__ == "__main__":
    main()
