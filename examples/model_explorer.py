"""Model exploration: walk the accuracy/complexity trade-off yourself.

Section V of the paper builds "over 1200 models per cluster" to map how
modeling technique and feature choice trade complexity for accuracy.
This example runs a compact version of that exploration on a platform of
your choice and prints the grid, the per-model parameter counts, and the
paper-style winner label.

Run with:  python examples/model_explorer.py [platform]
           (platform: atom, core2, athlon, opteron, xeon_sata, xeon_sas)
"""

import sys

from repro.cluster import Cluster, execute_runs
from repro.framework import render_table, sweep_models
from repro.framework.reports import format_percent
from repro.models import (
    build_model,
    cluster_plus_lagged_frequency,
    cluster_set,
    cpu_only_set,
    pool_features,
)
from repro.platforms import get_platform
from repro.selection import run_algorithm1
from repro.workloads import default_suite


def main(platform_key: str = "opteron") -> None:
    spec = get_platform(platform_key)
    print(f"=== Model exploration on {spec.display_name} ===\n")

    cluster = Cluster.homogeneous(spec, seed=66)
    suite = default_suite()
    runs_by_workload = {
        name: execute_runs(cluster, workload, n_runs=4)
        for name, workload in suite.items()
    }

    print("running Algorithm 1 ...")
    selection = run_algorithm1(cluster, runs_by_workload)
    print(f"cluster feature set ({len(selection.selected)} counters):")
    for name in selection.selected:
        print(f"  {name}")
    print()

    feature_sets = [cpu_only_set(), cluster_set(selection.selected)]
    if spec.dvfs_mode.value != "none":
        feature_sets.append(
            cluster_plus_lagged_frequency(selection.selected)
        )

    for workload_name in ("prime", "pagerank"):
        sweep = sweep_models(
            runs_by_workload[workload_name], feature_sets, seed=2
        )
        rows = []
        for evaluation in sweep.evaluations:
            # Refit once on pooled data just to report parameter counts.
            fs = next(
                f for f in feature_sets
                if f.name == evaluation.feature_set_name
            )
            design, power = pool_features(
                runs_by_workload[workload_name][:1], fs
            )
            model = build_model(evaluation.model_code, fs).fit(design, power)
            rows.append([
                evaluation.label,
                format_percent(evaluation.mean_machine_dre),
                format_percent(evaluation.mean_cluster_dre),
                model.n_parameters,
            ])
        print(render_table(
            ["model", "machine DRE", "cluster DRE", "parameters"],
            rows,
            title=f"{workload_name} on {spec.key} "
                  f"({sweep.n_models_built} models cross-validated)",
        ))
        best = sweep.best()
        print(f"winner: {best.label} "
              f"({format_percent(best.mean_machine_dre)})\n")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "opteron")
