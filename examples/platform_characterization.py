"""Platform characterization: what a new machine looks like to CHAOS.

Before modeling a new platform, the paper's methodology characterizes it:
verify the idle/peak power range (Table I), confirm each subsystem's
counters move with its activity (the category structure of Table II),
and only then run Algorithm 1.  This example performs that
characterization on a platform of your choice using the component-stress
microbenchmarks, and then shows which counters each stressor lights up.

Run with:  python examples/platform_characterization.py [platform]
"""

import sys

import numpy as np

from repro.cluster import Cluster, execute_runs
from repro.framework import render_table
from repro.platforms import get_platform
from repro.workloads import characterization_suite

# One representative counter per subsystem (all exist on every platform).
PROBE_COUNTERS = {
    "cpu": r"\Processor(_Total)\% Processor Time",
    "memory": r"\Memory\Pages/sec",
    "disk": r"\PhysicalDisk(_Total)\Disk Bytes/sec",
    "network": r"\Network Interface(Ethernet)\Datagrams/sec",
}


def main(platform_key: str = "xeon_sas") -> None:
    spec = get_platform(platform_key)
    print(f"=== Characterizing {spec.display_name} ===\n")
    cluster = Cluster.homogeneous(spec, n_machines=3, seed=33)

    suite = characterization_suite(duration_s=60.0)
    rows = []
    counter_activity: dict[str, dict[str, float]] = {}
    for name, workload in suite.items():
        run = execute_runs(cluster, workload, n_runs=1)[0]
        powers = np.concatenate(
            [log.power_w for log in run.logs.values()]
        )
        rows.append([
            name,
            f"{np.mean(powers):6.1f} W",
            f"{np.min(powers):6.1f} W",
            f"{np.max(powers):6.1f} W",
        ])
        log = run.logs[run.machine_ids[0]]
        counter_activity[name] = {
            label: float(np.mean(log.column(counter)))
            for label, counter in PROBE_COUNTERS.items()
        }

    print(render_table(
        ["workload", "mean", "min", "max"],
        rows,
        title=(
            f"Power under component stress (spec range "
            f"{spec.idle_power_w:.0f}-{spec.max_power_w:.0f} W)"
        ),
    ))

    # Normalize each probe counter by its maximum across the suite: the
    # diagonal should dominate (each stressor lights up its own
    # subsystem's counter).
    peaks = {
        label: max(counter_activity[name][label] for name in suite)
        for label in PROBE_COUNTERS
    }
    print("\ncounter response (% of that counter's peak across the suite):")
    header = ["workload"] + list(PROBE_COUNTERS)
    body = []
    for name in suite:
        row = [name]
        for label in PROBE_COUNTERS:
            fraction = counter_activity[name][label] / max(peaks[label], 1e-9)
            row.append(f"{fraction:5.0%}")
        body.append(row)
    print(render_table(header, body))

    print(
        "\nthe diagonal dominance above is what Algorithm 1 exploits: "
        "counters\ntrack their subsystems, so selection can find the ones "
        "that carry power."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "xeon_sas")
