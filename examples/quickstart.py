"""Quickstart: train a CHAOS power model for one platform and use it.

This walks the full pipeline on the mobile (Core 2 Duo) cluster:

1. build an instrumented 5-machine cluster,
2. run the four MapReduce-style workloads and collect 1 Hz telemetry,
3. run Algorithm 1 to reduce ~220 OS counters to ~10,
4. fit the quadratic machine-level power model on pooled cluster data,
5. predict an unseen run's power, machine by machine and cluster-wide.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.cluster import execute_runs
from repro.framework import train_platform_model
from repro.metrics import AccuracyReport
from repro.platforms import CORE2
from repro.workloads import SortWorkload


def main() -> None:
    print("=== CHAOS quickstart: Core 2 Duo (mobile) cluster ===\n")

    # Steps 1-4 in one call: collect, select, fit.
    trained = train_platform_model(CORE2, n_runs=4, seed=99)

    print(f"platform: {trained.cluster.name}")
    print(f"machines: {[m.machine_id for m in trained.cluster.machines]}")
    catalog_size = len(trained.cluster.catalogs["core2"])
    print(
        f"Algorithm 1 reduced {catalog_size} counters to "
        f"{len(trained.selected_counters)}:"
    )
    for name in trained.selected_counters:
        weight = trained.selection.histogram[name]
        print(f"  {name}  (weighted occurrences: {weight:.1f})")

    # Step 5: predict power for a run the model never saw.
    print("\npredicting an unseen Sort run...")
    unseen = execute_runs(
        trained.cluster, SortWorkload(), n_runs=6, seed=trained.cluster.seed
    )[-1]

    for machine_id in unseen.machine_ids:
        log = unseen.logs[machine_id]
        prediction = trained.platform_model.predict_log(log)
        report = AccuracyReport.from_predictions(log.power_w, prediction)
        print(f"  {machine_id}: {report.describe()}")

    measured = unseen.cluster_power()
    predicted = np.sum(
        [
            trained.platform_model.predict_log(unseen.logs[machine_id])
            for machine_id in unseen.machine_ids
        ],
        axis=0,
    )
    cluster_report = AccuracyReport.from_predictions(measured, predicted)
    print(f"\ncluster (Eq. 5 sum): {cluster_report.describe()}")
    print(
        f"cluster power band: {measured.min():.0f}-{measured.max():.0f} W, "
        f"predicted {predicted.min():.0f}-{predicted.max():.0f} W"
    )


if __name__ == "__main__":
    main()
