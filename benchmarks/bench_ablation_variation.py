"""Ablation: machine-to-machine power variation.

The paper pools data from every machine in the cluster because nominally
identical machines differ by up to ~10% in power.  This bench quantifies
that design choice with a *generalization gap*: train a model on machine
0 only, then compare its DRE on machine 0's own held-out runs against its
DRE on the sibling machines.  With real variation the siblings are
systematically harder; with manufacturing variation and meter calibration
ablated away, the gap collapses.
"""

from repro.cluster import Cluster, execute_runs
from repro.framework import render_table
from repro.framework.reports import format_percent
from repro.metrics import AccuracyReport
from repro.models import QuadraticPowerModel, cluster_set, pool_features
from repro.models.featuresets import CPU_UTILIZATION_COUNTER, FREQUENCY_COUNTER
from repro.platforms import OPTERON, IDENTITY_VARIATION
from repro.platforms.power import PowerSynthesizer
from repro.powermeter import WattsUpPro
from repro.workloads import SortWorkload

_FEATURES = cluster_set((CPU_UTILIZATION_COUNTER, FREQUENCY_COUNTER))


def _generalization_gap(identical_machines: bool) -> dict[str, float]:
    """DRE on the training machine's fresh runs vs on sibling machines."""
    cluster = Cluster.homogeneous(OPTERON, seed=556)
    if identical_machines:
        for machine in cluster.machines:
            machine.variation = IDENTITY_VARIATION
            machine.synthesizer = PowerSynthesizer(
                machine.spec, IDENTITY_VARIATION
            )
        cluster.meters = {
            machine_id: WattsUpPro(gain=1.0)
            for machine_id in cluster.meters
        }
    runs = execute_runs(cluster, SortWorkload(), n_runs=4)
    train_machine = runs[0].machine_ids[0]
    design, power = pool_features(
        runs[:2], _FEATURES, machine_ids=[train_machine]
    )
    model = QuadraticPowerModel(_FEATURES.feature_names).fit(design, power)

    self_dres, sibling_dres = [], []
    for run in runs[2:]:
        for machine_id in run.machine_ids:
            log = run.logs[machine_id]
            prediction = model.predict(_FEATURES.extract(log))
            dre = AccuracyReport.from_predictions(log.power_w, prediction).dre
            if machine_id == train_machine:
                self_dres.append(dre)
            else:
                sibling_dres.append(dre)
    self_dre = sum(self_dres) / len(self_dres)
    sibling_dre = sum(sibling_dres) / len(sibling_dres)
    return {
        "self": self_dre,
        "siblings": sibling_dre,
        "gap": sibling_dre - self_dre,
    }


def _run_ablation() -> dict[str, dict[str, float]]:
    return {
        "with variation (default)": _generalization_gap(False),
        "identical machines (ablated)": _generalization_gap(True),
    }


def test_variation_penalizes_single_machine_models(benchmark, record_result):
    gaps = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    table = render_table(
        ["configuration", "DRE on self", "DRE on siblings", "gap"],
        [
            [
                name,
                format_percent(stats["self"]),
                format_percent(stats["siblings"]),
                format_percent(stats["gap"], decimals=2),
            ]
            for name, stats in gaps.items()
        ],
        title=(
            "Ablation: machine-to-machine variation "
            "(Opteron, Sort, quadratic trained on machine 0 only)"
        ),
    )
    record_result("ablation_variation", table)

    with_variation = gaps["with variation (default)"]
    ablated = gaps["identical machines (ablated)"]

    # With variation, siblings are systematically harder than the
    # training machine; without it, the gap (nearly) disappears.
    assert with_variation["gap"] > 0.0
    assert with_variation["gap"] > ablated["gap"] + 0.005
