"""Section V-C: the general feature set costs at most ~1% DRE.

Quadratic models on the general set vs the cluster-specific set, every
(platform, workload) cell.
"""

from repro.experiments import run_general_accuracy


def test_general_set_penalty(benchmark, repository, record_result):
    result = benchmark.pedantic(
        run_general_accuracy,
        kwargs={"repository": repository},
        rounds=1,
        iterations=1,
    )
    record_result("general_accuracy", result.render())

    assert len(result.penalties) == 24

    # Paper: worst-case < 1% DRE penalty; <= 0.25% excluding the worst
    # outlier.  We allow a little extra room on the worst cell (the Atom's
    # tiny dynamic range amplifies any feature-set change).
    assert result.worst_penalty < 0.025
    assert result.worst_penalty_excluding_outlier < 0.012

    # On average the general set is essentially free.
    mean_penalty = sum(result.penalties) / len(result.penalties)
    assert mean_penalty < 0.005
