"""Table III: DRE vs rMSE vs percent error (Core 2 mobile, Atom embedded).

The table's point — conventional metrics flatter models on platforms with
big static power — must reproduce: the Atom's percent error is small
(its 22 W idle floor is trivially predictable) while its DRE is large
(the 4 W dynamic range is hard); DRE is the stricter metric everywhere.
"""

from repro.experiments import run_table3


def test_table3_metric_comparison(benchmark, repository, record_result):
    result = benchmark.pedantic(
        run_table3, kwargs={"repository": repository}, rounds=1, iterations=1
    )
    record_result("table3", result.render())

    assert len(result.rows) == 4
    assert result.dre_exceeds_percent_error()

    for row in result.rows:
        # Atom: small absolute errors, small %err, large DRE (the paper's
        # inversion: 2-3% err vs 11-31% DRE).
        assert row.rmse["atom"] < 1.5
        assert row.percent_error["atom"] < 0.06
        assert row.dre["atom"] > 0.08
        assert row.dre["atom"] > 2.5 * row.percent_error["atom"]

        # Core 2: rMSE of a few watts; DRE well below the Atom's.
        assert row.rmse["core2"] < 5.0
        assert row.dre["core2"] < row.dre["atom"]
