"""Table II: cluster-specific feature sets and the general set.

Runs Algorithm 1 on all six platforms and checks the selection's
paper-observed structure: utilization everywhere, frequency on every DVFS
platform, more storage features on the disk-heavy Xeons, and a compact
(10-20 counter) set per cluster.
"""

from repro.experiments import run_table2
from repro.models.featuresets import CPU_UTILIZATION_COUNTER, FREQUENCY_COUNTER


def test_table2_selected_features(benchmark, repository, record_result):
    result = benchmark.pedantic(
        run_table2, kwargs={"repository": repository}, rounds=1, iterations=1
    )
    record_result("table2", result.render())

    assert len(result.selections) == 6

    for platform, selected in result.selections.items():
        # 10-20 counters per cluster (paper's target; we allow a margin).
        assert 3 <= len(selected) <= 20, platform
        # Utilization is selected on every platform.
        assert CPU_UTILIZATION_COUNTER in selected, platform

    # Frequency matters exactly where DVFS exists.
    for platform in ("core2", "athlon", "opteron", "xeon_sata", "xeon_sas"):
        assert FREQUENCY_COUNTER in result.selections[platform], platform
    assert FREQUENCY_COUNTER not in result.selections["atom"]

    # The general set exists, is compact, and contains the two universal
    # features (Table II's General column).
    assert 3 <= len(result.general) <= 20
    assert CPU_UTILIZATION_COUNTER in result.general
