"""Figure 4: Opteron DRE grid on Prime — modeling technique matters.

For the CPU-bound Prime workload, the utilization/frequency-to-power
curve is strongly nonlinear: moving from a linear to a piecewise or
quadratic model buys accuracy even with a single feature, while adding
counters to a linear model helps less.
"""

from repro.experiments import run_figure4


def test_figure4_prime_grid(benchmark, repository, record_result):
    result = benchmark.pedantic(
        run_figure4, kwargs={"repository": repository}, rounds=1, iterations=1
    )
    record_result("figure4", result.render())

    # Technique gain: linear -> quadratic on cluster features.
    assert result.technique_gain() > 0.0

    # "Using piecewise linear models with one feature dramatically
    # improves accuracy compared to a linear model."
    piecewise_u = result.cell_dre("P", "U")
    linear_u = result.cell_dre("L", "U")
    assert piecewise_u < linear_u

    # The best nonlinear model beats the best linear one.
    best_linear = min(
        result.cell_dre("L", name) for name in ("U", "C", "G")
    )
    best_nonlinear = min(
        result.cell_dre("Q", "C"), result.cell_dre("P", "C")
    )
    assert best_nonlinear < best_linear

    for evaluation in result.sweep.evaluations:
        assert evaluation.mean_machine_dre < 0.20, evaluation.label
