"""Figure 1: cluster power signatures, mobile (Core 2 Duo) cluster.

Regenerates the five-run power traces of all four workloads and checks
the paper's headline: dramatically different signatures per workload
within a ~120-220 W cluster dynamic band.
"""

from repro.experiments import run_figure1


def test_figure1_cluster_power_signatures(benchmark, repository, record_result):
    result = benchmark.pedantic(
        run_figure1, kwargs={"repository": repository}, rounds=1, iterations=1
    )
    record_result("figure1", result.render())

    # Five runs of each of the four workloads.
    assert set(result.traces) == {"sort", "pagerank", "prime", "wordcount"}
    assert all(len(runs) == 5 for runs in result.traces.values())

    # The paper's band: cluster power between ~120 W and ~220 W.
    assert 110.0 < result.global_min_w < 140.0
    assert 180.0 < result.global_max_w < 235.0

    # PageRank runs longest; WordCount shortest (Section III-A).
    lengths = {
        name: max(t.size for t in runs)
        for name, runs in result.traces.items()
    }
    assert lengths["pagerank"] == max(lengths.values())
    assert lengths["wordcount"] == min(lengths.values())
