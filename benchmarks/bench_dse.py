"""DSE campaign throughput: a 500-candidate search, cold then warm.

One bench drives :func:`repro.dse.search_campaign` on the atom/sort
substrate at full scale — a genetic-search campaign whose evaluations
run as content-addressed tasks under ``jobs=4`` — and then re-runs the
identical campaign against the same artifact cache.  The claims:

* the cold campaign evaluates >= 500 distinct candidates and yields a
  non-empty Pareto frontier;
* the warm re-run is served almost entirely from the cache (hit rate
  >= 0.9) and reproduces the campaign payload **bit-for-bit** — the
  crash-resume identity the engine guarantees.

Results go to ``benchmarks/results/dse_campaign.json`` via the shared
provenance stamp.  ``CHAOS_BENCH_GRID=small`` shrinks the campaign for
CI smoke.
"""

from __future__ import annotations

import os
import tempfile
import time

from _util import stamp_results

from repro.dse import CampaignConfig, GAConfig, search_campaign
from repro.engine import ArtifactCache

FULL_GRID = {
    "population": 64,
    "generations": 28,
    "min_candidates": 500,
    "jobs": 4,
}
SMALL_GRID = {
    "population": 10,
    "generations": 2,
    "min_candidates": 15,
    "jobs": 2,
}


def _campaign_config(grid) -> CampaignConfig:
    return CampaignConfig(
        platform="atom",
        workload="sort",
        machines=2,
        runs=2,
        seed=2012,
        ranking="catalog",
        probe_seconds=5,
        ga=GAConfig(
            population=grid["population"],
            generations=grid["generations"],
        ),
    )


def _run_campaign(config, cache_dir, jobs):
    cache = ArtifactCache(cache_dir)
    start = time.perf_counter()
    result = search_campaign(config, jobs=jobs, cache=cache)
    wall_s = time.perf_counter() - start
    return result, wall_s


def test_campaign_cold_then_warm(record_result):
    grid = (
        SMALL_GRID
        if os.environ.get("CHAOS_BENCH_GRID") == "small"
        else FULL_GRID
    )
    config = _campaign_config(grid)

    with tempfile.TemporaryDirectory() as cache_dir:
        cold, cold_s = _run_campaign(config, cache_dir, grid["jobs"])
        warm, warm_s = _run_campaign(config, cache_dir, grid["jobs"])

    n_candidates = len(cold.candidates)
    n_feasible = sum(
        1 for verdict in cold.candidates.values() if verdict["feasible"]
    )
    metrics = {
        "population": grid["population"],
        "generations": grid["generations"],
        "jobs": grid["jobs"],
        "candidates_evaluated": n_candidates,
        "feasible": n_feasible,
        "frontier_size": len(cold.frontier),
        "best_mcdm_score": cold.mcdm[0]["score"] if cold.mcdm else None,
        "payload_digest": cold.payload_digest(),
        "cold_wall_seconds": cold_s,
        "cold_candidates_per_s": n_candidates / cold_s,
        "warm_wall_seconds": warm_s,
        "warm_hit_rate": warm.telemetry.hit_rate,
        "warm_payload_identical": (
            warm.payload_digest() == cold.payload_digest()
        ),
    }
    stamp_results("dse_campaign", metrics)
    record_result(
        "dse_campaign",
        "\n".join(f"{key}: {value}" for key, value in metrics.items()),
    )

    # The campaign claim: enough of the space covered, a frontier found.
    assert n_candidates >= grid["min_candidates"]
    assert cold.frontier
    assert 0 < n_feasible <= n_candidates

    # The resume claim: a warm identical campaign is nearly all cache
    # hits and lands on byte-identical campaign bytes.
    assert warm.telemetry.hit_rate >= 0.9
    assert metrics["warm_payload_identical"]
