"""Section V-B: heterogeneous cluster composition.

Per-platform machine models (trained on homogeneous clusters) compose via
Eq. 5 onto a 10-machine Core 2 + Opteron cluster at the same worst-case
~12% DRE as the homogeneous results — composition is essentially free.
"""

from repro.experiments import run_hetero


def test_hetero_composition(benchmark, repository, record_result):
    result = benchmark.pedantic(
        run_hetero, kwargs={"repository": repository}, rounds=1, iterations=1
    )
    record_result("hetero", result.render())

    assert set(result.per_workload) == {
        "sort", "pagerank", "prime", "wordcount"
    }

    # Paper: "the same worst-case 12% DRE as the homogeneous clusters".
    assert result.worst_dre < 0.12

    # Cluster-level aggregation should do even better on average.
    for collection in result.per_workload.values():
        assert collection.mean_dre < 0.10
