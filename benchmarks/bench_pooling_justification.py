"""Section IV: pooling vs hierarchical/mixed models.

The paper justifies pooling all machines' data (rather than fitting
hierarchical Bayesian / mixed models) by comparing variances "according
to the results of the recommended statistical tests in [Gelman et al.]".
This bench runs that comparison on the simulated Opteron cluster: the
per-machine random-intercept model barely reduces residual variance over
the fully pooled fit, so pooling is suitable.
"""

import numpy as np

from repro.framework import render_table
from repro.models import cluster_set
from repro.regression import pooling_suitability


def _run_check(repository):
    feature_set = cluster_set(repository.selection("opteron").selected)
    runs = repository.runs("opteron", "sort")
    designs, powers, groups = [], [], []
    for run in runs:
        for machine_id in run.machine_ids:
            log = run.logs[machine_id]
            designs.append(feature_set.extract(log))
            powers.append(log.power_w)
            groups.extend([machine_id] * log.n_seconds)
    return pooling_suitability(
        np.vstack(designs), np.concatenate(powers), np.array(groups)
    )


def test_pooling_is_suitable(benchmark, repository, record_result):
    result = benchmark.pedantic(
        _run_check, args=(repository,), rounds=1, iterations=1
    )
    table = render_table(
        ["model", "residual variance (W^2)"],
        [
            ["fully pooled OLS", f"{result.pooled_variance:.2f}"],
            ["per-machine random intercepts", f"{result.mixed_variance:.2f}"],
        ],
        title="Pooled vs mixed model variance comparison (Opteron, Sort)",
    )
    footer = (
        f"variance ratio {result.variance_ratio:.3f}, pooled rmse "
        f"inflation {result.rmse_inflation:.2f}x; per-machine intercept "
        f"spread {result.intercept_spread_w:.2f} W -> pooling suitable: "
        f"{result.pooling_is_suitable()}"
    )
    record_result("pooling_justification", table + "\n" + footer)

    # The paper's conclusion: pooling with no significant accuracy loss.
    assert result.pooling_is_suitable()
    assert result.variance_ratio > 0.5

    # Machine offsets exist (a few watts) but are small relative to the
    # workload's power variance.
    assert 0.0 < result.intercept_spread_w < 10.0
