"""Future work (Section V-D): independent per-core DVFS.

Verifies the paper's forward-looking prediction on a simulated future
platform: when cores scale independently, core-frequency correlation
drops below 0.8 and individual core frequencies become necessary model
features.
"""

from repro.experiments import run_future_percore


def test_independent_percore_dvfs(benchmark, record_result):
    result = benchmark.pedantic(run_future_percore, rounds=1, iterations=1)
    record_result("future_percore", result.render())

    # The regime the paper predicts: weakly correlated core frequencies.
    assert result.freq_correlation < 0.80

    # Per-core frequency features recover accuracy over core 0 alone.
    assert result.improvement > 0.003
    assert result.dre_all_frequencies < result.dre_single_frequency
