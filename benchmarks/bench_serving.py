"""Serving throughput: a fleet of 1 Hz machines on one scoring loop.

Drives the session + micro-batcher layers directly (no TCP) with 1000
concurrent machine sessions each submitting one sample per simulated
second, exactly the fan-in ``repro serve`` handles behind the wire
protocol.  The claim under test: micro-batching turns a thousand 1 Hz
streams into a handful of vectorized predicts per second, so one
process sustains the fleet in real time with zero shed samples.

Results (throughput, batch p50/p99 latency, drop counts) are written to
``benchmarks/results/serving_throughput.json`` for the CI smoke check.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.cluster import Cluster, execute_runs
from repro.models.composition import PlatformModel
from repro.models.featuresets import (
    CPU_UTILIZATION_COUNTER,
    FREQUENCY_COUNTER,
    cluster_set,
    pool_features,
)
from repro.models.registry import build_model
from repro.platforms import get_platform
from repro.serving import (
    MachineSession,
    MicroBatchScorer,
    ServingStats,
    SessionConfig,
    make_bundle,
)
from repro.workloads import SortWorkload

N_SESSIONS = 1000
N_SECONDS = 30

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _fitted_bundle():
    """A Q bundle on the atom platform plus a source log to stream."""
    spec = get_platform("atom")
    cluster = Cluster.homogeneous(spec, n_machines=2, seed=123)
    runs = execute_runs(cluster, SortWorkload(), n_runs=2, jobs=1)
    feature_set = cluster_set(
        (CPU_UTILIZATION_COUNTER, FREQUENCY_COUNTER)
    )
    design, power = pool_features(runs, feature_set)
    model = build_model("Q", feature_set).fit(design, power)
    platform_model = PlatformModel(
        platform_key=spec.key, model=model, feature_set=feature_set
    )
    bundle = make_bundle(
        platform_model,
        design,
        idle_power_w=spec.idle_power_w,
        meta={"scenario": "bench-serving"},
    )
    source_log = runs[-1].logs[runs[-1].machine_ids[0]]
    return bundle, source_log


def _drive_fleet(bundle, source_log, n_sessions, n_seconds):
    """Submit + score n_sessions x n_seconds samples; returns metrics."""
    stats = ServingStats()
    scorer = MicroBatchScorer(stats=stats)
    sessions = [
        MachineSession(
            f"m{i:04d}", "Q@bench", bundle, config=SessionConfig()
        )
        for i in range(n_sessions)
    ]
    required = sessions[0].predictor.required_counters
    columns = source_log.select(list(required))

    # Pre-built samples: each machine streams the recorded log from its
    # own phase offset, so batches mix distinct counter rows.  Parsing
    # wire JSON into these dicts is the TCP layer's cost, not the
    # scoring loop's, so it stays outside the timed region.
    schedule = []
    for t in range(n_seconds):
        per_session = []
        for i in range(n_sessions):
            row = columns[(t + i) % source_log.n_seconds]
            per_session.append(
                {name: row[j] for j, name in enumerate(required)}
            )
        schedule.append(per_session)

    start_s = time.perf_counter()
    for t in range(n_seconds):
        per_session = schedule[t]
        for session, counters in zip(sessions, per_session):
            session.submit(t, counters)
        scorer.tick(sessions)
    wall_s = time.perf_counter() - start_s

    snapshot = stats.snapshot(sessions=sessions)
    return {
        "sessions": n_sessions,
        "sample_rate_hz": 1,
        "simulated_seconds": n_seconds,
        "samples_scored": snapshot["samples_scored"],
        "dropped_samples": snapshot["dropped_samples"],
        "wall_seconds": wall_s,
        "throughput_samples_per_s": snapshot["samples_scored"] / wall_s,
        "realtime_multiple": n_seconds / wall_s,
        "batch_latency_p50_ms": (
            snapshot["batch_latency_s"]["p50"] * 1e3
        ),
        "batch_latency_p99_ms": (
            snapshot["batch_latency_s"]["p99"] * 1e3
        ),
        "mean_batch_size": snapshot["batch_size"]["mean"],
    }


def test_serving_sustains_fleet_rate(benchmark, record_result):
    bundle, source_log = _fitted_bundle()
    metrics = benchmark.pedantic(
        _drive_fleet,
        args=(bundle, source_log, N_SESSIONS, N_SECONDS),
        rounds=1,
        iterations=1,
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "serving_throughput.json").write_text(
        json.dumps(metrics, indent=2) + "\n"
    )
    record_result(
        "serving_throughput",
        "\n".join(f"{key}: {value}" for key, value in metrics.items()),
    )

    # The fleet claim: 1000 machines x 1 Hz scored faster than the
    # samples arrive, with nothing shed and every sample scored once.
    assert metrics["samples_scored"] == N_SESSIONS * N_SECONDS
    assert metrics["dropped_samples"] == 0
    assert metrics["realtime_multiple"] >= 1.0
    assert metrics["batch_latency_p99_ms"] > 0.0
