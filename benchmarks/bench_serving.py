"""Serving throughput: single-process fleet rate and the shard curve.

Two benches share one fitted bundle:

* ``test_serving_sustains_fleet_rate`` drives the session +
  micro-batcher layers directly (no TCP) with 1000 concurrent machine
  sessions each submitting one sample per simulated second, exactly
  the fan-in ``repro serve`` handles behind the wire protocol.  The
  claim: micro-batching turns a thousand 1 Hz streams into a handful
  of vectorized predicts per second, so one process sustains the fleet
  in real time with zero shed samples.

* ``test_sharded_scaling_curve`` partitions a sessions x shards grid
  over real :class:`ShardWorker` cores via the router's
  :class:`HashRing` and measures per-shard CPU time.  Capacity
  throughput — samples over the busiest shard's busy seconds, i.e. the
  fleet rate with one dedicated core per shard — is the scaling claim:
  >= 3x at 4 shards with 10k sessions and nothing dropped.  (Wall
  throughput on this box just time-slices however many cores exist, so
  it is reported but not the claim.)

Results go to ``benchmarks/results/serving_throughput.json`` and
``benchmarks/results/serving_scaling.json`` (stamped with the git
commit that produced them) for the CI smoke checks.
"""

from __future__ import annotations

import os
import time

from _util import stamp_results

from repro.cluster import Cluster, execute_runs
from repro.models.composition import PlatformModel
from repro.models.featuresets import (
    CPU_UTILIZATION_COUNTER,
    FREQUENCY_COUNTER,
    cluster_set,
    pool_features,
)
from repro.models.registry import build_model
from repro.platforms import get_platform
from repro.serving import (
    MachineSession,
    MicroBatchScorer,
    ServingStats,
    SessionConfig,
    ShardWorker,
    make_bundle,
    worker_config,
)
from repro.serving.router import HashRing
from repro.serving.shard import static_bundle_payloads
from repro.serving.stats import merge_snapshots
from repro.workloads import SortWorkload

N_SESSIONS = 1000
N_SECONDS = 30

# The scaling grid; CHAOS_BENCH_GRID=small shrinks it for CI smoke.
FULL_GRID = {
    "sessions": (1000, 10_000),
    "shards": (1, 2, 4),
    "seconds": 20,
}
SMALL_GRID = {"sessions": (300,), "shards": (1, 2), "seconds": 5}
CLAIM = {"sessions": 10_000, "shards": 4, "min_capacity_speedup": 3.0}

def _fitted_bundle():
    """A Q bundle on the atom platform plus a source log to stream."""
    spec = get_platform("atom")
    cluster = Cluster.homogeneous(spec, n_machines=2, seed=123)
    runs = execute_runs(cluster, SortWorkload(), n_runs=2, jobs=1)
    feature_set = cluster_set(
        (CPU_UTILIZATION_COUNTER, FREQUENCY_COUNTER)
    )
    design, power = pool_features(runs, feature_set)
    model = build_model("Q", feature_set).fit(design, power)
    platform_model = PlatformModel(
        platform_key=spec.key, model=model, feature_set=feature_set
    )
    bundle = make_bundle(
        platform_model,
        design,
        idle_power_w=spec.idle_power_w,
        meta={"scenario": "bench-serving"},
    )
    source_log = runs[-1].logs[runs[-1].machine_ids[0]]
    return bundle, source_log


def _drive_fleet(bundle, source_log, n_sessions, n_seconds):
    """Submit + score n_sessions x n_seconds samples; returns metrics."""
    stats = ServingStats()
    scorer = MicroBatchScorer(stats=stats)
    sessions = [
        MachineSession(
            f"m{i:04d}", "Q@bench", bundle, config=SessionConfig()
        )
        for i in range(n_sessions)
    ]
    required = sessions[0].predictor.required_counters
    columns = source_log.select(list(required))

    # Pre-built samples: each machine streams the recorded log from its
    # own phase offset, so batches mix distinct counter rows.  Parsing
    # wire JSON into these dicts is the TCP layer's cost, not the
    # scoring loop's, so it stays outside the timed region.
    schedule = []
    for t in range(n_seconds):
        per_session = []
        for i in range(n_sessions):
            row = columns[(t + i) % source_log.n_seconds]
            per_session.append(
                {name: row[j] for j, name in enumerate(required)}
            )
        schedule.append(per_session)

    start_s = time.perf_counter()
    for t in range(n_seconds):
        per_session = schedule[t]
        for session, counters in zip(sessions, per_session):
            session.submit(t, counters)
        scorer.tick(sessions)
    wall_s = time.perf_counter() - start_s

    snapshot = stats.snapshot(sessions=sessions)
    return {
        "sessions": n_sessions,
        "sample_rate_hz": 1,
        "simulated_seconds": n_seconds,
        "samples_scored": snapshot["samples_scored"],
        "dropped_samples": snapshot["dropped_samples"],
        "wall_seconds": wall_s,
        "throughput_samples_per_s": snapshot["samples_scored"] / wall_s,
        "realtime_multiple": n_seconds / wall_s,
        "batch_latency_p50_ms": (
            snapshot["batch_latency_s"]["p50"] * 1e3
        ),
        "batch_latency_p99_ms": (
            snapshot["batch_latency_s"]["p99"] * 1e3
        ),
        "mean_batch_size": snapshot["batch_size"]["mean"],
    }


def test_serving_sustains_fleet_rate(benchmark, record_result):
    bundle, source_log = _fitted_bundle()
    metrics = benchmark.pedantic(
        _drive_fleet,
        args=(bundle, source_log, N_SESSIONS, N_SECONDS),
        rounds=1,
        iterations=1,
    )

    stamp_results("serving_throughput", metrics)
    record_result(
        "serving_throughput",
        "\n".join(f"{key}: {value}" for key, value in metrics.items()),
    )

    # The fleet claim: 1000 machines x 1 Hz scored faster than the
    # samples arrive, with nothing shed and every sample scored once.
    assert metrics["samples_scored"] == N_SESSIONS * N_SECONDS
    assert metrics["dropped_samples"] == 0
    assert metrics["realtime_multiple"] >= 1.0
    assert metrics["batch_latency_p99_ms"] > 0.0


def _drive_sharded_fleet(bundle, source_log, n_sessions, n_shards, n_seconds):
    """One scaling-grid cell: real shard workers behind a real ring."""
    platform_key = bundle.platform_key
    config = worker_config(
        static_bundles=static_bundle_payloads(
            {platform_key: ("Q@bench", bundle)}
        )
    )
    workers = [ShardWorker(config) for _ in range(n_shards)]
    ring = HashRing(n_shards)
    machine_ids = [f"m{i:05d}" for i in range(n_sessions)]
    partition = ring.partition(machine_ids)
    offsets = {m: i for i, m in enumerate(machine_ids)}
    for shard, members in enumerate(partition):
        for machine_id in members:
            workers[shard].open_session(
                {"machine_id": machine_id, "platform": platform_key}
            )

    probe = MachineSession("probe", "Q@bench", bundle)
    required = probe.predictor.required_counters
    columns = source_log.select(list(required))

    # Pre-built per-shard submit batches; each machine streams the
    # recorded log from its own phase offset so batches mix distinct
    # counter rows.  Building wire payloads is the router's cost, not
    # the scoring loop's, so it stays outside the timed region.
    schedule = []
    for t in range(n_seconds):
        per_shard = []
        for members in partition:
            submits = []
            for machine_id in members:
                row = columns[
                    (t + offsets[machine_id]) % source_log.n_seconds
                ]
                counters = {
                    name: row[j] for j, name in enumerate(required)
                }
                submits.append((machine_id, t, counters, None))
            per_shard.append(submits)
        schedule.append(per_shard)

    start_s = time.perf_counter()
    for t in range(n_seconds):
        for worker, submits in zip(workers, schedule[t]):
            worker.tick_batch({"submits": submits})
    wall_s = time.perf_counter() - start_s

    merged = merge_snapshots(
        [
            worker.stats.snapshot(list(worker.sessions.values()))
            for worker in workers
        ]
    )
    busiest_s = max(worker.busy_seconds for worker in workers)
    return {
        "sessions": n_sessions,
        "shards": n_shards,
        "simulated_seconds": n_seconds,
        "partition_sizes": [len(members) for members in partition],
        "samples_scored": merged["samples_scored"],
        "dropped_samples": merged["dropped_samples"],
        "wall_seconds": wall_s,
        "wall_throughput_samples_per_s": merged["samples_scored"] / wall_s,
        "max_shard_busy_seconds": busiest_s,
        "capacity_throughput_samples_per_s": (
            merged["samples_scored"] / busiest_s
        ),
    }


def test_sharded_scaling_curve(record_result):
    grid = (
        SMALL_GRID
        if os.environ.get("CHAOS_BENCH_GRID") == "small"
        else FULL_GRID
    )
    bundle, source_log = _fitted_bundle()

    rows = []
    baseline = {}
    for n_sessions in grid["sessions"]:
        for n_shards in grid["shards"]:
            cell = _drive_sharded_fleet(
                bundle, source_log, n_sessions, n_shards, grid["seconds"]
            )
            if n_shards == 1:
                baseline[n_sessions] = cell[
                    "capacity_throughput_samples_per_s"
                ]
            cell["capacity_speedup_vs_1shard"] = (
                cell["capacity_throughput_samples_per_s"]
                / baseline[n_sessions]
            )
            rows.append(cell)

    payload = {
        "simulated_seconds": grid["seconds"],
        "claim": CLAIM,
        "note": (
            "capacity throughput = samples / busiest shard's CPU time "
            "(one dedicated core per shard); wall throughput "
            "time-slices whatever cores this box has"
        ),
        "grid": rows,
    }
    stamp_results("serving_scaling", payload)
    header = (
        "sessions shards  samples  dropped  capacity_samples/s  speedup"
    )
    lines = [header] + [
        (
            f"{row['sessions']:8d} {row['shards']:6d} "
            f"{row['samples_scored']:8d} {row['dropped_samples']:8d} "
            f"{row['capacity_throughput_samples_per_s']:19.0f} "
            f"{row['capacity_speedup_vs_1shard']:7.2f}"
        )
        for row in rows
    ]
    record_result("serving_scaling", "\n".join(lines))

    # Every cell scores every sample exactly once, shards or not.
    for row in rows:
        assert (
            row["samples_scored"]
            == row["sessions"] * row["simulated_seconds"]
        )
        assert row["dropped_samples"] == 0
    # The paper-style scaling claim, checked only on the full grid.
    claim_rows = [
        row
        for row in rows
        if row["sessions"] == CLAIM["sessions"]
        and row["shards"] == CLAIM["shards"]
    ]
    for row in claim_rows:
        assert (
            row["capacity_speedup_vs_1shard"]
            >= CLAIM["min_capacity_speedup"]
        )
