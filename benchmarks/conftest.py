"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures; the
rendered rows are printed and also written to ``benchmarks/results/`` so
the reproduction can be inspected after the run.  A session-scoped data
repository shares the measurement campaign (clusters, runs, feature
selections) across benches.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import get_repository

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def repository():
    return get_repository()


@pytest.fixture(scope="session")
def record_result():
    """Write one experiment's rendered output to benchmarks/results/."""

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)

    return _record
