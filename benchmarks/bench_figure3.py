"""Figure 3: Opteron DRE grid on PageRank — feature selection matters.

For the network-heavy PageRank workload, moving from the CPU-only set to
selected features buys more accuracy than moving from linear to complex
models; the general set stays on par with the cluster-specific one.
"""

from repro.experiments import run_figure3


def test_figure3_pagerank_grid(benchmark, repository, record_result):
    result = benchmark.pedantic(
        run_figure3, kwargs={"repository": repository}, rounds=1, iterations=1
    )
    record_result("figure3", result.render())

    # Feature selection gain: CPU-only -> cluster features (linear).
    assert result.feature_selection_gain() > 0.005

    # For PageRank, features matter at least as much as technique.
    assert result.feature_selection_gain() >= result.technique_gain() * 0.8

    # The general feature set is on par with the cluster set (<1% DRE).
    assert abs(result.general_penalty()) < 0.015

    # Every cell of the grid stays under the paper's 20%-ish ceiling.
    for evaluation in result.sweep.evaluations:
        assert evaluation.mean_machine_dre < 0.20, evaluation.label
