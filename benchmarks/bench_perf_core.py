"""Performance benchmarks for the library's hot paths.

Unlike the table/figure benches (one-shot experiment regeneration), these
are conventional multi-round timing benchmarks guarding the primitives
the framework leans on: MARS fitting, the lasso path, counter derivation,
and 1 Hz prediction.  Regressions here translate directly into longer
characterization campaigns and heavier online agents.
"""

import numpy as np
import pytest

from repro.counters import build_catalog, derive_counters
from repro.models import QuadraticPowerModel, cluster_set, pool_features
from repro.models.featuresets import CPU_UTILIZATION_COUNTER, FREQUENCY_COUNTER
from repro.platforms import CORE2, SimulatedMachine
from repro.regression import fit_lasso_path, fit_mars, fit_ols
from repro.workloads import SortWorkload


@pytest.fixture(scope="module")
def regression_data():
    rng = np.random.default_rng(0)
    design = rng.uniform(0, 1, size=(1500, 10))
    response = (
        3.0
        + 2.0 * np.maximum(design[:, 0] - 0.5, 0)
        + design[:, 1] * design[:, 2]
        + rng.normal(0, 0.05, 1500)
    )
    return design, response


@pytest.fixture(scope="module")
def machine_run():
    machines = [SimulatedMachine.build(CORE2, i, seed=5) for i in range(2)]
    traces = SortWorkload().generate_run(machines, run_index=0, seed=5)
    return build_catalog(CORE2), traces[machines[0].machine_id]


class TestRegressionPerformance:
    def test_ols_fit(self, benchmark, regression_data):
        design, response = regression_data
        fit = benchmark(fit_ols, design, response)
        assert fit.coefficients.size == 11

    def test_mars_degree1_fit(self, benchmark, regression_data):
        design, response = regression_data
        model = benchmark.pedantic(
            fit_mars, args=(design, response),
            kwargs={"max_degree": 1}, rounds=3, iterations=1,
        )
        assert model.n_terms >= 3

    def test_mars_degree2_fit(self, benchmark, regression_data):
        design, response = regression_data
        model = benchmark.pedantic(
            fit_mars, args=(design, response),
            kwargs={"max_degree": 2}, rounds=3, iterations=1,
        )
        assert model.n_terms >= 3

    def test_lasso_path(self, benchmark, regression_data):
        design, response = regression_data
        result = benchmark.pedantic(
            fit_lasso_path, args=(design, response), rounds=3, iterations=1
        )
        assert result.best is not None


class TestTelemetryPerformance:
    def test_counter_derivation_full_catalog(self, benchmark, machine_run):
        catalog, activity = machine_run
        matrix = benchmark.pedantic(
            derive_counters,
            args=(catalog, activity),
            kwargs={"machine_seed": 1, "run_index": 0},
            rounds=3,
            iterations=1,
        )
        assert matrix.shape[1] == len(catalog)


class TestPredictionPerformance:
    def test_quadratic_predict_throughput(self, benchmark):
        rng = np.random.default_rng(1)
        feature_set = cluster_set(
            (CPU_UTILIZATION_COUNTER, FREQUENCY_COUNTER)
        )
        design = np.column_stack([
            rng.uniform(0, 100, 5000),
            np.round(rng.uniform(1130, 2260, 5000) / 250) * 250,
        ])
        power = 25 + 0.1 * design[:, 0] * design[:, 1] / 2260
        model = QuadraticPowerModel(feature_set.feature_names).fit(
            design, power
        )
        probe = design[:1000]
        prediction = benchmark(model.predict, probe)
        assert prediction.shape == (1000,)


class TestPipelinePerformance:
    def test_pool_features_throughput(self, benchmark):
        from repro.cluster import Cluster, execute_runs

        cluster = Cluster.homogeneous(CORE2, n_machines=3, seed=6)
        runs = execute_runs(cluster, SortWorkload(), n_runs=2)
        feature_set = cluster_set(
            (CPU_UTILIZATION_COUNTER, FREQUENCY_COUNTER)
        )
        design, power = benchmark(pool_features, runs, feature_set)
        assert design.shape[0] == power.shape[0]
