"""Abstract / Section I: the online framework costs < 1% CPU.

Measures per-1 Hz-sample cost of collecting the selected counters and
evaluating the quadratic model on the mobile platform.
"""

from repro.experiments import run_overhead


def test_online_overhead(benchmark, repository, record_result):
    result = benchmark.pedantic(
        run_overhead, kwargs={"repository": repository}, rounds=1, iterations=1
    )
    record_result("overhead", result.render())

    assert result.meets_paper_claim
    # Feature selection is what makes collection cheap: the deployed set
    # is an order of magnitude smaller than the full catalog.
    assert result.selected_size * 10 <= result.full_catalog_size
    assert result.report.n_counters_collected == result.selected_size
