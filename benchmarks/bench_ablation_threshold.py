"""Ablation: the step 1 correlation-pruning threshold.

The paper used |r| > 0.95 and reports that lowering the threshold gave
diminishing returns.  This bench sweeps the threshold and reports how
many counters survive step 1 and the accuracy of the resulting cluster
model — accuracy should be flat while the survivor count falls, which is
exactly "diminishing returns".
"""

from repro.cluster import Cluster, execute_runs
from repro.framework import cross_validate, render_table
from repro.framework.reports import format_percent
from repro.models import cluster_set
from repro.platforms import CORE2
from repro.selection import SelectionConfig, run_algorithm1
from repro.workloads import PrimeWorkload, SortWorkload

THRESHOLDS = (0.99, 0.95, 0.85)


def _run_ablation():
    cluster = Cluster.homogeneous(CORE2, seed=557)
    runs_by_workload = {
        "sort": execute_runs(cluster, SortWorkload(), n_runs=4),
        "prime": execute_runs(cluster, PrimeWorkload(), n_runs=4),
    }
    rows = []
    for threshold in THRESHOLDS:
        config = SelectionConfig(correlation_threshold=threshold)
        selection = run_algorithm1(
            cluster, runs_by_workload, config=config
        )
        feature_set = cluster_set(selection.selected)
        evaluation = cross_validate(
            runs_by_workload["sort"], "Q", feature_set, seed=10
        )
        rows.append({
            "threshold": threshold,
            "step1_survivors": len(selection.step1_survivors),
            "selected": len(selection.selected),
            "dre": evaluation.mean_machine_dre,
        })
    return rows


def test_correlation_threshold_diminishing_returns(benchmark, record_result):
    rows = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    table = render_table(
        ["|r| threshold", "step 1 survivors", "final features", "QC DRE"],
        [
            [
                f"{row['threshold']:.2f}",
                row["step1_survivors"],
                row["selected"],
                format_percent(row["dre"]),
            ]
            for row in rows
        ],
        title="Ablation: correlation-pruning threshold (Core 2, Sort, QC)",
    )
    record_result("ablation_threshold", table)

    # Lower thresholds prune more aggressively...
    survivors = [row["step1_survivors"] for row in rows]
    assert survivors[0] > survivors[-1]

    # ...but accuracy moves little across the sweep: diminishing returns.
    dres = [row["dre"] for row in rows]
    assert max(dres) - min(dres) < 0.03
