"""Figure 5: worst-case Athlon cluster prediction, strawman vs CHAOS.

The scaled single-machine CPU-only linear model must visibly miss the top
of the cluster power range, while the composed quadratic/general-features
model tracks the whole dynamic range.
"""

from repro.experiments import run_figure5


def test_figure5_worst_case_trace(benchmark, repository, record_result):
    result = benchmark.pedantic(
        run_figure5, kwargs={"repository": repository}, rounds=1, iterations=1
    )
    record_result("figure5", result.render())

    # CHAOS beats the strawman overall...
    assert result.chaos_dre < result.strawman_dre

    # ...and specifically at the top of the range, where the strawman
    # leaves watts on the table (paper: cannot predict the upper ~20%).
    assert result.strawman_top_shortfall_w > 2.0
    assert (
        result.chaos_top_shortfall_w
        < result.strawman_top_shortfall_w * 0.6
    )

    # The CHAOS model stays accurate in absolute terms.
    assert result.chaos_dre < 0.06
