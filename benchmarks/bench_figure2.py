"""Figure 2: Opteron feature weighted-occurrence histogram.

Checks step 5/6 mechanics: utilization tops the histogram, the threshold
starts at 5 and the step 6 refit only ever raises it, and every selected
feature sits above the effective threshold.
"""

from repro.experiments import run_figure2
from repro.experiments.figure2 import cpu_utilization_is_top


def test_figure2_feature_histogram(benchmark, repository, record_result):
    result = benchmark.pedantic(
        run_figure2, kwargs={"repository": repository}, rounds=1, iterations=1
    )
    record_result("figure2", result.render())

    # "As expected, processor utilization was the most commonly
    # identified feature."
    assert cpu_utilization_is_top(result)

    # The threshold starts at 5; stepwise refinement can only raise it.
    assert abs(result.initial_threshold - 5.0) < 1e-12
    assert result.effective_threshold >= result.initial_threshold

    for name in result.selected:
        assert result.histogram[name] >= result.effective_threshold

    # Histogram weights are bounded by machines x workloads (5 x 4).
    assert max(result.histogram.values()) <= 20.0
