"""Section II: coarse sampling windows miss application behavior.

Quantifies why the paper samples at 1 Hz rather than the 10-minute
intervals of early prior work: averaging windows progressively erase the
workload's dynamic power range and blind a peak consumer (capping).
"""

from repro.experiments import run_sampling_rate


def test_sampling_rate_erases_behavior(benchmark, repository, record_result):
    result = benchmark.pedantic(
        run_sampling_rate, kwargs={"repository": repository},
        rounds=1, iterations=1,
    )
    record_result("sampling_rate", result.render())

    # 1 Hz retains (per definition) the full range.
    assert result.row(1).retained_range_frac > 0.99

    # Retained range falls monotonically with the window.
    fracs = [result.row(w).retained_range_frac for w in (1, 10, 60, 300)]
    assert all(a >= b for a, b in zip(fracs, fracs[1:]))

    # Ten-minute-scale windows lose most of the application's behavior.
    assert result.row(300).retained_range_frac < 0.5

    # The peak consumer is increasingly misled.
    assert (
        result.row(300).peak_underestimate_w
        > result.row(1).peak_underestimate_w
    )
