"""Shared provenance stamping for the benchmark harness.

Every bench writes a results JSON to ``benchmarks/results/``; CI smoke
checks read them back.  :func:`stamp_results` gives each payload the
same provenance envelope — the git commit that produced it, the grid
tier it ran under (``CHAOS_BENCH_GRID=small`` shrinks grids for CI),
and the box's core count — so a results file is self-describing.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def git_commit() -> str:
    """HEAD of the repo that ran the bench (``unknown`` outside git)."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).parent,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def grid_tier() -> str:
    """``small`` under ``CHAOS_BENCH_GRID=small``, else ``full``."""
    return (
        "small"
        if os.environ.get("CHAOS_BENCH_GRID") == "small"
        else "full"
    )


def stamp_results(name: str, payload: dict) -> pathlib.Path:
    """Stamp ``payload`` with provenance and write it to results/.

    Adds ``commit``, ``grid_tier`` and ``n_cpus`` (without clobbering
    keys the bench set itself), writes ``benchmarks/results/<name>.json``
    and returns the path.
    """
    stamped = dict(payload)
    stamped.setdefault("commit", git_commit())
    stamped.setdefault("grid_tier", grid_tier())
    stamped.setdefault("n_cpus", os.cpu_count())
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(stamped, indent=2) + "\n")
    return path
