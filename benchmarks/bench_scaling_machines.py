"""Scalability: machines sampled vs error bound (abstract claim).

Training on more machines absorbs more of the fleet's manufacturing
variation; the DRE on never-sampled machines falls as the sample grows
and crosses the paper's 12% bound well before the whole fleet is metered.
"""

from repro.experiments import run_sampling


def test_machines_sampled_vs_error_bound(benchmark, repository, record_result):
    result = benchmark.pedantic(
        run_sampling, kwargs={"repository": repository}, rounds=1, iterations=1
    )
    record_result("scaling_machines", result.render())

    ks = sorted(result.dre_by_k)
    assert ks == [1, 2, 3, 4]

    # Sampling more machines never hurts much and helps overall.
    assert result.dre_by_k[ks[-1]] <= result.dre_by_k[ks[0]] + 0.005

    # The 12% bound is reachable without metering the whole fleet.
    assert result.machines_needed is not None
    assert result.machines_needed < 5
