"""Section V-C caveat: models do not transfer to unseen workload types.

Training on three workloads and testing on the fourth degrades accuracy
(dramatically when the held-out workload exercises subsystems the
training mix never did), while regenerating the model with the new
workload's data restores it — the motivation for the automated framework.
"""

from repro.experiments import run_cross_workload


def test_cross_workload_generalization(benchmark, repository, record_result):
    result = benchmark.pedantic(
        run_cross_workload, kwargs={"repository": repository},
        rounds=1, iterations=1,
    )
    record_result("cross_workload", result.render())

    # Multi-workload models stay within the paper's bound everywhere.
    assert all(dre < 0.12 for dre in result.multiworkload_dre.values())

    # Unseen workloads cost accuracy on average...
    assert result.mean_gap > 0.0

    # ...and the worst held-out workload pays a clear penalty — the
    # concrete case for regenerating models per workload mix.
    worst = max(result.unseen_dre, key=result.unseen_dre.get)
    assert result.gap(worst) > 0.02

    # Regeneration closes the gap for every workload.
    for workload in result.unseen_dre:
        assert (
            result.multiworkload_dre[workload]
            <= result.unseen_dre[workload] + 0.005
        )
