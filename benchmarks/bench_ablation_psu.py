"""Ablation: the PSU-efficiency nonlinearity.

DESIGN.md attributes the linear model's failure at the top of the power
range (Figure 5) partly to load-dependent PSU efficiency.  This bench
rebuilds the Athlon cluster with a FLAT efficiency curve and shows that
linear models recover accuracy — i.e. the nonlinearity in our substrate
is doing the work the paper says real PSUs do.
"""

import numpy as np

from repro.cluster import Cluster, execute_runs
from repro.framework import cross_validate, render_table
from repro.framework.reports import format_percent
from repro.models import cluster_set
from repro.models.featuresets import CPU_UTILIZATION_COUNTER, FREQUENCY_COUNTER
from repro.platforms import ATHLON, PSUCurve
from repro.platforms.power import PowerSynthesizer
from repro.workloads import SortWorkload

_FEATURES = cluster_set((CPU_UTILIZATION_COUNTER, FREQUENCY_COUNTER))


def _linear_dre(flat_psu: bool) -> float:
    cluster = Cluster.homogeneous(ATHLON, seed=555)
    if flat_psu:
        for machine in cluster.machines:
            machine.synthesizer = PowerSynthesizer(
                machine.spec,
                machine.variation,
                psu=PSUCurve(curvature=0.0),
            )
    runs = execute_runs(cluster, SortWorkload(), n_runs=4)
    result = cross_validate(runs, "L", _FEATURES, seed=9)
    return result.mean_machine_dre


def _run_ablation() -> dict[str, float]:
    return {
        "curved PSU (default)": _linear_dre(flat_psu=False),
        "flat PSU (ablated)": _linear_dre(flat_psu=True),
    }


def test_psu_nonlinearity_drives_linear_error(
    benchmark, record_result
):
    dres = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    table = render_table(
        ["configuration", "linear-model machine DRE"],
        [[name, format_percent(value)] for name, value in dres.items()],
        title="Ablation: PSU efficiency nonlinearity (Athlon, Sort, LC)",
    )
    record_result("ablation_psu", table)

    # Removing the PSU curve must make the linear model's life easier.
    assert dres["flat PSU (ablated)"] < dres["curved PSU (default)"]
    assert np.isfinite(list(dres.values())).all()
