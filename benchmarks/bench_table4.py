"""Table IV: best average DRE per workload and cluster — the full sweep.

This is the paper's headline evaluation: every technique x feature-set
combination on every (cluster, workload), hundreds of fitted models.
Checks: best DRE under ~12% on DVFS platforms, nonlinear models with
selected features win most cells, and the Atom (no DVFS, tiny range) is
the hardest platform.
"""

from repro.experiments import compare_table4, run_table4


def test_table4_best_dre_sweep(benchmark, repository, record_result):
    result = benchmark.pedantic(
        run_table4, kwargs={"repository": repository}, rounds=1, iterations=1
    )
    comparison = compare_table4(result)
    record_result(
        "table4", result.render() + "\n\n" + comparison.render()
    )

    assert len(result.cells) == 24  # 6 platforms x 4 workloads

    # Paper: "our models are highly accurate, with DRE less than 12% ...
    # for all models".  The Atom's absolute noise floor vs its 4 W range
    # makes it the one platform where our substrate exceeds that; every
    # DVFS platform must meet it.
    for (platform, workload), cell in result.cells.items():
        ceiling = 0.20 if platform == "atom" else 0.12
        assert cell.best_dre < ceiling, (platform, workload, cell.best_dre)

    # The Atom is the hardest platform (smallest dynamic range).
    per_platform_worst = {}
    for (platform, _), cell in result.cells.items():
        per_platform_worst[platform] = max(
            per_platform_worst.get(platform, 0.0), cell.best_dre
        )
    assert max(per_platform_worst, key=per_platform_worst.get) == "atom"

    # Nonlinear techniques with selected features dominate the winners
    # (paper: quadratic/cluster-specific in most cells).
    winners = result.winner_counts()
    nonlinear_selected = sum(
        count for label, count in winners.items()
        if label[0] in "PQS" and label[1:] in ("C", "CP", "G")
    )
    assert nonlinear_selected >= len(result.cells) * 0.5

    # The sweep really is a large-scale model exploration.
    assert result.n_models_built > 500

    # Side-by-side with the paper's own Table IV numbers.
    assert comparison.n_cells == 24
    assert comparison.n_within_bound >= 23  # all but possibly the Atom

    # The abstract's conventional-metric claim: median relative error of
    # the winning models in the 0.5-2.5% band (we allow a little margin).
    for (platform, workload), cell in result.cells.items():
        best_eval = cell.sweep.best()
        median_rel = best_eval.machine_reports.mean_median_relative_error
        assert 0.001 < median_rel < 0.04, (platform, workload, median_rel)
