"""Future work (Section V-D): accelerators with hidden system state.

An accelerator card whose power no OS counter captures pushes the model
past the paper's 12% bound; exposing a hypothetical accelerator
utilization counter — the counter the paper says future OSes must add —
restores the usual accuracy.
"""

from repro.experiments import run_future_accelerator


def test_hidden_accelerator_state(benchmark, record_result):
    result = benchmark.pedantic(
        run_future_accelerator, rounds=1, iterations=1
    )
    record_result("future_accelerator", result.render())

    # Hidden state breaks the paper's accuracy regime...
    assert result.dre_hidden > 0.12

    # ...and the future counter restores it.
    assert result.dre_with_counter < 0.08
    assert result.recovered > 0.05

    # The card is a material but not dominant consumer.
    assert 2.0 < result.accel_mean_w < 20.0
