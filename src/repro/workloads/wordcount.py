"""WordCount: tally word occurrences in 500 MB text files per partition.

The paper's simplest workload: mostly CPU with brief disk-read bursts,
little network or sustained disk activity, and a short runtime.  Simple
models and feature sets already work well here (Table IV shows linear /
switching models winning some WordCount cells).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import Workload
from repro.workloads.scheduler import Stage, StageProfile

_MB = 1e6


class WordCountWorkload(Workload):
    name = "wordcount"

    def __init__(self, data_mb_per_partition: float = 500.0):
        if data_mb_per_partition <= 0:
            raise ValueError("data size must be positive")
        self.data_mb_per_partition = data_mb_per_partition

    def stages(self, rng: np.random.Generator, n_machines: int) -> list[Stage]:
        scale = self.data_mb_per_partition / 500.0
        count = Stage(
            profile=StageProfile(
                name="map-count",
                cpu_demand=0.68,
                disk_read_bps=28 * _MB,
                mem_pages_per_sec=900.0,
                cpu_jitter=0.20,
            ),
            n_tasks=5 * n_machines,
            task_duration_s=20.0 * scale,
            duration_sigma=0.30,
        )
        merge = Stage(
            profile=StageProfile(
                name="merge",
                cpu_demand=0.35,
                net_send_bps=3 * _MB,
                net_recv_bps=3 * _MB,
                cpu_jitter=0.12,
            ),
            n_tasks=n_machines,
            task_duration_s=8.0,
        )
        return [count, merge]
