"""The paper's workload suite, as a registry."""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.pagerank import PageRankWorkload
from repro.workloads.prime import PrimeWorkload
from repro.workloads.sort import SortWorkload
from repro.workloads.wordcount import WordCountWorkload

WORKLOAD_NAMES: tuple[str, ...] = ("sort", "pagerank", "prime", "wordcount")


def default_suite() -> dict[str, Workload]:
    """Fresh instances of the four paper workloads with default sizes."""
    return {
        "sort": SortWorkload(),
        "pagerank": PageRankWorkload(),
        "prime": PrimeWorkload(),
        "wordcount": WordCountWorkload(),
    }


def get_workload(name: str) -> Workload:
    """Instantiate a workload by name."""
    suite = default_suite()
    try:
        return suite[name]
    except KeyError:
        known = ", ".join(sorted(suite))
        raise KeyError(f"unknown workload {name!r}; known workloads: {known}")
