"""Dryad/MapReduce-style workload simulators (Sort, PageRank, Prime, WordCount)."""

from repro.workloads.base import Workload, ar1_series, positive_noise
from repro.workloads.microbench import (
    CPUStress,
    DiskStress,
    IdleWorkload,
    MemoryStress,
    NetworkStress,
    characterization_suite,
)
from repro.workloads.pagerank import PageRankWorkload
from repro.workloads.prime import PrimeWorkload
from repro.workloads.scheduler import (
    BusyInterval,
    JobSchedule,
    MachineSchedule,
    Stage,
    StageProfile,
    schedule_job,
)
from repro.workloads.sort import SortWorkload
from repro.workloads.suite import WORKLOAD_NAMES, default_suite, get_workload
from repro.workloads.wordcount import WordCountWorkload

__all__ = [
    "BusyInterval",
    "CPUStress",
    "DiskStress",
    "IdleWorkload",
    "MemoryStress",
    "NetworkStress",
    "JobSchedule",
    "MachineSchedule",
    "PageRankWorkload",
    "PrimeWorkload",
    "SortWorkload",
    "Stage",
    "StageProfile",
    "WORKLOAD_NAMES",
    "WordCountWorkload",
    "Workload",
    "ar1_series",
    "characterization_suite",
    "default_suite",
    "get_workload",
    "positive_noise",
    "schedule_job",
]
