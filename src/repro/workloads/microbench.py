"""Component-stress microbenchmarks for platform characterization.

The paper's measurement methodology needs reference points beyond the
four production workloads: idle power for the DRE floor, and per-
component stress to verify that counters move with the subsystems they
claim to represent (the sanity checks behind Table I's power ranges and
Table II's counter categories).  These single-stage workloads drive one
subsystem at a configurable intensity while leaving the others near
idle.

They are *not* part of the paper's evaluation suite (``default_suite``);
they exist for calibration, testing, and the platform-characterization
example.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import Workload
from repro.workloads.scheduler import Stage, StageProfile

_MB = 1e6


class IdleWorkload(Workload):
    """Machines sit (almost) idle: background OS activity only."""

    name = "idle"

    def __init__(self, duration_s: float = 120.0):
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        self.duration_s = duration_s

    def stages(self, rng: np.random.Generator, n_machines: int) -> list[Stage]:
        return [Stage(
            profile=StageProfile(name="idle", cpu_demand=0.01, cpu_jitter=0.02),
            n_tasks=n_machines,
            task_duration_s=self.duration_s,
            duration_sigma=0.02,
        )]


class _SingleStageStress(Workload):
    """Shared machinery for one-knob component stress workloads."""

    def __init__(self, intensity: float = 1.0, duration_s: float = 120.0):
        if not 0.0 < intensity <= 1.0:
            raise ValueError("intensity must be in (0, 1]")
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        self.intensity = intensity
        self.duration_s = duration_s

    def _profile(self) -> StageProfile:
        raise NotImplementedError

    def stages(self, rng: np.random.Generator, n_machines: int) -> list[Stage]:
        return [Stage(
            profile=self._profile(),
            n_tasks=n_machines,
            task_duration_s=self.duration_s,
            duration_sigma=0.03,
        )]


class CPUStress(_SingleStageStress):
    """Spin all cores at the requested utilization; no I/O."""

    name = "cpu-stress"

    def _profile(self) -> StageProfile:
        return StageProfile(
            name="cpu-stress",
            cpu_demand=self.intensity,
            cpu_jitter=0.03,
        )


class MemoryStress(_SingleStageStress):
    """Stream through memory: heavy paging traffic, modest CPU."""

    name = "memory-stress"

    def _profile(self) -> StageProfile:
        return StageProfile(
            name="memory-stress",
            cpu_demand=0.30,
            mem_pages_per_sec=9000.0 * self.intensity,
            cpu_jitter=0.05,
        )


class DiskStress(_SingleStageStress):
    """Saturate storage with mixed reads and writes."""

    name = "disk-stress"

    def _profile(self) -> StageProfile:
        return StageProfile(
            name="disk-stress",
            cpu_demand=0.15,
            disk_read_bps=130 * _MB * self.intensity,
            disk_write_bps=90 * _MB * self.intensity,
            cpu_jitter=0.05,
        )


class NetworkStress(_SingleStageStress):
    """Saturate the NIC in both directions."""

    name = "network-stress"

    def _profile(self) -> StageProfile:
        return StageProfile(
            name="network-stress",
            cpu_demand=0.20,
            net_send_bps=100 * _MB * self.intensity,
            net_recv_bps=100 * _MB * self.intensity,
            cpu_jitter=0.05,
        )


def characterization_suite(
    intensity: float = 1.0, duration_s: float = 90.0
) -> dict[str, Workload]:
    """Idle plus the four component stressors, ready to run."""
    return {
        "idle": IdleWorkload(duration_s=duration_s),
        "cpu-stress": CPUStress(intensity, duration_s),
        "memory-stress": MemoryStress(intensity, duration_s),
        "disk-stress": DiskStress(intensity, duration_s),
        "network-stress": NetworkStress(intensity, duration_s),
    }
