"""PageRank over a ClueWeb09-scale web graph; network-heavy, long-running.

Iterative superstep structure: each iteration computes rank contributions
(CPU burst with memory traffic) and then exchanges them across the cluster
(network-heavy with modest CPU).  With ~800 tasks spread over the
iterations this is the paper's longest workload and the one with the most
power variation — and the one for which feature selection (network/memory
counters) matters more than model complexity (Figure 3).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import Workload
from repro.workloads.scheduler import Stage, StageProfile

_MB = 1e6


class PageRankWorkload(Workload):
    name = "pagerank"

    def __init__(self, n_iterations: int = 9, tasks_per_stage_per_machine: int = 9):
        if n_iterations < 1:
            raise ValueError("need at least one iteration")
        self.n_iterations = n_iterations
        self.tasks_per_stage_per_machine = tasks_per_stage_per_machine

    def stages(self, rng: np.random.Generator, n_machines: int) -> list[Stage]:
        n_tasks = self.tasks_per_stage_per_machine * n_machines
        stages: list[Stage] = []
        for iteration in range(self.n_iterations):
            # Early iterations move more rank mass; later ones are lighter
            # but never trivial — this produces the long, noisy power
            # signature of Figure 1.
            weight = 1.0 - 0.45 * iteration / max(self.n_iterations - 1, 1)
            intensity = float(weight * rng.uniform(0.9, 1.1))
            compute = Stage(
                profile=StageProfile(
                    name=f"compute[{iteration}]",
                    cpu_demand=min(0.80 * intensity + 0.05, 1.0),
                    mem_pages_per_sec=3200.0 * intensity,
                    disk_read_bps=8 * _MB * intensity,
                    cpu_jitter=0.14,
                ),
                n_tasks=n_tasks,
                task_duration_s=2.4,
                duration_sigma=0.35,
            )
            exchange = Stage(
                profile=StageProfile(
                    name=f"exchange[{iteration}]",
                    cpu_demand=0.30 + 0.1 * intensity,
                    net_send_bps=68 * _MB * intensity,
                    net_recv_bps=68 * _MB * intensity,
                    mem_pages_per_sec=1800.0 * intensity,
                    cpu_jitter=0.16,
                ),
                n_tasks=n_tasks,
                task_duration_s=2.8,
                duration_sigma=0.35,
            )
            stages.append(compute)
            stages.append(exchange)
        return stages
