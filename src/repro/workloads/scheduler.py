"""A Dryad-style stage/task scheduler.

The paper's workloads run on Dryad/DryadLINQ: jobs are DAGs of stages, each
stage fans out into tasks that a non-deterministic scheduler places on
machines.  Two consequences matter for power modeling and are reproduced
here:

* different runs partition work differently across machines, so a model
  trained on one run must generalize to another (Section V's train/test
  protocol), and
* machines finish stages at different times, producing idle "tail" seconds
  inside a run (visible in Figure 1's power signatures).

We model a job as a sequence of stages with a barrier between consecutive
stages (the MapReduce shuffle boundary).  Within a stage, tasks are placed
greedily on the machine that frees up first; task durations are drawn from
a lognormal around the stage's nominal task length.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class StageProfile:
    """Resource intensity of one stage while a task of it runs.

    Rates are machine-level means; the activity synthesizer adds temporal
    noise around them.  ``cpu_demand`` is the machine-level utilization the
    stage wants in [0, 1].
    """

    name: str
    cpu_demand: float
    disk_read_bps: float = 0.0
    disk_write_bps: float = 0.0
    net_send_bps: float = 0.0
    net_recv_bps: float = 0.0
    mem_pages_per_sec: float = 0.0
    cpu_jitter: float = 0.08
    """Relative AR(1) noise on CPU demand within the stage."""

    def __post_init__(self):
        if not 0.0 <= self.cpu_demand <= 1.0:
            raise ValueError(f"stage {self.name}: cpu_demand must be in [0,1]")


@dataclass(frozen=True)
class Stage:
    """A stage: a profile plus its task fan-out."""

    profile: StageProfile
    n_tasks: int
    task_duration_s: float
    duration_sigma: float = 0.25
    """Lognormal sigma of individual task durations."""

    def __post_init__(self):
        if self.n_tasks < 1:
            raise ValueError("a stage needs at least one task")
        if self.task_duration_s <= 0:
            raise ValueError("task duration must be positive")


@dataclass(frozen=True)
class BusyInterval:
    """A half-open interval [start, end) during which a machine runs tasks
    of one stage."""

    stage_index: int
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class MachineSchedule:
    """All busy intervals of one machine over a job run."""

    intervals: list[BusyInterval] = field(default_factory=list)

    def stage_indicator(self, n_seconds: int) -> np.ndarray:
        """(T,) array: stage index active at each second, -1 when idle."""
        indicator = np.full(n_seconds, -1, dtype=int)
        for interval in self.intervals:
            start = int(np.floor(interval.start_s))
            end = int(np.ceil(interval.end_s))
            indicator[start:min(end, n_seconds)] = interval.stage_index
        return indicator

    @property
    def busy_seconds(self) -> float:
        return sum(i.duration_s for i in self.intervals)


@dataclass(frozen=True)
class JobSchedule:
    """The outcome of scheduling one job run on a cluster."""

    machine_schedules: tuple[MachineSchedule, ...]
    stage_boundaries: tuple[float, ...]
    """Barrier times: the completion time of each stage."""

    @property
    def makespan_s(self) -> float:
        return self.stage_boundaries[-1] if self.stage_boundaries else 0.0

    @property
    def n_seconds(self) -> int:
        return int(np.ceil(self.makespan_s)) + 1


def schedule_job(
    stages: list[Stage],
    n_machines: int,
    rng: np.random.Generator,
) -> JobSchedule:
    """Greedy earliest-available-machine scheduling with stage barriers.

    Each task's duration is its stage's nominal duration perturbed by a
    lognormal factor; the partitioning is therefore non-deterministic run
    to run, as in Dryad.
    """
    if n_machines < 1:
        raise ValueError("need at least one machine")
    if not stages:
        raise ValueError("need at least one stage")

    machine_schedules = [MachineSchedule() for _ in range(n_machines)]
    stage_boundaries: list[float] = []
    barrier = 0.0

    for stage_index, stage in enumerate(stages):
        # Min-heap of (next available time, machine index).
        available = [(barrier, m) for m in range(n_machines)]
        heapq.heapify(available)
        durations = stage.task_duration_s * rng.lognormal(
            mean=0.0, sigma=stage.duration_sigma, size=stage.n_tasks
        )
        ends = []
        # Per-machine contiguous runs of tasks get merged into intervals.
        pending: dict[int, list[tuple[float, float]]] = {}
        for duration in durations:
            start, machine = heapq.heappop(available)
            end = start + float(duration)
            pending.setdefault(machine, []).append((start, end))
            heapq.heappush(available, (end, machine))
            ends.append(end)

        for machine, spans in pending.items():
            spans.sort()
            merged_start, merged_end = spans[0]
            merged: list[tuple[float, float]] = []
            for start, end in spans[1:]:
                if start <= merged_end + 1e-9:
                    merged_end = max(merged_end, end)
                else:
                    merged.append((merged_start, merged_end))
                    merged_start, merged_end = start, end
            merged.append((merged_start, merged_end))
            for start, end in merged:
                machine_schedules[machine].intervals.append(
                    BusyInterval(stage_index=stage_index, start_s=start, end_s=end)
                )

        barrier = max(ends)
        stage_boundaries.append(barrier)

    for schedule in machine_schedules:
        schedule.intervals.sort(key=lambda interval: interval.start_s)

    return JobSchedule(
        machine_schedules=tuple(machine_schedules),
        stage_boundaries=tuple(stage_boundaries),
    )
