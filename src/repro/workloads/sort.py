"""Sort: 4 GB per machine of 100-byte records; disk- and network-heavy.

The classic MapReduce sort pipeline: read partitions from disk, exchange
records across the cluster (range partitioning), sort in memory, write the
sorted output.  High disk and network utilization with only moderate CPU —
the workload the paper uses to show storage counters matter.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import Workload
from repro.workloads.scheduler import Stage, StageProfile

_MB = 1e6


class SortWorkload(Workload):
    name = "sort"

    def __init__(self, data_gb_per_machine: float = 4.0):
        if data_gb_per_machine <= 0:
            raise ValueError("data size must be positive")
        self.data_gb_per_machine = data_gb_per_machine

    def stages(self, rng: np.random.Generator, n_machines: int) -> list[Stage]:
        scale = self.data_gb_per_machine / 4.0
        tasks_per_machine = 4
        n_tasks = tasks_per_machine * n_machines

        read = Stage(
            profile=StageProfile(
                name="read",
                cpu_demand=0.35,
                disk_read_bps=115 * _MB,
                mem_pages_per_sec=1200.0,
                cpu_jitter=0.10,
            ),
            n_tasks=n_tasks,
            task_duration_s=9.0 * scale,
        )
        shuffle = Stage(
            profile=StageProfile(
                name="shuffle",
                cpu_demand=0.45,
                net_send_bps=55 * _MB,
                net_recv_bps=55 * _MB,
                disk_write_bps=35 * _MB,
                mem_pages_per_sec=2000.0,
                cpu_jitter=0.12,
            ),
            n_tasks=n_tasks,
            task_duration_s=14.0 * scale,
        )
        sort = Stage(
            profile=StageProfile(
                name="sort",
                cpu_demand=0.92,
                mem_pages_per_sec=6500.0,
                disk_read_bps=15 * _MB,
                cpu_jitter=0.06,
            ),
            n_tasks=n_tasks,
            task_duration_s=16.0 * scale,
        )
        write = Stage(
            profile=StageProfile(
                name="write",
                cpu_demand=0.30,
                disk_write_bps=105 * _MB,
                mem_pages_per_sec=1500.0,
                cpu_jitter=0.10,
            ),
            n_tasks=n_tasks,
            task_duration_s=10.0 * scale,
        )
        return [read, shuffle, sort, write]
