"""Prime: primality testing of ~1,000,000 numbers per partition; CPU-bound.

Almost pure computation: all cores near 100% at top frequency, negligible
disk and network.  This is the workload for which the paper shows modeling
*technique* matters more than feature selection (Figure 4) — the
utilization/frequency-to-power curve is strongly nonlinear and a linear
model cannot follow it across the DVFS range.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import Workload
from repro.workloads.scheduler import Stage, StageProfile


class PrimeWorkload(Workload):
    name = "prime"

    def __init__(self, partitions_per_machine: int = 3):
        if partitions_per_machine < 1:
            raise ValueError("need at least one partition per machine")
        self.partitions_per_machine = partitions_per_machine

    def stages(self, rng: np.random.Generator, n_machines: int) -> list[Stage]:
        # A brief partition-distribution stage, then the long compute burn.
        # Compute demand wanders across the DVFS range rather than pinning
        # at 100%: checking small numbers is memory-latency-bound while
        # large candidates saturate the ALUs, so different partitions load
        # the machine differently.
        distribute = Stage(
            profile=StageProfile(
                name="distribute",
                cpu_demand=0.20,
                disk_read_bps=20e6,
                net_send_bps=6e6,
                net_recv_bps=6e6,
                cpu_jitter=0.10,
            ),
            n_tasks=n_machines,
            task_duration_s=6.0,
        )
        stages = [distribute]
        n_rounds = 3
        for round_index in range(n_rounds):
            demand = float(rng.uniform(0.35, 0.98))
            stages.append(
                Stage(
                    profile=StageProfile(
                        name=f"compute[{round_index}]",
                        cpu_demand=demand,
                        mem_pages_per_sec=150.0,
                        cpu_jitter=0.18,
                    ),
                    n_tasks=self.partitions_per_machine * n_machines,
                    task_duration_s=26.0,
                    duration_sigma=0.30,
                )
            )
        return stages
