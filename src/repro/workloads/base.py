"""Workload base class and latent-activity synthesis.

A ``Workload`` defines the stage structure of a Dryad-style job (how many
tasks, what each stage does to CPU/disk/network/memory).  ``generate_run``
schedules the job on a cluster of machines and synthesizes each machine's
per-second ``ActivityTrace``, including DVFS governor decisions, OS
background activity, and derived channels (page faults, interrupts, DPC
time) that couple realistically to the primary ones.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.activity import ActivityTrace
from repro.platforms.machine import SimulatedMachine
from repro.workloads.scheduler import JobSchedule, Stage, schedule_job

_PAGE_SIZE = 4096.0
_MTU = 1500.0
_IO_CHUNK = 64 * 1024.0

_IDLE_CPU_DEMAND = 0.015
_IDLE_PAGE_FAULTS = 60.0
_IDLE_CACHE_FAULTS = 12.0
_IDLE_INTERRUPTS = 130.0
_IDLE_NET_BPS = 2e3
_IDLE_COMMITTED = 1.6e9


def ar1_series(
    rng: np.random.Generator, n: int, sigma: float, rho: float = 0.85
) -> np.ndarray:
    """Zero-mean AR(1) noise with stationary standard deviation ``sigma``."""
    if n <= 0:
        return np.empty(0)
    innovations = rng.normal(0.0, sigma * np.sqrt(1.0 - rho**2), size=n)
    series = np.empty(n)
    series[0] = rng.normal(0.0, sigma)
    for t in range(1, n):
        series[t] = rho * series[t - 1] + innovations[t]
    return series


def positive_noise(
    rng: np.random.Generator, n: int, sigma: float, rho: float = 0.85
) -> np.ndarray:
    """Multiplicative lognormal-ish AR(1) noise centered at 1."""
    return np.exp(ar1_series(rng, n, sigma, rho))


class Workload(abc.ABC):
    """A distributed MapReduce-style workload."""

    name: str = "abstract"

    core_imbalance_sigma: float = 0.06
    """How unevenly a machine's cores are loaded.  The paper's Dryad jobs
    are multithreaded and symmetric (small value); the future-work
    per-core DVFS study uses a large value to model thread-imbalanced
    applications."""

    @abc.abstractmethod
    def stages(self, rng: np.random.Generator, n_machines: int) -> list[Stage]:
        """The job's stage sequence for one run (may vary run-to-run)."""

    def generate_run(
        self,
        machines: list[SimulatedMachine],
        run_index: int,
        seed: int,
    ) -> dict[str, ActivityTrace]:
        """Schedule the job and synthesize activity for every machine.

        Returns a mapping from machine id to that machine's trace; all
        traces share the same length (the job makespan).
        """
        if not machines:
            raise ValueError("need at least one machine")
        rng = np.random.default_rng(
            [seed, run_index, _stable_tag(self.name)]
        )
        stages = self.stages(rng, n_machines=len(machines))
        schedule = schedule_job(stages, n_machines=len(machines), rng=rng)

        traces: dict[str, ActivityTrace] = {}
        for machine_index, machine in enumerate(machines):
            machine_rng = np.random.default_rng(
                [seed, run_index, _stable_tag(self.name), machine_index]
            )
            traces[machine.machine_id] = self._synthesize_machine(
                machine, schedule, machine_index, stages, machine_rng
            )
        return traces

    # ------------------------------------------------------------------
    # Per-machine activity synthesis
    # ------------------------------------------------------------------
    def _synthesize_machine(
        self,
        machine: SimulatedMachine,
        schedule: JobSchedule,
        machine_index: int,
        stages: list[Stage],
        rng: np.random.Generator,
    ) -> ActivityTrace:
        n_seconds = schedule.n_seconds
        indicator = schedule.machine_schedules[machine_index].stage_indicator(
            n_seconds
        )
        n_cores = machine.spec.n_cores

        # Stage-level target channels per second.
        cpu_target = np.full(n_seconds, _IDLE_CPU_DEMAND)
        disk_read = np.zeros(n_seconds)
        disk_write = np.zeros(n_seconds)
        net_send = np.full(n_seconds, _IDLE_NET_BPS)
        net_recv = np.full(n_seconds, _IDLE_NET_BPS)
        mem_pages = np.zeros(n_seconds)
        cpu_sigma = np.full(n_seconds, 0.05)

        for stage_index, stage in enumerate(stages):
            mask = indicator == stage_index
            if not mask.any():
                continue
            profile = stage.profile
            cpu_target[mask] = profile.cpu_demand
            disk_read[mask] = profile.disk_read_bps
            disk_write[mask] = profile.disk_write_bps
            net_send[mask] += profile.net_send_bps
            net_recv[mask] += profile.net_recv_bps
            mem_pages[mask] = profile.mem_pages_per_sec
            cpu_sigma[mask] = profile.cpu_jitter

        # Temporal noise on every channel, correlated within itself.
        cpu_noise = positive_noise(rng, n_seconds, sigma=1.0)
        machine_demand = np.clip(
            cpu_target * cpu_noise**cpu_sigma, 0.0, 1.0
        )
        disk_read = disk_read * positive_noise(rng, n_seconds, 0.30)
        disk_write = disk_write * positive_noise(rng, n_seconds, 0.30)
        net_send = net_send * positive_noise(rng, n_seconds, 0.25)
        net_recv = net_recv * positive_noise(rng, n_seconds, 0.25)
        mem_pages = mem_pages * positive_noise(rng, n_seconds, 0.35)

        # Per-core demand: multithreaded tasks load all cores similarly
        # by default; ``core_imbalance_sigma`` skews them for imbalanced
        # applications.
        sigma = self.core_imbalance_sigma
        core_imbalance = np.exp(
            rng.normal(0.0, sigma, size=(n_cores, 1))
            + np.stack([
                ar1_series(rng, n_seconds, max(sigma * 0.8, 0.05))
                for _ in range(n_cores)
            ])
        )
        core_demand = np.clip(machine_demand[None, :] * core_imbalance, 0.0, 1.0)

        # Governor reacts to demand; utilization follows demand (work is
        # demand-bound, not frequency-bound, for these workloads).
        core_freq = machine.assign_frequencies(core_demand, rng)
        core_util = core_demand

        # Storage bandwidth saturates at the hardware limit.
        total_bw = sum(d.max_bandwidth_bps for d in machine.spec.disks)
        disk_read = np.minimum(disk_read, 0.7 * total_bw)
        disk_write = np.minimum(disk_write, 0.7 * total_bw)
        disk_total = disk_read + disk_write
        iops = disk_total / _IO_CHUNK
        seek_load = iops / (400.0 * max(machine.spec.n_disks, 1))
        disk_busy = np.clip(disk_total / max(total_bw, 1.0) + 0.4 * seek_load, 0.0, 1.0)

        # Derived OS channels, coupled to the primary ones.
        mem_pages = mem_pages + 0.25 * disk_total / _PAGE_SIZE
        page_faults = (
            _IDLE_PAGE_FAULTS
            + 1.6 * mem_pages
            + 900.0 * machine_demand * positive_noise(rng, n_seconds, 0.20)
        )
        cache_faults = (
            _IDLE_CACHE_FAULTS
            + 0.35 * disk_read / _PAGE_SIZE
            + 500.0 * machine_demand * positive_noise(rng, n_seconds, 0.25)
        )
        busy_level = np.clip(machine_demand * 1.5, 0.0, 1.0)
        committed = _IDLE_COMMITTED + (
            0.25 * machine.spec.memory_gb * 2**30
        ) * _smooth(busy_level, window=15)
        net_packets = (net_send + net_recv) / _MTU
        interrupts = (
            _IDLE_INTERRUPTS
            + 0.9 * net_packets
            + 1.1 * iops
            + 250.0 * machine_demand
        ) * positive_noise(rng, n_seconds, 0.10)
        dpc_time = np.clip(
            0.12 * (net_send + net_recv) / machine.spec.nic_max_bps
            + 0.02 * machine_demand,
            0.0,
            0.35,
        )

        return ActivityTrace(
            core_util=core_util,
            core_freq_ghz=core_freq,
            mem_pages_per_sec=mem_pages,
            page_faults_per_sec=page_faults,
            cache_faults_per_sec=cache_faults,
            committed_bytes=committed,
            disk_read_bytes=disk_read,
            disk_write_bytes=disk_write,
            disk_busy_frac=disk_busy,
            net_sent_bytes=net_send,
            net_recv_bytes=net_recv,
            interrupts_per_sec=interrupts,
            dpc_time_frac=dpc_time,
            extras={"stage_indicator": indicator.astype(float)},
        )


def _smooth(values: np.ndarray, window: int) -> np.ndarray:
    """Trailing moving average used for slowly-varying channels."""
    if window <= 1 or values.size == 0:
        return values
    kernel = np.ones(window) / window
    padded = np.concatenate([np.full(window - 1, values[0]), values])
    return np.convolve(padded, kernel, mode="valid")


def _stable_tag(name: str) -> int:
    """Deterministic small integer from a workload name for seeding."""
    return sum(ord(c) * (i + 1) for i, c in enumerate(name)) % 99991
