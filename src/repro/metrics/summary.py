"""Aggregate accuracy reports for a fitted power model.

``AccuracyReport`` bundles every metric the paper reports side by side
(Table III) so that evaluation code computes them once, consistently.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np
from numpy.typing import ArrayLike

from repro.metrics.errors import (
    dynamic_range,
    dynamic_range_error,
    mean_absolute_error,
    median_absolute_error,
    median_relative_error,
    percent_error,
    root_mean_squared_error,
)


@dataclass(frozen=True)
class AccuracyReport:
    """All error metrics for one (model, evaluation set) pair."""

    rmse: float
    percent_error: float
    dre: float
    mean_absolute_error: float
    median_absolute_error: float
    median_relative_error: float
    dynamic_range: float
    mean_power: float
    n_samples: int

    @classmethod
    def from_predictions(
        cls,
        actual: ArrayLike,
        predicted: ArrayLike,
        idle_power: float | None = None,
    ) -> "AccuracyReport":
        """Compute every metric from a (measured, predicted) pair of series."""
        y = np.asarray(actual, dtype=float).ravel()
        return cls(
            rmse=root_mean_squared_error(actual, predicted),
            percent_error=percent_error(actual, predicted),
            dre=dynamic_range_error(actual, predicted, idle_power=idle_power),
            mean_absolute_error=mean_absolute_error(actual, predicted),
            median_absolute_error=median_absolute_error(actual, predicted),
            median_relative_error=median_relative_error(actual, predicted),
            dynamic_range=dynamic_range(actual, idle_power=idle_power),
            mean_power=float(np.mean(y)),
            n_samples=int(y.size),
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"rMSE={self.rmse:.2f}W  %err={self.percent_error:.1%}  "
            f"DRE={self.dre:.1%}  range={self.dynamic_range:.1f}W  "
            f"n={self.n_samples}"
        )

    # -- JSON round-trip (engine artifact cache) -----------------------
    def to_payload(self) -> dict:
        """Plain-JSON form; floats survive the round-trip bit-for-bit."""
        return asdict(self)

    @classmethod
    def from_payload(cls, payload: dict) -> "AccuracyReport":
        return cls(**payload)


@dataclass
class ReportCollection:
    """Accuracy reports accumulated across cross-validation folds."""

    reports: list[AccuracyReport] = field(default_factory=list)

    def add(self, report: AccuracyReport) -> None:
        self.reports.append(report)

    def __len__(self) -> int:
        return len(self.reports)

    def _mean_of(self, attribute: str) -> float:
        if not self.reports:
            raise ValueError("no reports collected")
        return float(np.mean([getattr(r, attribute) for r in self.reports]))

    @property
    def mean_dre(self) -> float:
        """Average DRE across folds (the paper's per-cell Table IV number)."""
        return self._mean_of("dre")

    @property
    def mean_rmse(self) -> float:
        return self._mean_of("rmse")

    @property
    def mean_percent_error(self) -> float:
        return self._mean_of("percent_error")

    @property
    def mean_median_relative_error(self) -> float:
        return self._mean_of("median_relative_error")

    # -- JSON round-trip (engine artifact cache) -----------------------
    def to_payload(self) -> list[dict]:
        return [report.to_payload() for report in self.reports]

    @classmethod
    def from_payload(cls, payload: list[dict]) -> "ReportCollection":
        return cls(
            reports=[AccuracyReport.from_payload(item) for item in payload]
        )
