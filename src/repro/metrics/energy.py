"""Energy metrics: what prior work reported instead of power traces.

Section II notes that some prior models predicted *total energy over a
workload* ([29, 23, 20]), which "misses application-level behavior
patterns".  These helpers integrate 1 Hz power into energy and expose the
total-energy relative error — useful both for comparing against that
prior-work metric and for demonstrating how flattering it is: a model can
have terrible per-second DRE and near-zero energy error if its mistakes
cancel.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike

from repro.metrics.errors import _as_aligned_arrays


def energy_joules(power_w: ArrayLike, sample_period_s: float = 1.0) -> float:
    """Total energy of a power series sampled at a fixed period."""
    power = np.asarray(power_w, dtype=float).ravel()
    if power.size == 0:
        raise ValueError("cannot integrate an empty power series")
    if sample_period_s <= 0:
        raise ValueError("sample period must be positive")
    return float(np.sum(power) * sample_period_s)


def energy_relative_error(
    actual_power: ArrayLike,
    predicted_power: ArrayLike,
    sample_period_s: float = 1.0,
) -> float:
    """|predicted energy - actual energy| / actual energy."""
    actual, predicted = _as_aligned_arrays(actual_power, predicted_power)
    actual_energy = energy_joules(actual, sample_period_s)
    if actual_energy <= 0:
        raise ValueError("actual energy must be positive")
    predicted_energy = energy_joules(predicted, sample_period_s)
    return abs(predicted_energy - actual_energy) / actual_energy
