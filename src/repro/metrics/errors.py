"""Error metrics for full-system power models.

The paper's headline metric is the *Dynamic Range Error* (DRE, Eq. 6):

    DRE = rMSE / (P_max - P_idle)

i.e. the root-mean-squared prediction error normalized by the dynamic power
range of the system under the evaluated workload.  Unlike percent error
(rMSE / average power), DRE is not flattered by a large static power
component, so it is comparable across platforms whose idle power differs by
orders of magnitude (Table III).

This module also provides the conventional metrics the paper compares
against: rMSE, percent error, mean/median absolute error and mean/median
relative error.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.analysis.arraysan import contracted


def _as_aligned_arrays(
    actual: ArrayLike, predicted: ArrayLike
) -> tuple[NDArray[np.float64], NDArray[np.float64]]:
    """Validate and convert inputs to equal-length float arrays."""
    y = np.asarray(actual, dtype=float).ravel()
    yhat = np.asarray(predicted, dtype=float).ravel()
    if y.shape != yhat.shape:
        raise ValueError(
            f"actual and predicted must have the same length, "
            f"got {y.shape[0]} and {yhat.shape[0]}"
        )
    if y.size == 0:
        raise ValueError("cannot compute an error metric on empty arrays")
    if not (np.all(np.isfinite(y)) and np.all(np.isfinite(yhat))):
        raise ValueError("actual and predicted must be finite")
    return y, yhat


@contracted
def mean_squared_error(actual: ArrayLike, predicted: ArrayLike) -> float:
    """Mean squared prediction error in watts squared."""
    y, yhat = _as_aligned_arrays(actual, predicted)
    return float(np.mean((y - yhat) ** 2))


@contracted
def root_mean_squared_error(
    actual: ArrayLike, predicted: ArrayLike
) -> float:
    """Root-mean-squared prediction error (rMSE), in watts."""
    return float(np.sqrt(mean_squared_error(actual, predicted)))


def percent_error(actual: ArrayLike, predicted: ArrayLike) -> float:
    """rMSE divided by average measured power (the '% Err' of Table III)."""
    y, yhat = _as_aligned_arrays(actual, predicted)
    mean_power = float(np.mean(y))
    if mean_power <= 0.0:
        raise ValueError("average measured power must be positive")
    return root_mean_squared_error(y, yhat) / mean_power


def mean_absolute_error(actual: ArrayLike, predicted: ArrayLike) -> float:
    """Mean absolute prediction error, in watts."""
    y, yhat = _as_aligned_arrays(actual, predicted)
    return float(np.mean(np.abs(y - yhat)))


def median_absolute_error(
    actual: ArrayLike, predicted: ArrayLike
) -> float:
    """Median absolute prediction error, in watts."""
    y, yhat = _as_aligned_arrays(actual, predicted)
    return float(np.median(np.abs(y - yhat)))


def median_relative_error(
    actual: ArrayLike, predicted: ArrayLike
) -> float:
    """Median of |error| / measured power.

    The paper reports 0.5-2.5% median relative error for its models; this is
    the metric most prior work used.
    """
    y, yhat = _as_aligned_arrays(actual, predicted)
    if np.any(y <= 0.0):
        raise ValueError("measured power must be positive for relative error")
    return float(np.median(np.abs(y - yhat) / y))


@contracted
def dynamic_range(
    actual: ArrayLike, idle_power: float | None = None
) -> float:
    """Dynamic power range P_max - P_idle of a measured power series.

    If ``idle_power`` is given (e.g. from a platform's calibration), it is
    used as the floor; otherwise the observed minimum stands in for idle, as
    the paper does when evaluating a workload trace.
    """
    y = np.asarray(actual, dtype=float).ravel()
    if y.size == 0:
        raise ValueError("cannot compute the dynamic range of an empty series")
    floor = float(np.min(y)) if idle_power is None else float(idle_power)
    return float(np.max(y)) - floor


@contracted
def dynamic_range_error(
    actual: ArrayLike,
    predicted: ArrayLike,
    idle_power: float | None = None,
) -> float:
    """Dynamic Range Error (Eq. 6): rMSE / (P_max - P_idle).

    Raises ``ValueError`` when the series has no dynamic range (a constant
    trace cannot be judged on how well its variation is modeled).
    """
    y, yhat = _as_aligned_arrays(actual, predicted)
    span = dynamic_range(y, idle_power=idle_power)
    if span <= 0.0:
        raise ValueError(
            "dynamic range is zero; DRE is undefined for a constant power trace"
        )
    return root_mean_squared_error(y, yhat) / span
