"""Error metrics for power models, including the paper's Dynamic Range Error."""

from repro.metrics.energy import energy_joules, energy_relative_error
from repro.metrics.errors import (
    dynamic_range,
    dynamic_range_error,
    mean_absolute_error,
    mean_squared_error,
    median_absolute_error,
    median_relative_error,
    percent_error,
    root_mean_squared_error,
)
from repro.metrics.summary import AccuracyReport, ReportCollection

__all__ = [
    "AccuracyReport",
    "ReportCollection",
    "dynamic_range",
    "dynamic_range_error",
    "energy_joules",
    "energy_relative_error",
    "mean_absolute_error",
    "mean_squared_error",
    "median_absolute_error",
    "median_relative_error",
    "percent_error",
    "root_mean_squared_error",
]
