"""Model-based power capping (Section I / Section V-D).

The paper motivates CHAOS with online power capping: a rack controller
enforces a power budget using *predicted* power where meters are absent.
``PowerCapController`` implements the standard guard-banded design the
paper's discussion implies:

* the operating threshold sits below the contractual cap by a guard band
  sized from the model's validated error distribution ("the more
  inaccurate a model is, the larger the necessary guard band");
* alarms carry hysteresis so meter-noise-scale flutter does not flap the
  actuator;
* the controller reports how much of the budget the guard band strands —
  the capital cost of model error.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class CapState(enum.Enum):
    NORMAL = "normal"
    THROTTLED = "throttled"


@dataclass(frozen=True)
class GuardBand:
    """Guard band derived from a validated error distribution."""

    watts: float
    quantile: float

    @classmethod
    def from_errors(
        cls, measured, predicted, quantile: float = 0.999
    ) -> "GuardBand":
        """Size the band from underprediction tail of (measured - predicted).

        ``quantile`` is the fraction of historical underpredictions the
        band must cover; 99.9% is a typical contractual setting.
        """
        measured = np.asarray(measured, dtype=float).ravel()
        predicted = np.asarray(predicted, dtype=float).ravel()
        if measured.shape != predicted.shape or measured.size == 0:
            raise ValueError("need matching, non-empty validation series")
        if not 0.5 <= quantile < 1.0:
            raise ValueError("quantile must be in [0.5, 1)")
        underprediction = measured - predicted
        band = float(np.quantile(underprediction, quantile))
        return cls(watts=max(band, 0.0), quantile=quantile)


@dataclass
class PowerCapController:
    """Guard-banded, hysteretic power-cap controller on predicted power."""

    cap_w: float
    guard_band: GuardBand
    release_hysteresis_w: float = 5.0
    min_throttle_seconds: int = 3

    state: CapState = field(default=CapState.NORMAL, init=False)
    _throttled_for: int = field(default=0, init=False)

    def __post_init__(self):
        if self.cap_w <= 0:
            raise ValueError("cap must be positive")
        if self.guard_band.watts >= self.cap_w:
            raise ValueError("guard band swallows the entire cap")

    @property
    def threshold_w(self) -> float:
        """The predicted-power level at which throttling engages."""
        return self.cap_w - self.guard_band.watts

    @property
    def stranded_w(self) -> float:
        """Budget stranded by model error (the paper's capex argument)."""
        return self.guard_band.watts

    def step(self, predicted_power_w: float) -> CapState:
        """Advance one 1 Hz sample; returns the (possibly new) state."""
        if self.state is CapState.NORMAL:
            if predicted_power_w >= self.threshold_w:
                self.state = CapState.THROTTLED
                self._throttled_for = 1
        else:
            self._throttled_for += 1
            release_level = self.threshold_w - self.release_hysteresis_w
            if (
                predicted_power_w < release_level
                and self._throttled_for >= self.min_throttle_seconds
            ):
                self.state = CapState.NORMAL
                self._throttled_for = 0
        return self.state

    def run(self, predicted_power_w) -> list[CapState]:
        """Run the controller over a whole predicted trace."""
        return [self.step(float(p)) for p in np.asarray(predicted_power_w)]


@dataclass(frozen=True)
class CappingAssessment:
    """How a controller driven by predictions compares to ground truth."""

    missed_overshoot_seconds: int
    covered_overshoot_seconds: int
    throttled_seconds: int
    total_seconds: int

    @property
    def coverage(self) -> float:
        """Fraction of true above-cap seconds spent throttled."""
        overshoots = self.missed_overshoot_seconds + self.covered_overshoot_seconds
        if overshoots == 0:
            return 1.0
        return self.covered_overshoot_seconds / overshoots

    @property
    def throttle_duty(self) -> float:
        return self.throttled_seconds / max(self.total_seconds, 1)


def assess_capping(
    controller: PowerCapController,
    predicted_power_w,
    measured_power_w,
) -> CappingAssessment:
    """Drive the controller on predictions, score it against measurements."""
    predicted = np.asarray(predicted_power_w, dtype=float).ravel()
    measured = np.asarray(measured_power_w, dtype=float).ravel()
    if predicted.shape != measured.shape:
        raise ValueError("predicted and measured lengths differ")
    states = controller.run(predicted)
    throttled = np.array([state is CapState.THROTTLED for state in states])
    over_cap = measured > controller.cap_w
    return CappingAssessment(
        missed_overshoot_seconds=int(np.sum(over_cap & ~throttled)),
        covered_overshoot_seconds=int(np.sum(over_cap & throttled)),
        throttled_seconds=int(throttled.sum()),
        total_seconds=int(measured.size),
    )
