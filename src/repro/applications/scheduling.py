"""Power-aware job placement (Section I: "power-aware software tuning",
Section V-B: "power capping and power-aware resource scheduling").

A small scheduler that places jobs on a (possibly heterogeneous) cluster
using CHAOS-predicted per-machine power: each candidate placement's
predicted power delta is estimated from the platform's model evaluated at
the job's expected counter footprint, and jobs go wherever they fit under
per-machine power limits with the most headroom left.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.models.composition import PlatformModel


@dataclass(frozen=True)
class JobRequest:
    """A job's expected steady-state counter footprint on one machine."""

    name: str
    counter_footprint: dict[str, float]
    """Expected values of (a subset of) the model's counters while the
    job runs; unspecified counters are assumed at their idle level.

    The footprint must cover the model's load-bearing counters: a busy
    job also raises the DVFS frequency counter, so a footprint giving
    utilization but leaving frequency at its idle value describes a
    machine state the model (correctly) prices near idle."""


@dataclass(frozen=True)
class MachineSlot:
    """A schedulable machine with a power limit."""

    machine_id: str
    platform_key: str
    power_limit_w: float
    idle_counters: dict[str, float]


@dataclass
class Placement:
    machine_id: str
    job_name: str
    predicted_power_w: float


@dataclass
class PowerAwareScheduler:
    """Greedy best-fit-by-headroom placement on predicted power."""

    platform_models: dict[str, PlatformModel]
    slots: list[MachineSlot]
    _load_w: dict[str, float] = field(default_factory=dict, init=False)
    _placements: list[Placement] = field(default_factory=list, init=False)

    def __post_init__(self):
        missing = {
            slot.platform_key
            for slot in self.slots
            if slot.platform_key not in self.platform_models
        }
        if missing:
            raise ValueError(f"no model for platform(s) {sorted(missing)}")
        for slot in self.slots:
            self._load_w[slot.machine_id] = self._predict_power(
                slot, extra_counters=None
            )

    # ------------------------------------------------------------------
    def _predict_power(
        self, slot: MachineSlot, extra_counters: dict[str, float] | None
    ) -> float:
        model = self.platform_models[slot.platform_key]
        names = model.feature_set.feature_names
        row = []
        for name in names:
            base = name[: -len(" (t-1)")] if name.endswith(" (t-1)") else name
            value = slot.idle_counters.get(base, 0.0)
            if extra_counters and base in extra_counters:
                value = extra_counters[base]
            row.append(value)
        design = np.asarray([row], dtype=float)
        return float(model.model.predict(design)[0])

    def headroom_w(self, machine_id: str) -> float:
        slot = self._slot(machine_id)
        return slot.power_limit_w - self._load_w[machine_id]

    def _slot(self, machine_id: str) -> MachineSlot:
        for slot in self.slots:
            if slot.machine_id == machine_id:
                return slot
        raise KeyError(f"unknown machine {machine_id!r}")

    # ------------------------------------------------------------------
    def place(self, job: JobRequest) -> Placement | None:
        """Place a job on the feasible machine with most residual headroom.

        Returns None when no machine can host the job under its limit.
        """
        best: tuple[float, MachineSlot, float] | None = None
        for slot in self.slots:
            predicted = self._predict_power(slot, job.counter_footprint)
            # The job's delta over the machine's current predicted load.
            idle = self._predict_power(slot, None)
            delta = max(predicted - idle, 0.0)
            new_load = self._load_w[slot.machine_id] + delta
            residual = slot.power_limit_w - new_load
            if residual < 0:
                continue
            if best is None or residual > best[0]:
                best = (residual, slot, new_load)
        if best is None:
            return None
        _, slot, new_load = best
        self._load_w[slot.machine_id] = new_load
        placement = Placement(
            machine_id=slot.machine_id,
            job_name=job.name,
            predicted_power_w=new_load,
        )
        self._placements.append(placement)
        return placement

    def place_all(self, jobs: list[JobRequest]) -> list[Placement]:
        """Place jobs in order; unplaceable jobs are skipped."""
        placements = []
        for job in jobs:
            placement = self.place(job)
            if placement is not None:
                placements.append(placement)
        return placements

    @property
    def placements(self) -> list[Placement]:
        return list(self._placements)

    def total_predicted_power_w(self) -> float:
        return float(sum(self._load_w.values()))
