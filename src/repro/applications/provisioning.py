"""Power provisioning and planning (Section I / Section V-D).

"In resource allocation, inaccurate power models would require
conservative provisioning with too few machines deployed in a fixed
area, requiring more capital expenditures."  These helpers answer the
planner's question: given a facility power budget and a CHAOS-predicted
per-machine power profile for the target workload mix, how many machines
fit — and how many machines does model error cost?
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MachinePowerProfile:
    """Summary of one platform's predicted power under a workload mix."""

    platform_key: str
    mean_w: float
    peak_w: float
    peak_quantile: float

    @classmethod
    def from_predictions(
        cls,
        platform_key: str,
        predicted_power_w,
        peak_quantile: float = 0.99,
    ) -> "MachinePowerProfile":
        power = np.asarray(predicted_power_w, dtype=float).ravel()
        if power.size == 0:
            raise ValueError("need a non-empty predicted power series")
        if not 0.5 <= peak_quantile <= 1.0:
            raise ValueError("peak_quantile must be in [0.5, 1]")
        return cls(
            platform_key=platform_key,
            mean_w=float(np.mean(power)),
            peak_w=float(np.quantile(power, peak_quantile)),
            peak_quantile=peak_quantile,
        )


@dataclass(frozen=True)
class ProvisioningPlan:
    """How many machines a budget supports, and what model error costs."""

    budget_w: float
    per_machine_allocation_w: float
    machines_supported: int
    machines_lost_to_guard_band: int
    guard_band_per_machine_w: float

    @property
    def utilized_w(self) -> float:
        return self.machines_supported * self.per_machine_allocation_w


def plan_provisioning(
    budget_w: float,
    profile: MachinePowerProfile,
    model_guard_band_w: float = 0.0,
    oversubscription: float = 1.0,
) -> ProvisioningPlan:
    """Fit machines under a facility budget.

    Parameters
    ----------
    budget_w:
        Total facility/rack power budget.
    profile:
        Predicted per-machine power profile under the planned workloads.
    model_guard_band_w:
        Extra watts reserved per machine for model error (from
        ``GuardBand``); zero models a perfect oracle.
    oversubscription:
        >1 allows provisioning against a level below per-machine peak
        (Fan et al.-style oversubscription, relying on capping to shave
        coincident peaks).
    """
    if budget_w <= 0:
        raise ValueError("budget must be positive")
    if oversubscription < 1.0:
        raise ValueError("oversubscription must be >= 1")
    allocation = profile.peak_w / oversubscription + model_guard_band_w
    machines = int(budget_w // allocation)
    oracle_allocation = profile.peak_w / oversubscription
    oracle_machines = int(budget_w // oracle_allocation)
    return ProvisioningPlan(
        budget_w=budget_w,
        per_machine_allocation_w=allocation,
        machines_supported=machines,
        machines_lost_to_guard_band=max(oracle_machines - machines, 0),
        guard_band_per_machine_w=model_guard_band_w,
    )
