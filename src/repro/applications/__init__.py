"""Downstream applications of CHAOS models: the paper's Section I use
cases — power capping, provisioning/planning, power-aware scheduling."""

from repro.applications.capping import (
    CappingAssessment,
    CapState,
    GuardBand,
    PowerCapController,
    assess_capping,
)
from repro.applications.provisioning import (
    MachinePowerProfile,
    ProvisioningPlan,
    plan_provisioning,
)
from repro.applications.scheduling import (
    JobRequest,
    MachineSlot,
    Placement,
    PowerAwareScheduler,
)

__all__ = [
    "CapState",
    "CappingAssessment",
    "GuardBand",
    "JobRequest",
    "MachinePowerProfile",
    "MachineSlot",
    "Placement",
    "PowerAwareScheduler",
    "PowerCapController",
    "ProvisioningPlan",
    "assess_capping",
    "plan_provisioning",
]
