"""Cluster-level power: Eq. 5 over live sessions, staleness-aware.

The paper composes cluster power as the sum of per-machine model
predictions (Eq. 5).  Online, a machine can go quiet — crashed agent,
partitioned network — and its last prediction would otherwise be summed
forever.  The aggregator tracks per-session freshness in server ticks
and decays a silent machine's contribution linearly from its last
prediction down to the platform's idle-power floor: the most defensible
stand-in for a machine that is presumably up but no longer observed.

Freshness is measured in aggregator ticks, not wall-clock time, so the
decay schedule is deterministic under replay at any speed multiple.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.serving.session import MachineSession


@dataclass(frozen=True)
class MachineContribution:
    """One machine's term in the Eq. 5 sum for one tick."""

    machine_id: str
    power_w: float
    staleness_ticks: int
    decayed: bool
    """True once the contribution is no longer the raw last prediction."""

    def to_payload(self) -> dict:
        return {
            "machine_id": self.machine_id,
            "power_w": self.power_w,
            "staleness_ticks": self.staleness_ticks,
            "decayed": self.decayed,
        }


@dataclass(frozen=True)
class ClusterEstimate:
    """The Eq. 5 cluster sum for one aggregator tick."""

    tick: int
    total_power_w: float
    n_machines: int
    n_fresh: int
    n_decaying: int
    contributions: tuple[MachineContribution, ...]

    def to_payload(self) -> dict:
        return {
            "tick": self.tick,
            "total_power_w": self.total_power_w,
            "n_machines": self.n_machines,
            "n_fresh": self.n_fresh,
            "n_decaying": self.n_decaying,
            "machines": [c.to_payload() for c in self.contributions],
        }


@dataclass
class _Freshness:
    n_scored_seen: int = -1
    staleness_ticks: int = 0


@dataclass
class ClusterAggregator:
    """Sums session predictions with per-machine staleness decay."""

    fresh_ticks: int = 5
    """A contribution is the raw last prediction for this many silent
    ticks before decay begins (covers ordinary scheduling jitter)."""

    decay_ticks: int = 30
    """Silent ticks over which a stale contribution ramps linearly from
    the last prediction down to the platform's idle-power floor."""

    _tick: int = field(default=0, init=False)
    _freshness: dict[str, _Freshness] = field(
        default_factory=dict, init=False, repr=False
    )

    def __post_init__(self):
        if self.fresh_ticks < 0:
            raise ValueError("fresh_ticks must be non-negative")
        if self.decay_ticks < 1:
            raise ValueError("decay_ticks must be positive")

    def _contribution(self, session: MachineSession) -> MachineContribution:
        state = self._freshness.setdefault(
            session.machine_id, _Freshness()
        )
        if session.n_scored != state.n_scored_seen:
            state.n_scored_seen = session.n_scored
            state.staleness_ticks = 0
        else:
            state.staleness_ticks += 1

        floor_w = session.idle_floor_w
        last_w = session.last_power_w
        if last_w is None:
            # Never scored: all we know about the machine is its floor.
            return MachineContribution(
                machine_id=session.machine_id,
                power_w=floor_w,
                staleness_ticks=state.staleness_ticks,
                decayed=True,
            )
        silent = state.staleness_ticks - self.fresh_ticks
        if silent <= 0:
            return MachineContribution(
                machine_id=session.machine_id,
                power_w=last_w,
                staleness_ticks=state.staleness_ticks,
                decayed=False,
            )
        ramp = min(1.0, silent / self.decay_ticks)
        power_w = last_w + (floor_w - last_w) * ramp
        return MachineContribution(
            machine_id=session.machine_id,
            power_w=power_w,
            staleness_ticks=state.staleness_ticks,
            decayed=True,
        )

    def tick(self, sessions: Iterable[MachineSession]) -> ClusterEstimate:
        """Advance one tick and sum the fleet (Eq. 5)."""
        self._tick += 1
        contributions = []
        seen = set()
        for session in sessions:
            contributions.append(self._contribution(session))
            seen.add(session.machine_id)
        # Sessions that disconnected leave the sum entirely; drop their
        # freshness state so a reconnect starts clean.
        for machine_id in list(self._freshness):
            if machine_id not in seen:
                del self._freshness[machine_id]
        n_decaying = sum(1 for c in contributions if c.decayed)
        return ClusterEstimate(
            tick=self._tick,
            total_power_w=sum(c.power_w for c in contributions),
            n_machines=len(contributions),
            n_fresh=len(contributions) - n_decaying,
            n_decaying=n_decaying,
            contributions=tuple(contributions),
        )


def merge_estimates(
    tick: int, partials: Iterable[ClusterEstimate]
) -> ClusterEstimate:
    """Merge per-shard Eq. 5 partial sums into one fleet estimate.

    Eq. 5 is a plain sum over machines, so sharding it is exact: each
    shard sums its own sessions (with its own staleness decay, which is
    deterministic because every shard ticks once per router tick) and
    the router adds the partial totals.  Contributions concatenate in
    shard order, keeping the per-machine breakdown intact.
    """
    contributions: list[MachineContribution] = []
    total = 0.0
    n_fresh = 0
    n_decaying = 0
    for partial in partials:
        contributions.extend(partial.contributions)
        total += partial.total_power_w
        n_fresh += partial.n_fresh
        n_decaying += partial.n_decaying
    return ClusterEstimate(
        tick=tick,
        total_power_w=total,
        n_machines=len(contributions),
        n_fresh=n_fresh,
        n_decaying=n_decaying,
        contributions=tuple(contributions),
    )
