"""Versioned model registry with a shadow-scoring publish gate.

The registry is a directory of content-addressed serving bundles plus a
single atomically-rewritten manifest:

* ``<root>/bundles/<digest>.json`` — immutable bundle payloads, keyed by
  the SHA-256 of their canonical JSON (``engine/hashing.py``), written
  with the same crash-safe temp-file + ``os.replace`` discipline as the
  artifact cache;
* ``<root>/manifest.json`` — per-platform version history and the live
  pointer, with a monotonically increasing ``generation`` the server
  polls to detect hot-swaps cheaply.

Publishing is **gated**: a candidate bundle is shadow-scored against the
currently-live model on a held-out replay window (a recorded
:class:`PerfmonLog` with metered power), and rejected when its DRE
(Eq. 6) regresses past a threshold — the paper's accuracy metric turned
into an operational guardrail.  Rollback just moves the live pointer
back one version; bundles are never deleted by publish or rollback.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any

from repro.engine.cache import atomic_write_json
from repro.metrics.errors import dynamic_range_error
from repro.serving.bundle import ServingBundle, bundle_from_payload
from repro.telemetry.perfmon import PerfmonLog

MANIFEST_FORMAT_VERSION = 1

DEFAULT_MAX_DRE_REGRESSION = 0.02
"""Default gate: reject a candidate whose replay-window DRE exceeds the
live model's by more than two DRE points."""

DEFAULT_ABSOLUTE_DRE_LIMIT = 0.70
"""With no live model to shadow, a candidate must at least beat this
absolute DRE on the replay window (the paper's worst acceptable models
sit far below it; a garbage bundle does not)."""


class RegistryError(RuntimeError):
    """A registry operation that cannot proceed (gate, missing version)."""


@dataclass(frozen=True)
class GateResult:
    """Outcome of shadow-scoring a candidate against the live model."""

    accepted: bool
    candidate_dre: float
    live_dre: float | None
    max_dre_regression: float
    reason: str

    def to_payload(self) -> dict:
        return {
            "accepted": self.accepted,
            "candidate_dre": self.candidate_dre,
            "live_dre": self.live_dre,
            "max_dre_regression": self.max_dre_regression,
            "reason": self.reason,
        }

    def describe(self) -> str:
        live = (
            f"{self.live_dre:.2%}" if self.live_dre is not None else "n/a"
        )
        status = "ACCEPT" if self.accepted else "REJECT"
        return (
            f"[{status}] candidate DRE {self.candidate_dre:.2%} vs live "
            f"{live} (max regression "
            f"{self.max_dre_regression:.2%}): {self.reason}"
        )


def shadow_score(
    candidate: ServingBundle,
    live: ServingBundle | None,
    replay_log: PerfmonLog,
    max_dre_regression: float = DEFAULT_MAX_DRE_REGRESSION,
    absolute_dre_limit: float = DEFAULT_ABSOLUTE_DRE_LIMIT,
) -> GateResult:
    """Score candidate (and live) on a held-out replay window.

    Both models predict the window's power from its counters; each gets
    a DRE against the metered series.  The candidate is accepted when it
    does not regress the live DRE by more than ``max_dre_regression``
    (or, with no live model, when it beats ``absolute_dre_limit``).
    """
    candidate_dre = dynamic_range_error(
        replay_log.power_w,
        candidate.platform_model.predict_log(replay_log),
        idle_power=candidate.idle_power_w,
    )
    if live is None:
        accepted = candidate_dre <= absolute_dre_limit
        reason = (
            "no live model; candidate within the absolute DRE limit"
            if accepted
            else f"no live model and candidate DRE exceeds the absolute "
            f"limit {absolute_dre_limit:.2%}"
        )
        return GateResult(
            accepted=accepted,
            candidate_dre=candidate_dre,
            live_dre=None,
            max_dre_regression=max_dre_regression,
            reason=reason,
        )
    live_dre = dynamic_range_error(
        replay_log.power_w,
        live.platform_model.predict_log(replay_log),
        idle_power=live.idle_power_w,
    )
    regression = candidate_dre - live_dre
    accepted = regression <= max_dre_regression
    reason = (
        f"DRE regression {regression:+.2%} within the gate"
        if accepted
        else f"DRE regression {regression:+.2%} exceeds the gate"
    )
    return GateResult(
        accepted=accepted,
        candidate_dre=candidate_dre,
        live_dre=live_dre,
        max_dre_regression=max_dre_regression,
        reason=reason,
    )


@dataclass(frozen=True)
class VersionInfo:
    """One published version of one platform's model."""

    platform_key: str
    version: int
    digest: str
    generation: int
    """Registry-wide publish sequence number at publish time."""

    gate: dict | None = None

    @property
    def label(self) -> str:
        return f"{self.platform_key}@v{self.version}-{self.digest[:12]}"

    def to_payload(self) -> dict:
        return {
            "version": self.version,
            "digest": self.digest,
            "generation": self.generation,
            "gate": self.gate,
        }


def _version_from_payload(platform_key: str, payload: dict) -> VersionInfo:
    return VersionInfo(
        platform_key=platform_key,
        version=int(payload["version"]),
        digest=str(payload["digest"]),
        generation=int(payload["generation"]),
        gate=payload.get("gate"),
    )


@dataclass
class ModelRegistry:
    """Content-addressed bundle store + per-platform live pointers."""

    root: pathlib.Path

    _bundle_cache: dict[str, ServingBundle] = field(
        default_factory=dict, init=False, repr=False
    )

    def __post_init__(self):
        self.root = pathlib.Path(self.root)
        self._bundles_dir.mkdir(parents=True, exist_ok=True)

    @property
    def _bundles_dir(self) -> pathlib.Path:
        return self.root / "bundles"

    @property
    def _manifest_path(self) -> pathlib.Path:
        return self.root / "manifest.json"

    # -- manifest ------------------------------------------------------
    def _read_manifest(self) -> dict:
        try:
            with open(self._manifest_path) as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            return {
                "format_version": MANIFEST_FORMAT_VERSION,
                "generation": 0,
                "platforms": {},
            }
        if manifest.get("format_version") != MANIFEST_FORMAT_VERSION:
            raise RegistryError(
                f"unsupported manifest version "
                f"{manifest.get('format_version')!r}"
            )
        return manifest

    def _write_manifest(self, manifest: dict) -> None:
        atomic_write_json(self._manifest_path, manifest)

    @property
    def generation(self) -> int:
        """Monotonic publish/rollback counter (0 for an empty registry).

        Servers poll this between ticks: an unchanged generation means
        no live pointer moved, so no bundle needs reloading.
        """
        return int(self._read_manifest()["generation"])

    def platforms(self) -> list[str]:
        return sorted(self._read_manifest()["platforms"])

    # -- bundles -------------------------------------------------------
    def store_bundle(self, bundle: ServingBundle) -> str:
        """Persist a bundle payload; returns its content digest.

        Storing is idempotent — the digest *is* the identity, so an
        already-present bundle is simply reused.
        """
        digest = bundle.digest()
        path = self._bundles_dir / f"{digest}.json"
        if not path.exists():
            atomic_write_json(path, bundle.to_payload())
        self._bundle_cache[digest] = bundle
        return digest

    def load_bundle(self, digest: str) -> ServingBundle:
        """The immutable bundle for one digest (memoized per registry)."""
        cached = self._bundle_cache.get(digest)
        if cached is not None:
            return cached
        path = self._bundles_dir / f"{digest}.json"
        try:
            with open(path) as handle:
                bundle = bundle_from_payload(json.load(handle))
        except FileNotFoundError:
            raise RegistryError(f"no bundle stored for digest {digest!r}")
        if bundle.digest() != digest:
            raise RegistryError(
                f"bundle at {path} does not match its digest (corrupt?)"
            )
        self._bundle_cache[digest] = bundle
        return bundle

    # -- versions ------------------------------------------------------
    def history(self, platform_key: str) -> list[VersionInfo]:
        """All published versions for a platform, oldest first."""
        manifest = self._read_manifest()
        entry = manifest["platforms"].get(platform_key)
        if entry is None:
            return []
        return [
            _version_from_payload(platform_key, payload)
            for payload in entry["history"]
        ]

    def live_version(self, platform_key: str) -> VersionInfo | None:
        """The live version for a platform, or None before any publish."""
        manifest = self._read_manifest()
        entry = manifest["platforms"].get(platform_key)
        if entry is None or entry["live"] is None:
            return None
        for payload in entry["history"]:
            if payload["version"] == entry["live"]:
                return _version_from_payload(platform_key, payload)
        raise RegistryError(
            f"manifest live pointer v{entry['live']} for "
            f"{platform_key!r} has no history entry"
        )

    def live_bundle(
        self, platform_key: str
    ) -> tuple[VersionInfo, ServingBundle] | None:
        version = self.live_version(platform_key)
        if version is None:
            return None
        return version, self.load_bundle(version.digest)

    def publish(
        self,
        bundle: ServingBundle,
        replay_log: PerfmonLog | None = None,
        max_dre_regression: float = DEFAULT_MAX_DRE_REGRESSION,
        force: bool = False,
    ) -> tuple[VersionInfo, GateResult | None]:
        """Gate, store and make live one new bundle version.

        With a ``replay_log`` the candidate is shadow-scored against the
        live model and a rejected candidate raises :class:`RegistryError`
        (nothing is stored, the live pointer does not move) unless
        ``force`` overrides the gate.  Without a replay window the
        publish is ungated — intended for bootstrap and tests.
        """
        platform_key = bundle.platform_key
        gate: GateResult | None = None
        if replay_log is not None:
            live = self.live_bundle(platform_key)
            gate = shadow_score(
                bundle,
                live[1] if live is not None else None,
                replay_log,
                max_dre_regression=max_dre_regression,
            )
            if not gate.accepted and not force:
                raise RegistryError(
                    f"publish rejected by the shadow gate: "
                    f"{gate.describe()}"
                )
        digest = self.store_bundle(bundle)
        manifest = self._read_manifest()
        entry = manifest["platforms"].setdefault(
            platform_key, {"live": None, "history": []}
        )
        manifest["generation"] = int(manifest["generation"]) + 1
        version = VersionInfo(
            platform_key=platform_key,
            version=len(entry["history"]) + 1,
            digest=digest,
            generation=int(manifest["generation"]),
            gate=gate.to_payload() if gate is not None else None,
        )
        entry["history"].append(version.to_payload())
        entry["live"] = version.version
        self._write_manifest(manifest)
        return version, gate

    def rollback(self, platform_key: str) -> VersionInfo:
        """Move the live pointer back to the previously-live version."""
        manifest = self._read_manifest()
        entry = manifest["platforms"].get(platform_key)
        if entry is None or entry["live"] is None:
            raise RegistryError(
                f"nothing published for platform {platform_key!r}"
            )
        if entry["live"] <= 1:
            raise RegistryError(
                f"{platform_key!r} is at its first version; nothing to "
                "roll back to"
            )
        entry["live"] = entry["live"] - 1
        manifest["generation"] = int(manifest["generation"]) + 1
        self._write_manifest(manifest)
        live = self.live_version(platform_key)
        assert live is not None
        return live

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe summary for telemetry and the CLI."""
        manifest = self._read_manifest()
        return {
            "root": str(self.root),
            "generation": int(manifest["generation"]),
            "platforms": {
                key: {
                    "live": entry["live"],
                    "versions": len(entry["history"]),
                }
                for key, entry in manifest["platforms"].items()
            },
        }
