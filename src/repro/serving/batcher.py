"""Micro-batched scoring: one vectorized predict per model per tick.

Each server tick the batcher sweeps every session, drains its ready
samples (strict per-session ``t`` order), and coalesces the resulting
feature rows into one matrix per ``(platform, model-version)`` group —
so a thousand 1 Hz machines sharing one model cost one ``predict`` call
per second, not a thousand.

Correctness does not depend on batch composition: the model predict
kernels are batch-size-invariant (``regression/kernels.py``), so a
sample's watts are bit-identical whether it was scored alone, with its
session's backlog, or in a fleet-wide batch — which is what makes
``repro replay``'s online == offline guarantee possible.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro.serving.session import MachineSession, ScoredSample
from repro.serving.stats import ServingStats


@dataclass
class MicroBatchScorer:
    """Coalesces ready samples across sessions into grouped predicts."""

    stats: ServingStats | None = None
    max_samples_per_session: int | None = None
    """Per-tick drain cap per session (None = drain everything ready);
    a bounded cap keeps one backlogged machine from dominating a tick."""

    clock: Callable[[], float] = field(default=time.perf_counter)

    def tick(self, sessions: Iterable[MachineSession]) -> list[ScoredSample]:
        """Score every ready sample once; returns the deliveries.

        Within a session the returned samples are in strict ``t`` order
        (a session's samples all land in one group per tick); deliveries
        from different sessions may interleave by model group.
        """
        start_s = self.clock()
        # (platform, version) -> (model, rows, refs)
        groups: dict[tuple[str, str], list] = {}
        for session in sessions:
            ready = session.take_ready(self.max_samples_per_session)
            if not ready:
                continue
            key = (session.platform_key, session.model_version)
            group = groups.get(key)
            if group is None:
                group = [session.bundle.platform_model.model, [], []]
                groups[key] = group
            _, rows, refs = group
            for t, item in ready:
                prepared = session.prepare(item)
                if prepared is None:
                    continue
                row, patched = prepared
                rows.append(row)
                refs.append((session, t, item, row, patched))

        scored: list[ScoredSample] = []
        for model, rows, refs in groups.values():
            if not rows:
                continue
            predictions = model.predict(np.vstack(rows))
            for (session, t, item, row, patched), power_w in zip(
                refs, predictions
            ):
                scored.append(
                    session.complete(t, item, row, patched, float(power_w))
                )
        if self.stats is not None and scored:
            self.stats.record_batch(
                n_samples=len(scored),
                n_groups=sum(1 for _, rows, _ in groups.values() if rows),
                latency_s=self.clock() - start_s,
            )
        return scored
