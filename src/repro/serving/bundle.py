"""Serving bundles: everything a production host needs to score power.

A :class:`ServingBundle` wraps a fitted :class:`PlatformModel` with the
two pieces of training-time context the online agent needs but the bare
model payload does not carry:

* the **drift envelope** — per-feature training quantile bounds, so a
  host can rebuild an :class:`InputDriftDetector` without the training
  design matrix (the cross-workload experiment's regeneration signal);
* the **idle power floor** — the watts a silent machine of this platform
  decays to in the Eq. 5 cluster sum.

Bundles serialize to plain JSON (layered on ``models/persistence.py``)
and are content-addressed by the SHA-256 of their canonical JSON, which
is what the registry versions, publishes and rolls back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.analysis.arraysan import contracted
from repro.engine.hashing import canonical_json, sha256_hex
from repro.framework.drift import InputDriftDetector
from repro.models.composition import PlatformModel
from repro.models.persistence import (
    platform_model_from_payload,
    platform_model_to_payload,
)

BUNDLE_FORMAT_VERSION = 1

DEFAULT_ENVELOPE_QUANTILE = 0.995


@dataclass(frozen=True)
class ServingBundle:
    """A deployable power model plus its operational context."""

    platform_model: PlatformModel
    envelope_low: np.ndarray
    envelope_high: np.ndarray
    envelope_quantile: float
    idle_power_w: float
    meta: dict[str, Any] = field(default_factory=dict)
    """Free-form provenance (trainer seed, workload suite, ...)."""

    def __post_init__(self):
        n_features = self.platform_model.feature_set.n_features
        low = np.asarray(self.envelope_low, dtype=float).ravel()
        high = np.asarray(self.envelope_high, dtype=float).ravel()
        if low.shape != (n_features,) or high.shape != (n_features,):
            raise ValueError(
                f"envelope bounds must have {n_features} entries"
            )
        if np.any(low > high):
            raise ValueError("envelope low bound exceeds high bound")
        if self.idle_power_w < 0:
            raise ValueError("idle_power_w must be non-negative")
        object.__setattr__(self, "envelope_low", low)
        object.__setattr__(self, "envelope_high", high)

    @property
    def platform_key(self) -> str:
        return self.platform_model.platform_key

    def build_drift_detector(
        self, window_seconds: int = 120
    ) -> InputDriftDetector:
        """A fitted drift detector over this bundle's envelope."""
        return InputDriftDetector.from_envelope(
            feature_names=self.platform_model.feature_set.feature_names,
            low=self.envelope_low,
            high=self.envelope_high,
            envelope_quantile=self.envelope_quantile,
            window_seconds=window_seconds,
        )

    def to_payload(self) -> dict:
        return {
            "format_version": BUNDLE_FORMAT_VERSION,
            "platform_model": platform_model_to_payload(
                self.platform_model
            ),
            "drift_envelope": {
                "low": self.envelope_low.tolist(),
                "high": self.envelope_high.tolist(),
                "quantile": self.envelope_quantile,
            },
            "idle_power_w": self.idle_power_w,
            "meta": dict(self.meta),
        }

    def digest(self) -> str:
        """Content address: SHA-256 of the canonical JSON payload."""
        return sha256_hex(canonical_json(self.to_payload(), strict=False))


def bundle_from_payload(payload: dict) -> ServingBundle:
    version = payload.get("format_version")
    if version != BUNDLE_FORMAT_VERSION:
        raise ValueError(f"unsupported bundle version {version!r}")
    envelope = payload["drift_envelope"]
    return ServingBundle(
        platform_model=platform_model_from_payload(
            payload["platform_model"]
        ),
        envelope_low=np.asarray(envelope["low"], dtype=float),
        envelope_high=np.asarray(envelope["high"], dtype=float),
        envelope_quantile=float(envelope["quantile"]),
        idle_power_w=float(payload["idle_power_w"]),
        meta=dict(payload.get("meta", {})),
    )


@contracted
def make_bundle(
    platform_model: PlatformModel,
    training_design: np.ndarray,
    idle_power_w: float,
    envelope_quantile: float = DEFAULT_ENVELOPE_QUANTILE,
    meta: dict[str, Any] | None = None,
) -> ServingBundle:
    """Assemble a bundle from a fitted model and its training design.

    The envelope is the same per-feature quantile band
    ``InputDriftDetector.fit`` would record, computed here once at
    training time so serving hosts never need the design matrix.
    """
    design = np.asarray(training_design, dtype=float)
    n_features = platform_model.feature_set.n_features
    if design.ndim != 2 or design.shape[1] != n_features:
        raise ValueError(f"training design must be (n, {n_features})")
    if not 0.5 < envelope_quantile < 1.0:
        raise ValueError("envelope_quantile must be in (0.5, 1)")
    return ServingBundle(
        platform_model=platform_model,
        envelope_low=np.quantile(design, 1.0 - envelope_quantile, axis=0),
        envelope_high=np.quantile(design, envelope_quantile, axis=0),
        envelope_quantile=envelope_quantile,
        idle_power_w=float(idle_power_w),
        meta=dict(meta or {}),
    )


def save_bundle(bundle: ServingBundle, path) -> None:
    """Write a bundle to JSON atomically (crash-safe, like the cache)."""
    from repro.engine.cache import atomic_write_json

    atomic_write_json(path, bundle.to_payload())


def load_bundle(path) -> ServingBundle:
    """Read a bundle written by :func:`save_bundle`."""
    import json

    with open(path) as handle:
        return bundle_from_payload(json.load(handle))
