"""The chaos-serve asyncio TCP server.

One ``PowerServer`` hosts many machine sessions over newline-delimited
JSON (``serving/protocol.py``).  Per-connection reader coroutines only
*ingest* — they validate messages and push samples into the session's
reorder buffer.  All scoring happens on the single tick loop:

1. poll the registry ``generation`` and hot-swap sessions whose platform
   has a new live version (in-flight samples are untouched: each is
   scored exactly once by whichever model is installed at its turn);
2. run the micro-batch scorer over every session and write each
   prediction back to its machine's connection, in ``t`` order;
3. advance the Eq. 5 cluster aggregate;
4. finish any session whose client said ``bye`` and whose queue has
   drained, replying ``drained`` with the session's final telemetry.

Models come either from a :class:`ModelRegistry` (live, hot-swappable)
or from a static ``{platform: (version, bundle)}`` mapping (replay and
tests).
"""

from __future__ import annotations

import asyncio
from typing import Iterable, Optional

from repro.serving import protocol
from repro.serving.aggregate import ClusterAggregator, ClusterEstimate
from repro.serving.batcher import MicroBatchScorer
from repro.serving.bundle import ServingBundle
from repro.serving.registry import ModelRegistry
from repro.serving.session import MachineSession, SessionConfig
from repro.serving.stats import ServingStats


class _Client:
    """One connected machine: its session plus its write half."""

    def __init__(
        self,
        session: MachineSession,
        writer: asyncio.StreamWriter,
    ):
        self.session = session
        self.writer = writer
        self.bye_pending = False
        self.closed = False


class PowerServer:
    """Scores counter streams from a fleet of machines."""

    def __init__(
        self,
        registry: Optional[ModelRegistry] = None,
        static_bundles: Optional[
            dict[str, tuple[str, ServingBundle]]
        ] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        tick_interval_s: float = 1.0,
        session_config: Optional[SessionConfig] = None,
        max_samples_per_session: Optional[int] = None,
        drain_timeout_s: float = 2.0,
    ):
        if (registry is None) == (static_bundles is None):
            raise ValueError(
                "provide exactly one of registry or static_bundles"
            )
        self.registry = registry
        self.static_bundles = static_bundles
        self.host = host
        self.port = port
        if tick_interval_s <= 0:
            raise ValueError("tick_interval_s must be positive")
        if drain_timeout_s <= 0:
            raise ValueError("drain_timeout_s must be positive")
        self.tick_interval_s = tick_interval_s
        self.drain_timeout_s = drain_timeout_s
        self.session_config = session_config or SessionConfig()
        self.stats = ServingStats()
        self.batcher = MicroBatchScorer(
            stats=self.stats,
            max_samples_per_session=max_samples_per_session,
        )
        self.aggregator = ClusterAggregator()
        self.last_estimate: Optional[ClusterEstimate] = None
        self._clients: dict[str, _Client] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._tick_task: Optional[asyncio.Task] = None
        self._registry_generation = (
            registry.generation if registry is not None else 0
        )

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        """Bind and start ticking; ``self.port`` is the bound port."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._tick_task = asyncio.ensure_future(self._tick_loop())

    async def stop(self) -> None:
        # Swap shared handles into locals *before* awaiting: a second
        # stop() (or a restart) interleaving at the await must see the
        # attribute already cleared, not clobber its update afterwards.
        tick_task, self._tick_task = self._tick_task, None
        if tick_task is not None:
            tick_task.cancel()
            try:
                await tick_task
            except asyncio.CancelledError:
                pass
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        for client in list(self._clients.values()):
            await self._close_client(client)

    @property
    def sessions(self) -> list[MachineSession]:
        return [client.session for client in self._clients.values()]

    def telemetry(self) -> dict:
        """The full JSON-safe telemetry snapshot."""
        snapshot = self.stats.snapshot(self.sessions)
        snapshot["cluster"] = (
            self.last_estimate.to_payload()
            if self.last_estimate is not None
            else None
        )
        if self.registry is not None:
            snapshot["registry"] = self.registry.snapshot()
        return snapshot

    # -- model resolution ----------------------------------------------
    def _resolve_bundle(
        self, platform_key: str
    ) -> Optional[tuple[str, ServingBundle]]:
        if self.static_bundles is not None:
            return self.static_bundles.get(platform_key)
        assert self.registry is not None
        live = self.registry.live_bundle(platform_key)
        if live is None:
            return None
        version, bundle = live
        return version.label, bundle

    def _poll_registry(self) -> None:
        """Hot-swap sessions when the registry generation moved."""
        if self.registry is None:
            return
        generation = self.registry.generation
        if generation == self._registry_generation:
            return
        self._registry_generation = generation
        for client in self._clients.values():
            resolved = self._resolve_bundle(client.session.platform_key)
            if resolved is None:
                continue
            version, bundle = resolved
            if version != client.session.model_version:
                client.session.adopt_bundle(version, bundle)
                self.stats.n_hot_swaps += 1

    # -- tick loop -----------------------------------------------------
    async def _tick_loop(self) -> None:
        while True:
            await asyncio.sleep(self.tick_interval_s)
            await self.run_tick()

    async def run_tick(self) -> None:
        """One scoring tick (public so tests can drive it directly).

        Predictions are *buffered* onto each client's transport and
        drained concurrently once per tick with a deadline: one stalled
        consumer can no longer head-of-line-block scoring for every
        other session — it is closed (and counted) instead.
        """
        self._poll_registry()
        scored = self.batcher.tick(self.sessions)
        recipients: dict[str, _Client] = {}
        for sample in scored:
            client = self._clients.get(sample.machine_id)
            if client is None or client.closed:
                continue
            if self._buffer_send(
                client,
                {
                    "type": protocol.PREDICTION,
                    "t": sample.t,
                    "power_w": sample.power_w,
                    "patched": sample.patched,
                    "drifting": sample.drifting,
                    "model_version": sample.model_version,
                },
            ):
                recipients[sample.machine_id] = client
            else:
                await self._close_client(client)
        await self._drain_clients(recipients.values())
        self.last_estimate = self.aggregator.tick(self.sessions)
        for client in list(self._clients.values()):
            if client.bye_pending and client.session.pending_count == 0:
                if self._buffer_send(
                    client,
                    {
                        "type": protocol.DRAINED,
                        "session": client.session.snapshot(),
                    },
                ):
                    await self._drain_one(client)
                await self._close_client(client)

    # -- connection handling -------------------------------------------
    def _buffer_send(self, client: _Client, message: dict) -> bool:
        """Queue one message on the client's transport, without draining."""
        if client.closed:
            return False
        try:
            client.writer.write(protocol.encode_message(message))
        except (ConnectionError, RuntimeError):
            return False
        return True

    async def _drain_one(self, client: _Client) -> None:
        """Flush one client's buffered writes, bounded by the deadline."""
        try:
            await asyncio.wait_for(
                client.writer.drain(), timeout=self.drain_timeout_s
            )
        except asyncio.TimeoutError:
            self.stats.n_stalled_closed += 1
            await self._close_client(client)
        except (ConnectionError, RuntimeError):
            await self._close_client(client)

    async def _drain_clients(self, clients: "Iterable[_Client]") -> None:
        """Drain every recipient concurrently; stalled peers get closed.

        The whole flush costs at most one deadline of wall clock per
        tick regardless of how many peers stall.
        """
        pending = [client for client in clients if not client.closed]
        if not pending:
            return
        await asyncio.gather(
            *(self._drain_one(client) for client in pending)
        )

    async def _send(self, client: _Client, message: dict) -> None:
        if client.closed:
            return
        try:
            client.writer.write(protocol.encode_message(message))
            await client.writer.drain()
        except (ConnectionError, RuntimeError):
            await self._close_client(client)

    async def _close_client(self, client: _Client) -> None:
        if client.closed:
            return
        client.closed = True
        self._clients.pop(client.session.machine_id, None)
        self.stats.n_sessions_closed += 1
        try:
            client.writer.close()
            await client.writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass

    async def _reject(
        self, writer: asyncio.StreamWriter, error: str
    ) -> None:
        self.stats.n_protocol_errors += 1
        try:
            writer.write(
                protocol.encode_message(
                    {"type": protocol.ERROR, "error": error}
                )
            )
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            line = await reader.readline()
        except ValueError:
            await self._reject(writer, "oversized hello line")
            return
        if not line:
            writer.close()
            return
        try:
            message = protocol.decode_line(line)
            if message["type"] != protocol.HELLO:
                raise protocol.ProtocolError(
                    "the first message must be a hello"
                )
            machine_id, platform_key = protocol.parse_hello(message)
        except protocol.ProtocolError as error:
            await self._reject(writer, str(error))
            return
        if machine_id in self._clients:
            await self._reject(
                writer, f"machine {machine_id!r} already has a session"
            )
            return
        resolved = self._resolve_bundle(platform_key)
        if resolved is None:
            await self._reject(
                writer, f"no live model for platform {platform_key!r}"
            )
            return
        version, bundle = resolved
        session = MachineSession(
            machine_id=machine_id,
            bundle_version=version,
            bundle=bundle,
            config=self.session_config,
        )
        client = _Client(session, writer)
        self._clients[machine_id] = client
        self.stats.n_sessions_opened += 1
        await self._send(
            client,
            {
                "type": protocol.WELCOME,
                "protocol_version": protocol.PROTOCOL_VERSION,
                "machine_id": machine_id,
                "model_version": version,
                "required_counters": session.predictor.required_counters,
            },
        )
        await self._read_loop(reader, client)

    async def _read_loop(
        self, reader: asyncio.StreamReader, client: _Client
    ) -> None:
        while not client.closed:
            try:
                line = await reader.readline()
            except ValueError:
                # Oversized line mid-stream: account identically to the
                # hello path — protocol error counted, ERROR sent, then
                # the connection is closed (not a silent abrupt close).
                self.stats.n_protocol_errors += 1
                await self._send(
                    client,
                    {
                        "type": protocol.ERROR,
                        "error": "oversized line",
                    },
                )
                await self._close_client(client)
                return
            except ConnectionError:
                break
            if not line:
                break
            try:
                message = protocol.decode_line(line)
                kind = message["type"]
                if kind == protocol.SAMPLE:
                    t, counters, meter_w = protocol.parse_sample(message)
                    client.session.submit(t, counters, meter_w)
                elif kind == protocol.STATS:
                    await self._send(
                        client,
                        {
                            "type": protocol.STATS,
                            "stats": self.telemetry(),
                        },
                    )
                elif kind == protocol.BYE:
                    client.bye_pending = True
                    client.session.begin_drain()
                    # Stop reading; the tick loop sends `drained` and
                    # closes once the queue empties.
                    return
                else:
                    raise protocol.ProtocolError(
                        f"unexpected message type {kind!r}"
                    )
            except protocol.ProtocolError as error:
                self.stats.n_protocol_errors += 1
                await self._send(
                    client,
                    {"type": protocol.ERROR, "error": str(error)},
                )
                await self._close_client(client)
                return
        # EOF without bye: abrupt disconnect, drop whatever is pending.
        await self._close_client(client)
