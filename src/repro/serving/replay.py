"""Replay recorded telemetry through a live server, faster than life.

``replay`` spins up a real :class:`PowerServer` on localhost, connects
one TCP client per recorded machine, and streams each machine's
:class:`PerfmonLog` as 1 Hz protocol samples at ``speed`` times real
time.  It exercises the entire production path — wire protocol, session
reorder buffers, micro-batched scoring, hot-swap polling — and returns
every delivered prediction plus the server's final telemetry.

Clients keep a bounded flow-control window (fewer outstanding samples
than the session queue limit), so a replay never sheds samples no matter
the speed multiple: the CI smoke test asserts exactly that, and the
bit-identical guarantee (online == ``PlatformModel.predict_log``) is
checked sample for sample against the offline reference.

Replay fixtures (a bundle plus machine logs) serialize to one JSON file
so CI can drive a committed golden scenario without regenerating data.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.analysis.arraysan import contracted
from repro.engine.cache import atomic_write_json
from repro.serving import protocol
from repro.serving.bundle import (
    ServingBundle,
    bundle_from_payload,
)
from repro.serving.server import PowerServer
from repro.serving.session import SessionConfig
from repro.telemetry.perfmon import PerfmonLog

FIXTURE_FORMAT_VERSION = 1

DEFAULT_WINDOW = 32
"""Max un-acknowledged samples per client; must stay below the session
queue limit so backpressure is exerted by the client, never by shedding."""


@dataclass(frozen=True)
class ReplayMachine:
    """One machine's recorded stream to replay."""

    machine_id: str
    platform_key: str
    log: PerfmonLog
    attach_meter: bool = True
    """Send the recorded metered watts with each sample so the server
    tracks rolling online DRE."""


@dataclass
class ReplayMachineResult:
    """Everything one machine got back from the server."""

    machine_id: str
    model_version: str
    predictions: list = field(default_factory=list)
    """``prediction`` messages in delivery (= ``t``) order."""

    session: Optional[dict] = None
    """The session's final snapshot from the ``drained`` reply."""

    @property
    def power_w(self) -> np.ndarray:
        return np.asarray(
            [message["power_w"] for message in self.predictions]
        )

    @property
    def patched(self) -> np.ndarray:
        return np.asarray(
            [message["patched"] for message in self.predictions],
            dtype=bool,
        )


@dataclass
class ReplayResult:
    """A full replay: per-machine deliveries + server telemetry."""

    machines: dict
    telemetry: dict
    speed: float

    @property
    def total_scored(self) -> int:
        return sum(
            len(result.predictions) for result in self.machines.values()
        )

    @property
    def total_dropped(self) -> int:
        return int(self.telemetry["dropped_samples"])


async def _read_message(reader: asyncio.StreamReader) -> dict:
    line = await reader.readline()
    if not line:
        raise ConnectionError("server closed the connection")
    message = protocol.decode_line(line)
    if message["type"] == protocol.ERROR:
        raise RuntimeError(f"server error: {message.get('error')}")
    return message


async def _stream_machine(
    host: str,
    port: int,
    machine: ReplayMachine,
    interval_s: float,
    window: int,
) -> ReplayMachineResult:
    """Stream one machine's log; returns its deliveries and final state."""
    reader, writer = await asyncio.open_connection(
        host, port, limit=protocol.MAX_LINE_BYTES
    )
    try:
        writer.write(
            protocol.encode_message(
                {
                    "type": protocol.HELLO,
                    "machine_id": machine.machine_id,
                    "platform": machine.platform_key,
                }
            )
        )
        await writer.drain()
        welcome = await _read_message(reader)
        if welcome["type"] != protocol.WELCOME:
            raise RuntimeError(
                f"expected welcome, got {welcome['type']!r}"
            )
        result = ReplayMachineResult(
            machine_id=machine.machine_id,
            model_version=welcome["model_version"],
        )
        required = welcome["required_counters"]
        columns = machine.log.select(list(required))

        outstanding = 0
        for t in range(machine.log.n_seconds):
            sample = {
                "type": protocol.SAMPLE,
                "t": t,
                "counters": {
                    name: columns[t, i]
                    for i, name in enumerate(required)
                },
            }
            if machine.attach_meter:
                sample["meter_w"] = float(machine.log.power_w[t])
            writer.write(protocol.encode_message(sample))
            await writer.drain()
            outstanding += 1
            while outstanding >= window:
                message = await _read_message(reader)
                if message["type"] == protocol.PREDICTION:
                    result.predictions.append(message)
                    outstanding -= 1
            if interval_s > 0:
                await asyncio.sleep(interval_s)

        writer.write(protocol.encode_message({"type": protocol.BYE}))
        await writer.drain()
        while True:
            message = await _read_message(reader)
            if message["type"] == protocol.PREDICTION:
                result.predictions.append(message)
            elif message["type"] == protocol.DRAINED:
                result.session = message["session"]
                return result
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass


async def replay_async(
    machines: list,
    static_bundles: Optional[dict] = None,
    registry=None,
    speed: float = 10.0,
    session_config: Optional[SessionConfig] = None,
    window: int = DEFAULT_WINDOW,
    sanitize: bool = False,
    shards: Optional[int] = None,
    shard_backend: str = "inline",
) -> ReplayResult:
    """Run a full replay inside an existing event loop.

    ``sanitize=True`` arms the chaos-race runtime sanitizer (event-loop
    debug mode, slow-callback capture, unawaited-coroutine promotion,
    stall heartbeat) and the chaos-shape array sanitizer (observed
    shapes/dtypes/contiguity at every contracted kernel boundary) for
    the duration of the replay, attaching their reports under
    ``telemetry["sanitizer"]`` and ``telemetry["array_sanitizer"]``.
    Scoring is unaffected — the CI golden replay asserts bit-identity
    with both sanitizers armed.

    ``shards`` (None = the plain single-process ``PowerServer``) routes
    the replay through a :class:`ShardedPowerServer` instead; scoring
    is bit-identical either way because the predict kernels are
    batch-size-invariant, so ``--shards 1`` reproduces the golden
    fixture byte for byte.
    """
    if not machines:
        raise ValueError("need at least one machine to replay")
    if speed <= 0:
        raise ValueError("speed must be positive")
    sanitizer = None
    array_sanitizer = None
    if sanitize:
        from repro.analysis.arraysan import install_array_sanitizer
        from repro.analysis.sanitizer import install_sanitizer

        sanitizer = install_sanitizer(asyncio.get_running_loop())
        array_sanitizer = install_array_sanitizer()
    config = session_config or SessionConfig()
    if window >= config.queue_limit:
        raise ValueError(
            f"flow-control window {window} must stay below the session "
            f"queue limit {config.queue_limit} (or shedding is possible)"
        )
    interval_s = 1.0 / speed
    if shards is None:
        server = PowerServer(
            registry=registry,
            static_bundles=static_bundles,
            tick_interval_s=interval_s,
            session_config=config,
        )
    else:
        from repro.serving.router import ShardedPowerServer

        server = ShardedPowerServer(
            registry=registry,
            static_bundles=static_bundles,
            n_shards=shards,
            shard_backend=shard_backend,
            tick_interval_s=interval_s,
            session_config=config,
        )
    await server.start()
    merged_telemetry: Optional[dict] = None
    try:
        results = await asyncio.gather(
            *(
                _stream_machine(
                    server.host,
                    server.port,
                    machine,
                    interval_s=interval_s,
                    window=window,
                )
                for machine in machines
            )
        )
        if shards is not None:
            merged_telemetry = await server.telemetry_async(
                extra_session_rows=[
                    result.session
                    for result in results
                    if result.session is not None
                ]
            )
    finally:
        final_stats = server.stats
        cluster = server.last_estimate
        await server.stop()
        if sanitizer is not None:
            sanitizer.uninstall()
        if array_sanitizer is not None:
            array_sanitizer.uninstall()
    if shards is None:
        session_rows = [
            result.session
            for result in results
            if result.session is not None
        ]
        telemetry = final_stats.snapshot(
            extra_session_rows=session_rows
        )
        telemetry["cluster"] = (
            cluster.to_payload() if cluster is not None else None
        )
    else:
        assert merged_telemetry is not None
        telemetry = merged_telemetry
    telemetry["speed"] = speed
    if sanitizer is not None:
        telemetry["sanitizer"] = sanitizer.report()
    if array_sanitizer is not None:
        telemetry["array_sanitizer"] = array_sanitizer.report()
    return ReplayResult(
        machines={result.machine_id: result for result in results},
        telemetry=telemetry,
        speed=speed,
    )


def replay(
    machines: list,
    static_bundles: Optional[dict] = None,
    registry=None,
    speed: float = 10.0,
    session_config: Optional[SessionConfig] = None,
    window: int = DEFAULT_WINDOW,
    sanitize: bool = False,
    shards: Optional[int] = None,
    shard_backend: str = "inline",
) -> ReplayResult:
    """Synchronous wrapper: replay a recorded cluster through a server."""
    return asyncio.run(
        replay_async(
            machines,
            static_bundles=static_bundles,
            registry=registry,
            speed=speed,
            session_config=session_config,
            window=window,
            sanitize=sanitize,
            shards=shards,
            shard_backend=shard_backend,
        )
    )


@contracted
def offline_reference(
    bundle: ServingBundle, log: PerfmonLog
) -> np.ndarray:
    """The offline batch prediction replay must reproduce bit-for-bit."""
    return bundle.platform_model.predict_log(log)


def max_deviation_w(
    result: ReplayMachineResult,
    bundle: ServingBundle,
    log: PerfmonLog,
) -> float:
    """Largest |online - offline| watts over non-patched samples.

    Patched samples are excluded: the online path deliberately reuses
    stale counters there, so the offline reference does not apply.
    """
    online = result.power_w
    offline = offline_reference(bundle, log)
    if online.size != offline.size:
        raise ValueError(
            f"replay delivered {online.size} predictions for "
            f"{offline.size} recorded seconds"
        )
    clean = ~result.patched
    if not np.any(clean):
        return 0.0
    return float(np.max(np.abs(online[clean] - offline[clean])))


# -- fixtures ----------------------------------------------------------

def save_replay_fixture(
    path, bundle: ServingBundle, machines: list
) -> None:
    """Write a self-contained replay fixture (bundle + machine logs).

    Logs are stored as raw JSON arrays, not the Perfmon CSV export: the
    CSV format quantizes floats, and the fixture underpins bit-identity
    assertions, so the round-trip must be lossless.
    """
    payload = {
        "format_version": FIXTURE_FORMAT_VERSION,
        "bundle": bundle.to_payload(),
        "machines": [
            {
                "machine_id": machine.machine_id,
                "platform": machine.platform_key,
                "counter_names": list(machine.log.counter_names),
                "counters": machine.log.counters.tolist(),
                "power_w": machine.log.power_w.tolist(),
            }
            for machine in machines
        ],
    }
    atomic_write_json(path, payload)


def load_replay_fixture(path) -> "tuple[ServingBundle, list]":
    """Read a fixture written by :func:`save_replay_fixture`."""
    with open(path) as handle:
        payload = json.load(handle)
    version = payload.get("format_version")
    if version != FIXTURE_FORMAT_VERSION:
        raise ValueError(f"unsupported fixture version {version!r}")
    bundle = bundle_from_payload(payload["bundle"])
    machines = [
        ReplayMachine(
            machine_id=entry["machine_id"],
            platform_key=entry["platform"],
            log=PerfmonLog(
                machine_id=entry["machine_id"],
                counter_names=list(entry["counter_names"]),
                counters=np.asarray(entry["counters"], dtype=float),
                power_w=np.asarray(entry["power_w"], dtype=float),
            ),
        )
        for entry in payload["machines"]
    ]
    return bundle, machines
