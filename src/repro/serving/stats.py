"""Serving telemetry: throughput, batch shapes, latency, drift, DRE.

The server keeps one :class:`ServingStats`; the micro-batcher feeds it
per-tick batch records and the server adds connection/session lifecycle
counters.  ``snapshot`` folds in per-session state (drops, patches,
drift fractions, rolling online DRE) and returns one JSON-safe dict —
the payload behind the ``stats`` protocol message, ``repro replay``'s
``--stats-out``, and the CI smoke gate.

Histograms use fixed log-spaced bucket bounds so two snapshots are
mergeable and quantile estimates never require storing raw samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.serving.session import MachineSession


def _log_bounds(low: float, high: float, per_decade: int) -> list[float]:
    bounds = []
    value = low
    factor = 10.0 ** (1.0 / per_decade)
    while value < high:
        bounds.append(value)
        value *= factor
    return bounds


@dataclass
class Histogram:
    """Fixed-bucket histogram with approximate quantiles.

    ``bounds`` are upper bucket edges; a value lands in the first bucket
    whose bound is >= value, with one implicit overflow bucket at the
    end.
    """

    bounds: Sequence[float]
    counts: list[int] = field(init=False)
    n_observed: int = field(default=0, init=False)
    total: float = field(default=0.0, init=False)

    def __post_init__(self):
        bounds = list(self.bounds)
        if not bounds or sorted(bounds) != bounds:
            raise ValueError("histogram bounds must be sorted and non-empty")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)

    def observe(self, value: float) -> None:
        index = 0
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                break
        else:
            index = len(self.bounds)
        self.counts[index] += 1
        self.n_observed += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.n_observed if self.n_observed else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper edge of the covering bucket."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.n_observed == 0:
            return 0.0
        rank = q * self.n_observed
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank and count > 0:
                if index < len(self.bounds):
                    return float(self.bounds[index])
                return float(self.bounds[-1])
        return float(self.bounds[-1])

    def to_dict(self) -> dict:
        return {
            "bounds": [float(b) for b in self.bounds],
            "counts": list(self.counts),
            "count": self.n_observed,
            "total": self.total,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
        }


def latency_histogram() -> Histogram:
    """5 us .. ~10 s, five buckets per decade."""
    return Histogram(_log_bounds(5e-6, 10.0, per_decade=5))


def batch_size_histogram() -> Histogram:
    """1 .. ~100k samples per tick, five buckets per decade."""
    return Histogram(_log_bounds(1.0, 1e5, per_decade=5))


@dataclass
class ServingStats:
    """Accumulated server-wide telemetry."""

    batch_latency_s: Histogram = field(default_factory=latency_histogram)
    batch_size: Histogram = field(default_factory=batch_size_histogram)
    n_ticks: int = 0
    n_samples_scored: int = 0
    n_groups_scored: int = 0
    n_sessions_opened: int = 0
    n_sessions_closed: int = 0
    n_protocol_errors: int = 0
    n_hot_swaps: int = 0
    n_stalled_closed: int = 0
    """Peers closed because their transport stayed stalled past the
    per-tick drain deadline (slow-consumer protection)."""

    def record_batch(
        self, n_samples: int, n_groups: int, latency_s: float
    ) -> None:
        self.n_ticks += 1
        self.n_samples_scored += n_samples
        self.n_groups_scored += n_groups
        self.batch_size.observe(float(n_samples))
        self.batch_latency_s.observe(latency_s)

    def snapshot(
        self,
        sessions: Iterable[MachineSession] = (),
        extra_session_rows: Iterable[dict] = (),
    ) -> dict:
        """One JSON-safe telemetry payload, sessions folded in.

        ``extra_session_rows`` takes already-captured session snapshots
        (e.g. from ``drained`` replies for sessions that have closed).
        """
        session_rows = [session.snapshot() for session in sessions]
        session_rows.extend(extra_session_rows)
        dropped = sum(
            row["late_dropped"] + row["shed_dropped"]
            for row in session_rows
        )
        drifting = sum(1 for row in session_rows if row["drifting"])
        dre_values = [
            row["online_dre"]
            for row in session_rows
            if row["online_dre"] is not None
        ]
        return {
            "ticks": self.n_ticks,
            "samples_scored": self.n_samples_scored,
            "model_groups_scored": self.n_groups_scored,
            "sessions_opened": self.n_sessions_opened,
            "sessions_closed": self.n_sessions_closed,
            "protocol_errors": self.n_protocol_errors,
            "hot_swaps": self.n_hot_swaps,
            "stalled_closed": self.n_stalled_closed,
            "batch_latency_s": self.batch_latency_s.to_dict(),
            "batch_size": self.batch_size.to_dict(),
            "sessions": session_rows,
            "dropped_samples": dropped,
            "drifting_sessions": drifting,
            "mean_online_dre": (
                sum(dre_values) / len(dre_values) if dre_values else None
            ),
        }


_COUNTER_KEYS = (
    "ticks",
    "samples_scored",
    "model_groups_scored",
    "sessions_opened",
    "sessions_closed",
    "protocol_errors",
    "hot_swaps",
    "stalled_closed",
)


def _quantile_from_counts(
    bounds: Sequence[float], counts: Sequence[int], q: float
) -> float:
    """``Histogram.quantile`` over an already-serialized histogram."""
    n_observed = sum(counts)
    if n_observed == 0:
        return 0.0
    rank = q * n_observed
    seen = 0
    for index, count in enumerate(counts):
        seen += count
        if seen >= rank and count > 0:
            if index < len(bounds):
                return float(bounds[index])
            return float(bounds[-1])
    return float(bounds[-1])


def _merge_histogram_dicts(dicts: Sequence[dict]) -> dict:
    """Merge serialized histograms by adding bucket counts.

    All snapshots share the fixed log-spaced bounds (the module
    guarantee that makes shard telemetry mergeable); mismatched bounds
    mean the snapshots came from different builds and cannot be merged.
    """
    bounds = dicts[0]["bounds"]
    for other in dicts[1:]:
        if other["bounds"] != bounds:
            raise ValueError("cannot merge histograms with differing bounds")
    counts = [0] * len(dicts[0]["counts"])
    total = 0.0
    for entry in dicts:
        for index, count in enumerate(entry["counts"]):
            counts[index] += count
        total += entry.get("total", entry["mean"] * entry["count"])
    n_observed = sum(counts)
    return {
        "bounds": list(bounds),
        "counts": counts,
        "count": n_observed,
        "total": total,
        "mean": total / n_observed if n_observed else 0.0,
        "p50": _quantile_from_counts(bounds, counts, 0.50),
        "p99": _quantile_from_counts(bounds, counts, 0.99),
    }


def merge_snapshots(snapshots: Sequence[dict]) -> dict:
    """Fold per-shard ``ServingStats`` snapshots into one fleet view.

    Counters add, histograms merge bucket-wise, session rows
    concatenate, and the derived aggregates (dropped samples, drifting
    sessions, mean online DRE) are recomputed over the combined fleet —
    identical in shape to a single server's snapshot.
    """
    if not snapshots:
        raise ValueError("need at least one snapshot to merge")
    session_rows: list[dict] = []
    for snap in snapshots:
        session_rows.extend(snap["sessions"])
    dropped = sum(
        row["late_dropped"] + row["shed_dropped"] for row in session_rows
    )
    drifting = sum(1 for row in session_rows if row["drifting"])
    dre_values = [
        row["online_dre"]
        for row in session_rows
        if row["online_dre"] is not None
    ]
    merged: dict = {
        key: sum(snap[key] for snap in snapshots) for key in _COUNTER_KEYS
    }
    merged["batch_latency_s"] = _merge_histogram_dicts(
        [snap["batch_latency_s"] for snap in snapshots]
    )
    merged["batch_size"] = _merge_histogram_dicts(
        [snap["batch_size"] for snap in snapshots]
    )
    merged["sessions"] = session_rows
    merged["dropped_samples"] = dropped
    merged["drifting_sessions"] = drifting
    merged["mean_online_dre"] = (
        sum(dre_values) / len(dre_values) if dre_values else None
    )
    return merged
