"""Per-machine scoring sessions: ordering, backpressure, drift.

A :class:`MachineSession` owns everything the server keeps per connected
machine: the streaming predictor (lag state + patch bookkeeping), the
drift detector, a bounded reorder buffer for the inbound counter stream,
and the rolling (meter, prediction) window that yields online DRE when a
meter stream is attached.

Ordering and loss semantics are explicit and deterministic:

* samples carry the machine's own sequence index ``t``; the session
  scores strictly in ``t`` order (lagged features require it);
* an out-of-order sample waits in the reorder buffer; once the buffer
  holds ``gap_tolerance`` samples that are all ahead of a missing ``t``,
  the missing second is *synthesized* as a fully-patched sample (the
  predictor reuses the last values and counts the patch) so one lost
  packet cannot stall the stream;
* a sample older than the scoring cursor is counted and dropped
  (``late_dropped``) — it was already given up on;
* when the buffer is full the **oldest** pending sample is shed and
  counted (``shed_dropped``) — bounded memory with explicit
  backpressure, never unbounded growth.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.framework.drift import InputDriftDetector
from repro.framework.online import OnlinePowerPredictor, StaleSampleError
from repro.metrics.errors import dynamic_range_error
from repro.serving.bundle import ServingBundle


@dataclass(frozen=True)
class SessionConfig:
    """Tunables shared by every session of one server."""

    queue_limit: int = 64
    """Max buffered samples per session before shed-oldest kicks in."""

    gap_tolerance: int = 3
    """How many newer samples must be waiting before a missing ``t`` is
    synthesized as fully patched instead of waited for."""

    max_consecutive_patches: int = 30
    """Predictor hard cap: consecutive fully/partially patched samples
    tolerated before the source is flagged dead (samples are then
    rejected, not silently frozen)."""

    history_seconds: int = 300
    drift_window_seconds: int = 120
    dre_window_seconds: int = 120

    def __post_init__(self):
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be positive")
        if self.gap_tolerance < 1:
            raise ValueError("gap_tolerance must be positive")


@dataclass(frozen=True)
class ScoredSample:
    """One delivered prediction."""

    machine_id: str
    t: int
    power_w: float
    patched: bool
    drifting: bool
    model_version: str


@dataclass
class _PendingSample:
    counters: dict[str, float]
    meter_w: float | None
    synthesized: bool = False


class MachineSession:
    """One machine's live scoring state."""

    def __init__(
        self,
        machine_id: str,
        bundle_version: str,
        bundle: ServingBundle,
        config: SessionConfig | None = None,
    ):
        self.machine_id = machine_id
        self.config = config or SessionConfig()
        self.platform_key = bundle.platform_key
        self._pending: dict[int, _PendingSample] = {}
        self._next_t = 0
        self._started = False
        self._draining = False
        self._n_dispatched = 0
        self.n_received = 0
        self.n_scored = 0
        self.n_late_dropped = 0
        self.n_shed_dropped = 0
        self.n_duplicates = 0
        self.n_synthesized = 0
        self.n_stale_rejected = 0
        self.n_model_swaps = 0
        self._meter_window: deque = deque(
            maxlen=self.config.dre_window_seconds
        )
        self._last_power_w: float | None = None
        self.model_version = ""
        self.bundle: ServingBundle = bundle
        self.predictor: OnlinePowerPredictor
        self.drift: InputDriftDetector
        self._install_bundle(bundle_version, bundle, carry_state=False)

    # -- model hot-swap ------------------------------------------------
    def _install_bundle(
        self, version: str, bundle: ServingBundle, carry_state: bool
    ) -> None:
        predictor = OnlinePowerPredictor(
            bundle.platform_model,
            history_seconds=self.config.history_seconds,
            allow_missing=True,
            max_consecutive_patches=self.config.max_consecutive_patches,
        )
        if carry_state:
            predictor.carry_state_from(self.predictor)
        self.predictor = predictor
        self.drift = bundle.build_drift_detector(
            window_seconds=self.config.drift_window_seconds
        )
        self.bundle = bundle
        self.model_version = version

    def adopt_bundle(self, version: str, bundle: ServingBundle) -> None:
        """Hot-swap to a new model version without losing stream state.

        Queued (in-flight) samples are untouched: each will be scored
        exactly once, by whichever model is installed when its turn in
        the micro-batch comes.  Lag state and rolling history carry over
        so the stream stays continuous across the swap.
        """
        if bundle.platform_key != self.platform_key:
            raise ValueError(
                f"session is bound to platform {self.platform_key!r}, "
                f"bundle is for {bundle.platform_key!r}"
            )
        if version == self.model_version:
            return
        self._install_bundle(version, bundle, carry_state=True)
        self.n_model_swaps += 1

    # -- ingest --------------------------------------------------------
    @property
    def next_t(self) -> int:
        """The scoring cursor: the next sequence index to be scored."""
        return self._next_t

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def submit(
        self,
        t: int,
        counters: dict[str, float],
        meter_w: float | None = None,
    ) -> bool:
        """Buffer one sample; returns False when it was dropped.

        The first accepted sample anchors the scoring cursor, so a
        machine may join mid-stream with any starting index.  The anchor
        stays tentative until the first sample is handed to the scorer:
        a stream whose opening packets arrive swapped re-anchors to the
        older index instead of dropping it forever.
        """
        self.n_received += 1
        if not self._started:
            self._next_t = t
            self._started = True
        if t < self._next_t:
            if self._n_dispatched == 0:
                self._next_t = t
            else:
                self.n_late_dropped += 1
                return False
        if t in self._pending:
            # First-write-wins: the buffered sample (and its meter_w)
            # is the one the machine sent first; a duplicate index is
            # counted and discarded, never silently overwritten.
            self.n_duplicates += 1
            return False
        self._pending[t] = _PendingSample(counters, meter_w)
        if len(self._pending) > self.config.queue_limit:
            oldest = min(self._pending)
            del self._pending[oldest]
            self.n_shed_dropped += 1
            if oldest == self._next_t:
                # The cursor's own slot was shed; move past it or the
                # stream would wait forever for a sample that is gone.
                self._advance_cursor()
            return oldest != t
        return True

    def _advance_cursor(self) -> None:
        self._next_t = (
            min(self._pending) if self._pending else self._next_t + 1
        )

    def begin_drain(self) -> None:
        """Stop waiting for stragglers: score every queued sample now.

        Used on a clean ``bye`` — remaining gaps are synthesized
        immediately instead of waiting for ``gap_tolerance`` newer
        samples that will never come.
        """
        self._draining = True

    def take_ready(self, limit: int | None = None) -> list[tuple[int, "_PendingSample"]]:
        """Pop samples ready to score, in strict ``t`` order.

        A missing index is synthesized as a fully-patched sample once
        ``gap_tolerance`` newer samples are queued behind it; otherwise
        the stream waits for the straggler (unless draining).
        """
        ready: list[tuple[int, _PendingSample]] = []
        while self._pending and (limit is None or len(ready) < limit):
            item = self._pending.pop(self._next_t, None)
            if item is None:
                ahead = len(self._pending)
                if ahead < self.config.gap_tolerance and not self._draining:
                    break
                item = _PendingSample({}, None, synthesized=True)
                self.n_synthesized += 1
            ready.append((self._next_t, item))
            self._next_t += 1
        self._n_dispatched += len(ready)
        return ready

    # -- scoring hooks (driven by the micro-batcher) -------------------
    def prepare(
        self, item: "_PendingSample"
    ) -> tuple[np.ndarray, bool] | None:
        """Resolve one ready sample into (feature row, was patched).

        Patched-ness must be captured here, not at completion time: the
        micro-batcher prepares a session's whole ready run before any
        prediction comes back, and the predictor's consecutive-patch
        state has moved on by then.

        Returns None when the predictor rejects the sample (dead counter
        source past the consecutive-patch cap, or a cold session missing
        counters); the sample is counted and skipped, and scoring
        resumes with the next clean sample.
        """
        try:
            row = self.predictor.prepare_row(item.counters)
        except StaleSampleError:
            self.n_stale_rejected += 1
            return None
        except KeyError:
            # Cold start without the full counter set: nothing to patch
            # from yet, so the sample cannot be scored.
            self.n_stale_rejected += 1
            return None
        patched = (
            item.synthesized or self.predictor.consecutive_patched > 0
        )
        return row, patched

    def complete(
        self,
        t: int,
        item: "_PendingSample",
        row: np.ndarray,
        patched: bool,
        power_w: float,
    ) -> ScoredSample:
        """Record one scored sample and produce its delivery record."""
        self.predictor.commit(power_w)
        verdict = self.drift.observe(row)
        if item.meter_w is not None:
            self._meter_window.append((item.meter_w, power_w))
        self._last_power_w = power_w
        self.n_scored += 1
        return ScoredSample(
            machine_id=self.machine_id,
            t=t,
            power_w=power_w,
            patched=patched,
            drifting=verdict.drifting,
            model_version=self.model_version,
        )

    # -- telemetry -----------------------------------------------------
    @property
    def last_power_w(self) -> float | None:
        return self._last_power_w

    @property
    def idle_floor_w(self) -> float:
        return self.bundle.idle_power_w

    def online_dre(self) -> float | None:
        """Rolling DRE over the attached meter window, if computable."""
        if len(self._meter_window) < 2:
            return None
        metered = np.asarray([m for m, _ in self._meter_window])
        predicted = np.asarray([p for _, p in self._meter_window])
        try:
            return dynamic_range_error(
                metered, predicted, idle_power=self.idle_floor_w
            )
        except ValueError:
            return None

    def snapshot(self) -> dict:
        """JSON-safe per-session telemetry."""
        drift_fraction = 0.0
        drifting = False
        if self.n_scored > 0:
            verdict = self.drift.verdict()
            drift_fraction = verdict.out_of_envelope_fraction
            drifting = verdict.drifting
        return {
            "machine_id": self.machine_id,
            "platform": self.platform_key,
            "model_version": self.model_version,
            "received": self.n_received,
            "scored": self.n_scored,
            "pending": self.pending_count,
            "late_dropped": self.n_late_dropped,
            "shed_dropped": self.n_shed_dropped,
            "duplicates": self.n_duplicates,
            "synthesized": self.n_synthesized,
            "stale_rejected": self.n_stale_rejected,
            "model_swaps": self.n_model_swaps,
            "patched_samples": self.predictor.n_patched_samples,
            "patched_fraction": self.predictor.patched_fraction,
            "drift_fraction": drift_fraction,
            "drifting": drifting,
            "online_dre": self.online_dre(),
            "last_power_w": self._last_power_w,
        }
