"""chaos-serve wire protocol: newline-delimited JSON over TCP.

One connection carries one machine's 1 Hz counter stream.  Every message
is a single JSON object on its own line (UTF-8, ``\\n``-terminated), so
the protocol needs no framing beyond ``readline`` and stays debuggable
with ``nc``.

Client -> server
----------------
``hello``       ``{"type": "hello", "machine_id": ..., "platform": ...}``
                Opens a scoring session.  Must be the first message.
``sample``      ``{"type": "sample", "t": <seq>, "counters": {name:
                value}, "meter_w": <watts, optional>}``
                One second of counters.  ``t`` is the machine's own
                monotonically-increasing sample index; ``meter_w``
                optionally attaches the metered power so the server can
                track rolling online DRE.
``stats``       Ask for the server's telemetry snapshot.
``bye``         Close the session cleanly (pending samples are still
                scored and delivered first).

Server -> client
----------------
``welcome``     Session accepted; echoes the live ``model_version`` and
                the ``required_counters`` the model needs per sample.
``prediction``  ``{"type": "prediction", "t": ..., "power_w": ...,
                "patched": bool, "drifting": bool, "model_version":
                ...}`` — one per scored sample, in ``t`` order.
``stats``       The telemetry snapshot (see ``serving/stats.py``).
``drained``     Reply to ``bye`` once every scorable queued sample has
                been delivered; carries the session's final counters.
``error``       ``{"type": "error", "error": ...}`` — protocol misuse;
                the connection is closed afterwards.
"""

from __future__ import annotations

import json
from typing import Any

PROTOCOL_VERSION = 1

MAX_LINE_BYTES = 256 * 1024
"""Upper bound on one message line; a counter sample for even a full
catalog fits comfortably, so longer lines are protocol errors."""

#: Message type tags.
HELLO = "hello"
SAMPLE = "sample"
STATS = "stats"
BYE = "bye"
WELCOME = "welcome"
PREDICTION = "prediction"
DRAINED = "drained"
ERROR = "error"


class ProtocolError(ValueError):
    """A malformed or out-of-order protocol message."""


def encode_message(message: dict[str, Any]) -> bytes:
    """Serialize one message to its wire form (compact JSON + newline)."""
    line = json.dumps(message, separators=(",", ":"), allow_nan=False)
    data = line.encode("utf-8") + b"\n"
    if len(data) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"message of {len(data)} bytes exceeds the "
            f"{MAX_LINE_BYTES}-byte line limit"
        )
    return data


def decode_line(line: bytes) -> dict[str, Any]:
    """Parse one received line into a message dict."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"line of {len(line)} bytes exceeds the "
            f"{MAX_LINE_BYTES}-byte limit"
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable message line: {error}")
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("a message must be an object with a 'type'")
    return message


def parse_hello(message: dict[str, Any]) -> tuple[str, str]:
    """Validate a hello; returns (machine_id, platform_key)."""
    machine_id = message.get("machine_id")
    platform_key = message.get("platform")
    if not isinstance(machine_id, str) or not machine_id:
        raise ProtocolError("hello needs a non-empty 'machine_id'")
    if not isinstance(platform_key, str) or not platform_key:
        raise ProtocolError("hello needs a non-empty 'platform'")
    return machine_id, platform_key


def parse_sample(
    message: dict[str, Any],
) -> tuple[int, dict[str, float], float | None]:
    """Validate a sample; returns (t, counters, meter_w)."""
    t = message.get("t")
    if not isinstance(t, int) or isinstance(t, bool) or t < 0:
        raise ProtocolError("sample needs a non-negative integer 't'")
    counters = message.get("counters")
    if not isinstance(counters, dict):
        raise ProtocolError("sample needs a 'counters' object")
    for name, value in counters.items():
        if not isinstance(name, str) or not isinstance(
            value, (int, float)
        ) or isinstance(value, bool):
            raise ProtocolError("counters must map names to numbers")
    meter_w = message.get("meter_w")
    if meter_w is not None and (
        not isinstance(meter_w, (int, float)) or isinstance(meter_w, bool)
    ):
        raise ProtocolError("'meter_w' must be a number when present")
    return (
        t,
        {name: float(value) for name, value in counters.items()},
        None if meter_w is None else float(meter_w),
    )
