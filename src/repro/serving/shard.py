"""Shared-nothing shard workers for the fleet-scale serving tier.

A :class:`ShardWorker` is one shard's complete scoring core — its own
:class:`MachineSession` map, :class:`MicroBatchScorer`,
:class:`ClusterAggregator` and :class:`ServingStats` — with **no state
shared** with any other shard.  The router (``serving/router.py``) owns
every TCP connection and consistent-hashes machine IDs onto shards; a
worker only ever sees the sessions it owns, so scaling out is adding
workers, never adding locks.

Workers run behind one of two hosts with a uniform blocking
``call(command, payload)`` interface:

* :class:`InlineShardHost` — the worker lives in the router's process.
  Deterministic and cheap; what tests, ``repro replay --shards`` and
  the scaling benchmark use.
* :class:`ProcessShardHost` — the worker runs in its own spawned
  process behind a pipe, one command in flight at a time (the router
  serializes calls per shard).  Spawned, not forked, so the worker
  inherits no event loop, socket, or registry handle from the router.

Model versions are **barrier-gated**: a worker never installs a new
registry generation on its own.  The router drives a two-phase
exactly-once swap — ``stage_swap`` loads the live bundles a worker's
sessions need and reports the observed generation; ``commit_swap``
installs a previously staged generation between ticks.  Only when every
shard staged the *same* generation does the router commit, so no tick
anywhere in the fleet scores two versions of one platform.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
from dataclasses import dataclass
from typing import Any, Optional

from repro.serving.aggregate import ClusterAggregator, ClusterEstimate
from repro.serving.batcher import MicroBatchScorer
from repro.serving.bundle import (
    ServingBundle,
    bundle_from_payload,
)
from repro.serving.registry import ModelRegistry
from repro.serving.session import MachineSession, ScoredSample, SessionConfig
from repro.serving.stats import ServingStats


class ShardError(RuntimeError):
    """A shard command that cannot proceed (unknown machine, bad swap)."""


@dataclass(frozen=True)
class ShardTickResult:
    """Everything one shard produced in one coordinated tick."""

    scored: tuple[ScoredSample, ...]
    partial: ClusterEstimate
    """This shard's Eq. 5 partial sum (its own sessions only)."""

    drained: tuple[tuple[str, dict], ...]
    """``(machine_id, final session snapshot)`` for sessions whose
    ``bye`` drain completed this tick."""


def worker_config(
    registry_root: Optional[str] = None,
    static_bundles: Optional[dict[str, tuple[str, dict]]] = None,
    session_config: Optional[SessionConfig] = None,
    max_samples_per_session: Optional[int] = None,
) -> dict:
    """A picklable worker recipe, safe to ship across a spawn boundary.

    Static bundles travel as their JSON payloads (``bundle.to_payload``
    form) so the child process rebuilds them from plain data instead of
    pickling live model objects.
    """
    if (registry_root is None) == (static_bundles is None):
        raise ValueError(
            "provide exactly one of registry_root or static_bundles"
        )
    return {
        "registry_root": registry_root,
        "static_bundles": static_bundles,
        "session_config": session_config or SessionConfig(),
        "max_samples_per_session": max_samples_per_session,
    }


def static_bundle_payloads(
    static_bundles: dict[str, tuple[str, ServingBundle]]
) -> dict[str, tuple[str, dict]]:
    """Serialize a live static-bundle map for :func:`worker_config`."""
    return {
        platform: (version, bundle.to_payload())
        for platform, (version, bundle) in static_bundles.items()
    }


class ShardWorker:
    """One shard's sessions, scorer, aggregator and telemetry."""

    def __init__(self, config: dict):
        self.registry: Optional[ModelRegistry] = None
        if config["registry_root"] is not None:
            self.registry = ModelRegistry(config["registry_root"])
        self._static: Optional[dict[str, tuple[str, ServingBundle]]] = None
        if config["static_bundles"] is not None:
            self._static = {
                platform: (version, bundle_from_payload(payload))
                for platform, (version, payload) in config[
                    "static_bundles"
                ].items()
            }
        self.session_config: SessionConfig = config["session_config"]
        self.stats = ServingStats()
        self.batcher = MicroBatchScorer(
            stats=self.stats,
            max_samples_per_session=config["max_samples_per_session"],
        )
        self.aggregator = ClusterAggregator()
        self.sessions: dict[str, MachineSession] = {}
        self._draining: set = set()
        self.busy_seconds = 0.0
        """Cumulative wall-clock spent inside ``tick_batch`` — the
        scaling benchmark's per-shard cost meter."""

        # Committed (barrier-installed) live bundles by platform.  The
        # initial load is this worker's own registry poll; afterwards
        # the map only moves via stage_swap/commit_swap.
        self.committed_generation = 0
        self._live: dict[str, tuple[str, ServingBundle]] = {}
        self._staged: Optional[
            tuple[int, dict[str, tuple[str, ServingBundle]]]
        ] = None
        if self.registry is not None:
            self.committed_generation, self._live = self._load_live()

    # -- model resolution ----------------------------------------------
    def _load_live(
        self,
    ) -> tuple[int, dict[str, tuple[str, ServingBundle]]]:
        """One registry poll: the generation and every live bundle.

        Loading all platforms (not just those with open sessions) keeps
        a staged generation valid for sessions that open between stage
        and commit.
        """
        assert self.registry is not None
        generation = self.registry.generation
        live: dict[str, tuple[str, ServingBundle]] = {}
        for platform_key in self.registry.platforms():
            resolved = self.registry.live_bundle(platform_key)
            if resolved is not None:
                version, bundle = resolved
                live[platform_key] = (version.label, bundle)
        return generation, live

    def resolve_bundle(
        self, platform_key: str
    ) -> Optional[tuple[str, ServingBundle]]:
        if self._static is not None:
            return self._static.get(platform_key)
        return self._live.get(platform_key)

    # -- two-phase hot swap --------------------------------------------
    def stage_swap(self, payload: Any = None) -> int:
        """Phase 1: load live bundles, install nothing; returns the
        generation this worker observed."""
        if self.registry is None:
            raise ShardError("static-bundle shards have nothing to swap")
        generation, live = self._load_live()
        self._staged = (generation, live)
        return generation

    def commit_swap(self, payload: Any) -> int:
        """Phase 2: install a staged generation; returns sessions swapped.

        Refuses any generation other than the one staged — the router
        only commits when every shard staged the same one, which is the
        exactly-once barrier.
        """
        generation = int(payload)
        if self._staged is None:
            raise ShardError("commit_swap without a staged generation")
        staged_generation, live = self._staged
        if staged_generation != generation:
            raise ShardError(
                f"staged generation {staged_generation} != commit "
                f"request {generation}"
            )
        self._staged = None
        self._live = live
        self.committed_generation = generation
        n_swapped = 0
        for session in self.sessions.values():
            resolved = live.get(session.platform_key)
            if resolved is None:
                continue
            version, bundle = resolved
            if version != session.model_version:
                session.adopt_bundle(version, bundle)
                self.stats.n_hot_swaps += 1
                n_swapped += 1
        return n_swapped

    # -- session lifecycle ---------------------------------------------
    def open_session(self, payload: dict) -> dict:
        machine_id = payload["machine_id"]
        platform_key = payload["platform"]
        if machine_id in self.sessions:
            raise ShardError(
                f"machine {machine_id!r} already has a session"
            )
        resolved = self.resolve_bundle(platform_key)
        if resolved is None:
            raise ShardError(
                f"no live model for platform {platform_key!r}"
            )
        version, bundle = resolved
        session = MachineSession(
            machine_id=machine_id,
            bundle_version=version,
            bundle=bundle,
            config=self.session_config,
        )
        self.sessions[machine_id] = session
        self.stats.n_sessions_opened += 1
        return {
            "model_version": version,
            "required_counters": session.predictor.required_counters,
        }

    def close_session(self, payload: dict) -> Optional[dict]:
        """Abrupt close: drop the session, return its final snapshot."""
        machine_id = payload["machine_id"]
        session = self.sessions.pop(machine_id, None)
        self._draining.discard(machine_id)
        if session is None:
            return None
        self.stats.n_sessions_closed += 1
        return session.snapshot()

    # -- the coordinated tick ------------------------------------------
    def tick_batch(self, payload: dict) -> ShardTickResult:
        """Apply one router tick: ingest, drain marks, then score.

        ``payload["submits"]`` is ``(machine_id, t, counters, meter_w)``
        tuples; ``payload["drains"]`` the machines whose client said
        ``bye``.  Submits for a machine this worker no longer owns
        (closed a moment ago) are skipped — the machine is gone, there
        is no session to misroute them into.
        """
        start_s = time.perf_counter()
        for machine_id, t, counters, meter_w in payload.get(
            "submits", ()
        ):
            session = self.sessions.get(machine_id)
            if session is not None:
                session.submit(t, counters, meter_w)
        for machine_id in payload.get("drains", ()):
            session = self.sessions.get(machine_id)
            if session is not None:
                session.begin_drain()
                self._draining.add(machine_id)
        sessions = list(self.sessions.values())
        scored = self.batcher.tick(sessions)
        partial = self.aggregator.tick(sessions)
        drained: list[tuple[str, dict]] = []
        for machine_id in sorted(self._draining):
            session = self.sessions.get(machine_id)
            if session is None:
                self._draining.discard(machine_id)
                continue
            if session.pending_count == 0:
                drained.append((machine_id, session.snapshot()))
                del self.sessions[machine_id]
                self._draining.discard(machine_id)
                self.stats.n_sessions_closed += 1
        self.busy_seconds += time.perf_counter() - start_s
        return ShardTickResult(
            scored=tuple(scored),
            partial=partial,
            drained=tuple(drained),
        )

    # -- telemetry -----------------------------------------------------
    def snapshot(self, payload: Any = None) -> dict:
        """This shard's ``ServingStats`` snapshot, sessions folded in."""
        snap = self.stats.snapshot(self.sessions.values())
        snap["committed_generation"] = self.committed_generation
        snap["busy_seconds"] = self.busy_seconds
        return snap

    # -- command dispatch ----------------------------------------------
    _COMMANDS = frozenset({
        "open_session",
        "close_session",
        "tick_batch",
        "stage_swap",
        "commit_swap",
        "snapshot",
    })

    def dispatch(self, command: str, payload: Any = None) -> Any:
        if command not in self._COMMANDS:
            raise ShardError(f"unknown shard command {command!r}")
        return getattr(self, command)(payload)


def _shard_main(
    conn: "multiprocessing.connection.Connection", config: dict
) -> None:
    """Process-backend entry: serve shard commands over one pipe.

    One request, one reply, strictly in order — the router holds a
    per-shard lock, so there is never more than one command in flight.
    """
    worker = ShardWorker(config)
    while True:
        try:
            command, payload = conn.recv()
        except (EOFError, OSError):
            return
        if command == "shutdown":
            conn.send(("ok", None))
            return
        try:
            result = worker.dispatch(command, payload)
        except ShardError as error:
            conn.send(("error", str(error)))
        else:
            conn.send(("ok", result))


class InlineShardHost:
    """A worker in the router's own process: direct, deterministic."""

    backend = "inline"

    def __init__(self, config: dict):
        self.worker = ShardWorker(config)

    def call(self, command: str, payload: Any = None) -> Any:
        return self.worker.dispatch(command, payload)

    def close(self) -> None:
        pass


class ProcessShardHost:
    """A worker in its own spawned process behind a command pipe."""

    backend = "process"

    def __init__(self, config: dict):
        context = multiprocessing.get_context("spawn")
        self._conn, child_conn = context.Pipe()
        self._process = context.Process(
            target=_shard_main, args=(child_conn, config), daemon=True
        )
        self._process.start()
        child_conn.close()

    def call(self, command: str, payload: Any = None) -> Any:
        try:
            self._conn.send((command, payload))
            status, result = self._conn.recv()
        except (EOFError, OSError, BrokenPipeError) as error:
            raise ShardError(
                f"shard process died mid-command {command!r}: {error}"
            )
        if status == "error":
            raise ShardError(result)
        return result

    def close(self) -> None:
        try:
            self._conn.send(("shutdown", None))
            self._conn.recv()
        except (EOFError, OSError, BrokenPipeError):
            pass
        self._conn.close()
        self._process.join(timeout=5)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=5)


def make_host(backend: str, config: dict):
    """Build one shard host; ``backend`` is ``inline`` or ``process``."""
    if backend == "inline":
        return InlineShardHost(config)
    if backend == "process":
        return ProcessShardHost(config)
    raise ValueError(f"unknown shard backend {backend!r}")
