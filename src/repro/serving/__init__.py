"""chaos-serve: the fleet-scale online power-prediction service.

Layers (bottom up):

* ``protocol``  — newline-delimited JSON wire format;
* ``bundle``    — deployable model + drift envelope + idle floor;
* ``registry``  — content-addressed versions, shadow-scored publish gate;
* ``session``   — per-machine ordering, backpressure, drift, online DRE;
* ``batcher``   — micro-batched scoring, one predict per model per tick;
* ``aggregate`` — Eq. 5 cluster sum with staleness decay;
* ``stats``     — JSON telemetry surface;
* ``server``    — the asyncio TCP server tying it together;
* ``shard``     — shared-nothing shard workers (inline or process);
* ``router``    — consistent-hash front end + hot-swap barrier;
* ``replay``    — recorded-cluster replay at a speed multiple.

See ``docs/serving.md`` for the architecture walkthrough.
"""

from repro.serving.aggregate import (
    ClusterAggregator,
    ClusterEstimate,
    MachineContribution,
)
from repro.serving.batcher import MicroBatchScorer
from repro.serving.bundle import (
    ServingBundle,
    bundle_from_payload,
    load_bundle,
    make_bundle,
    save_bundle,
)
from repro.serving.aggregate import merge_estimates
from repro.serving.protocol import ProtocolError
from repro.serving.registry import (
    GateResult,
    ModelRegistry,
    RegistryError,
    VersionInfo,
    shadow_score,
)
from repro.serving.replay import (
    ReplayMachine,
    ReplayMachineResult,
    ReplayResult,
    load_replay_fixture,
    max_deviation_w,
    offline_reference,
    replay,
    replay_async,
    save_replay_fixture,
)
from repro.serving.router import HashRing, ShardedPowerServer
from repro.serving.server import PowerServer
from repro.serving.session import (
    MachineSession,
    ScoredSample,
    SessionConfig,
)
from repro.serving.shard import (
    InlineShardHost,
    ProcessShardHost,
    ShardError,
    ShardTickResult,
    ShardWorker,
    worker_config,
)
from repro.serving.stats import Histogram, ServingStats, merge_snapshots

__all__ = [
    "ClusterAggregator",
    "ClusterEstimate",
    "GateResult",
    "HashRing",
    "Histogram",
    "InlineShardHost",
    "MachineContribution",
    "MachineSession",
    "MicroBatchScorer",
    "ModelRegistry",
    "PowerServer",
    "ProcessShardHost",
    "ProtocolError",
    "RegistryError",
    "ReplayMachine",
    "ReplayMachineResult",
    "ReplayResult",
    "ScoredSample",
    "ServingBundle",
    "ServingStats",
    "SessionConfig",
    "ShardError",
    "ShardTickResult",
    "ShardWorker",
    "ShardedPowerServer",
    "VersionInfo",
    "bundle_from_payload",
    "load_bundle",
    "load_replay_fixture",
    "make_bundle",
    "max_deviation_w",
    "merge_estimates",
    "merge_snapshots",
    "offline_reference",
    "replay",
    "replay_async",
    "save_bundle",
    "save_replay_fixture",
    "shadow_score",
    "worker_config",
]
