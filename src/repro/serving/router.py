"""The sharded serving front end: one router, N shared-nothing shards.

:class:`ShardedPowerServer` speaks the exact same NDJSON/TCP protocol
as :class:`PowerServer` but owns no sessions itself: a consistent-hash
ring (SHA-256, virtual nodes) maps each machine ID to one
:class:`~repro.serving.shard.ShardWorker`, which holds that machine's
session, reorder buffer and scoring state exclusively.  Adding shards
moves only the keys between ring neighbours; everything else stays put.

Per tick the router:

1. runs the **two-phase hot-swap barrier** when its registry generation
   poll moved — every shard stages the new generation (loads bundles,
   installs nothing), and only when *all* shards staged the same
   generation does the router commit it on all of them, between ticks,
   so no tick anywhere in the fleet scores two versions of one
   platform; a racing publish aborts the round and retries next tick;
2. flushes its buffered ingest to every shard in one
   ``tick_batch`` call per shard (submits, drain marks, then scoring)
   — shards tick concurrently on the process backend;
3. merges the per-shard Eq. 5 partials into one fleet
   :class:`ClusterEstimate` (:func:`merge_estimates` — exact, because
   Eq. 5 is a plain sum over machines);
4. writes predictions back with the same buffered-write + bounded
   drain deadline as the single-process server: a stalled consumer is
   closed and counted, never allowed to head-of-line-block the fleet.

Overload shows up exactly where it does single-process: per-session
shed/late counters, surfaced through the *merged* ``ServingStats``
(:func:`merge_snapshots`), identical in shape to one server's snapshot.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
from typing import Any, Iterable, Optional

from repro.serving import protocol
from repro.serving.aggregate import ClusterEstimate, merge_estimates
from repro.serving.bundle import ServingBundle
from repro.serving.registry import ModelRegistry
from repro.serving.session import SessionConfig
from repro.serving.shard import (
    ShardError,
    make_host,
    static_bundle_payloads,
    worker_config,
)
from repro.serving.stats import ServingStats, merge_snapshots

DEFAULT_RING_REPLICAS = 64
"""Virtual nodes per shard: enough to keep the key split within a few
percent of even for realistic fleet sizes, cheap enough to build at
start-up."""


class HashRing:
    """Consistent hashing of machine IDs onto shard indices.

    SHA-256 end to end — stable across processes, runs and Python
    hash-seed randomization, which the reconnect-lands-on-the-same-shard
    guarantee (and the tests) depend on.
    """

    def __init__(
        self,
        n_shards: int,
        replicas: int = DEFAULT_RING_REPLICAS,
        salt: str = "chaos-shard",
    ):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        if replicas < 1:
            raise ValueError("need at least one replica per shard")
        self.n_shards = n_shards
        points = []
        for shard in range(n_shards):
            for replica in range(replicas):
                token = f"{salt}/{shard}/{replica}".encode()
                digest = hashlib.sha256(token).digest()
                points.append(
                    (int.from_bytes(digest[:8], "big"), shard)
                )
        points.sort()
        self._hashes = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    def owner(self, machine_id: str) -> int:
        """The shard index owning one machine ID."""
        digest = hashlib.sha256(machine_id.encode()).digest()
        point = int.from_bytes(digest[:8], "big")
        index = bisect.bisect_right(self._hashes, point)
        return self._owners[index % len(self._owners)]

    def partition(self, machine_ids: Iterable[str]) -> list[list[str]]:
        """Split machine IDs into per-shard ownership lists."""
        parts: list[list[str]] = [[] for _ in range(self.n_shards)]
        for machine_id in machine_ids:
            parts[self.owner(machine_id)].append(machine_id)
        return parts


class _RouterClient:
    """One connected machine: its write half plus routing state."""

    def __init__(
        self,
        machine_id: str,
        platform_key: str,
        shard_index: int,
        writer: asyncio.StreamWriter,
    ):
        self.machine_id = machine_id
        self.platform_key = platform_key
        self.shard_index = shard_index
        self.writer = writer
        self.bye_pending = False
        self.closed = False


class ShardedPowerServer:
    """Protocol-compatible sharded replacement for ``PowerServer``."""

    def __init__(
        self,
        registry: Optional[ModelRegistry] = None,
        static_bundles: Optional[
            dict[str, tuple[str, ServingBundle]]
        ] = None,
        n_shards: int = 2,
        shard_backend: str = "inline",
        host: str = "127.0.0.1",
        port: int = 0,
        tick_interval_s: float = 1.0,
        session_config: Optional[SessionConfig] = None,
        max_samples_per_session: Optional[int] = None,
        drain_timeout_s: float = 2.0,
        ring_replicas: int = DEFAULT_RING_REPLICAS,
    ):
        if (registry is None) == (static_bundles is None):
            raise ValueError(
                "provide exactly one of registry or static_bundles"
            )
        if tick_interval_s <= 0:
            raise ValueError("tick_interval_s must be positive")
        if drain_timeout_s <= 0:
            raise ValueError("drain_timeout_s must be positive")
        self.registry = registry
        self.static_bundles = static_bundles
        self.host = host
        self.port = port
        self.n_shards = n_shards
        self.shard_backend = shard_backend
        self.tick_interval_s = tick_interval_s
        self.drain_timeout_s = drain_timeout_s
        self.session_config = session_config or SessionConfig()
        self.max_samples_per_session = max_samples_per_session
        self.ring = HashRing(n_shards, replicas=ring_replicas)
        # Router-local telemetry: transport/protocol counters only; all
        # scoring counters live in the shards and merge on demand.
        self.stats = ServingStats()
        self.last_estimate: Optional[ClusterEstimate] = None
        self.n_ticks = 0
        self.n_barrier_swaps = 0
        self.n_barrier_aborts = 0
        self._clients: dict[str, _RouterClient] = {}
        self._hosts: list = []
        self._host_locks: list = []
        self._pending_submits: list[list[tuple]] = []
        self._pending_drains: list[list[str]] = []
        self._server: Optional[asyncio.base_events.Server] = None
        self._tick_task: Optional[asyncio.Task] = None
        self._registry_generation = (
            registry.generation if registry is not None else 0
        )

    def _worker_config(self) -> dict:
        if self.registry is not None:
            return worker_config(
                registry_root=str(self.registry.root),
                session_config=self.session_config,
                max_samples_per_session=self.max_samples_per_session,
            )
        assert self.static_bundles is not None
        return worker_config(
            static_bundles=static_bundle_payloads(self.static_bundles),
            session_config=self.session_config,
            max_samples_per_session=self.max_samples_per_session,
        )

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        """Spin up the shard fleet, bind, and start ticking."""
        config = self._worker_config()
        self._hosts = [
            make_host(self.shard_backend, config)
            for _ in range(self.n_shards)
        ]
        # Created here (inside the running loop), not in __init__, so
        # every lock binds to the loop that will actually use it.
        self._host_locks = [asyncio.Lock() for _ in self._hosts]
        self._pending_submits = [[] for _ in self._hosts]
        self._pending_drains = [[] for _ in self._hosts]
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._tick_task = asyncio.ensure_future(self._tick_loop())

    async def stop(self) -> None:
        # Swap shared handles into locals *before* awaiting (the same
        # discipline as PowerServer.stop): a second stop interleaving
        # at the await must see the attribute already cleared.
        tick_task, self._tick_task = self._tick_task, None
        if tick_task is not None:
            tick_task.cancel()
            try:
                await tick_task
            except asyncio.CancelledError:
                pass
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        for client in list(self._clients.values()):
            await self._close_client(client)
        hosts, self._hosts = self._hosts, []
        for host in hosts:
            host.close()

    # -- shard access --------------------------------------------------
    async def _shard_call(
        self, shard_index: int, command: str, payload: Any = None
    ) -> Any:
        """One serialized command against one shard.

        The per-shard lock keeps exactly one command in flight per pipe
        (required by the process host's request/reply framing); calls
        to *different* shards run concurrently — gathering tick_batch
        across the fleet is the scaling axis.
        """
        host = self._hosts[shard_index]
        async with self._host_locks[shard_index]:
            if host.backend == "process":
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(
                    None, host.call, command, payload
                )
            return host.call(command, payload)

    async def _all_shards(self, command: str, payload: Any = None) -> list:
        return await asyncio.gather(
            *(
                self._shard_call(index, command, payload)
                for index in range(len(self._hosts))
            )
        )

    # -- the hot-swap barrier ------------------------------------------
    async def _coordinate_swap(self) -> None:
        """Two-phase exactly-once swap, driven off the generation poll."""
        if self.registry is None:
            return
        observed = self.registry.generation
        if observed == self._registry_generation:
            return
        # Claim the observed generation before the first await; an
        # aborted barrier rolls the claim back and retries next tick.
        previous, self._registry_generation = (
            self._registry_generation,
            observed,
        )
        try:
            staged = await self._all_shards("stage_swap")
        except ShardError:
            self._registry_generation = previous
            self.n_barrier_aborts += 1
            return
        target = staged[0]
        if any(generation != target for generation in staged):
            # A publish raced the stage fan-out: shards disagree, so
            # nothing is committed anywhere.  Next tick restages.
            self._registry_generation = previous
            self.n_barrier_aborts += 1
            return
        await self._all_shards("commit_swap", target)
        self._registry_generation = target
        self.n_barrier_swaps += 1

    # -- tick loop -----------------------------------------------------
    async def _tick_loop(self) -> None:
        while True:
            await asyncio.sleep(self.tick_interval_s)
            await self.run_tick()

    async def run_tick(self) -> None:
        """One coordinated fleet tick (public so tests can drive it)."""
        await self._coordinate_swap()
        # Swap the ingest buffers to locals before the first await so
        # samples arriving mid-tick land cleanly in the next tick.
        submits, self._pending_submits = (
            self._pending_submits,
            [[] for _ in self._hosts],
        )
        drains, self._pending_drains = (
            self._pending_drains,
            [[] for _ in self._hosts],
        )
        results = await asyncio.gather(
            *(
                self._shard_call(
                    index,
                    "tick_batch",
                    {
                        "submits": submits[index],
                        "drains": drains[index],
                    },
                )
                for index in range(len(self._hosts))
            )
        )
        self.n_ticks += 1
        recipients: dict[str, _RouterClient] = {}
        for result in results:
            for sample in result.scored:
                client = self._clients.get(sample.machine_id)
                if client is None or client.closed:
                    continue
                if self._buffer_send(
                    client,
                    {
                        "type": protocol.PREDICTION,
                        "t": sample.t,
                        "power_w": sample.power_w,
                        "patched": sample.patched,
                        "drifting": sample.drifting,
                        "model_version": sample.model_version,
                    },
                ):
                    recipients[sample.machine_id] = client
                else:
                    await self._close_client(client, close_shard=True)
        await self._drain_clients(recipients.values())
        self.last_estimate = merge_estimates(
            self.n_ticks, [result.partial for result in results]
        )
        for result in results:
            for machine_id, session_snapshot in result.drained:
                client = self._clients.get(machine_id)
                if client is None or client.closed:
                    continue
                if self._buffer_send(
                    client,
                    {
                        "type": protocol.DRAINED,
                        "session": session_snapshot,
                    },
                ):
                    await self._drain_one(client)
                # The shard already dropped the session; only the
                # transport is left to close.
                await self._close_client(client, close_shard=False)

    # -- writes (buffered, deadline-drained) ---------------------------
    def _buffer_send(
        self, client: _RouterClient, message: dict
    ) -> bool:
        if client.closed:
            return False
        try:
            client.writer.write(protocol.encode_message(message))
        except (ConnectionError, RuntimeError):
            return False
        return True

    async def _drain_one(self, client: _RouterClient) -> None:
        try:
            await asyncio.wait_for(
                client.writer.drain(), timeout=self.drain_timeout_s
            )
        except asyncio.TimeoutError:
            self.stats.n_stalled_closed += 1
            await self._close_client(client, close_shard=True)
        except (ConnectionError, RuntimeError):
            await self._close_client(client, close_shard=True)

    async def _drain_clients(
        self, clients: "Iterable[_RouterClient]"
    ) -> None:
        pending = [client for client in clients if not client.closed]
        if not pending:
            return
        await asyncio.gather(
            *(self._drain_one(client) for client in pending)
        )

    # -- connection handling -------------------------------------------
    async def _send(self, client: _RouterClient, message: dict) -> None:
        if client.closed:
            return
        try:
            client.writer.write(protocol.encode_message(message))
            await client.writer.drain()
        except (ConnectionError, RuntimeError):
            await self._close_client(client, close_shard=True)

    async def _close_client(
        self, client: _RouterClient, close_shard: bool = True
    ) -> None:
        if client.closed:
            return
        client.closed = True
        self._clients.pop(client.machine_id, None)
        if close_shard:
            try:
                await self._shard_call(
                    client.shard_index,
                    "close_session",
                    {"machine_id": client.machine_id},
                )
            except ShardError:
                pass
        try:
            client.writer.close()
            await client.writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass

    async def _reject(
        self, writer: asyncio.StreamWriter, error: str
    ) -> None:
        self.stats.n_protocol_errors += 1
        try:
            writer.write(
                protocol.encode_message(
                    {"type": protocol.ERROR, "error": error}
                )
            )
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            line = await reader.readline()
        except ValueError:
            await self._reject(writer, "oversized hello line")
            return
        if not line:
            writer.close()
            return
        try:
            message = protocol.decode_line(line)
            if message["type"] != protocol.HELLO:
                raise protocol.ProtocolError(
                    "the first message must be a hello"
                )
            machine_id, platform_key = protocol.parse_hello(message)
        except protocol.ProtocolError as error:
            await self._reject(writer, str(error))
            return
        if machine_id in self._clients:
            await self._reject(
                writer, f"machine {machine_id!r} already has a session"
            )
            return
        shard_index = self.ring.owner(machine_id)
        client = _RouterClient(
            machine_id, platform_key, shard_index, writer
        )
        # Reserve the slot before the shard round-trip: a second hello
        # for the same machine interleaving at the await must already
        # see the ID taken.
        self._clients[machine_id] = client
        try:
            info = await self._shard_call(
                shard_index,
                "open_session",
                {"machine_id": machine_id, "platform": platform_key},
            )
        except ShardError as error:
            self._clients.pop(machine_id, None)
            client.closed = True
            await self._reject(writer, str(error))
            return
        await self._send(
            client,
            {
                "type": protocol.WELCOME,
                "protocol_version": protocol.PROTOCOL_VERSION,
                "machine_id": machine_id,
                "model_version": info["model_version"],
                "required_counters": info["required_counters"],
            },
        )
        await self._read_loop(reader, client)

    async def _read_loop(
        self, reader: asyncio.StreamReader, client: _RouterClient
    ) -> None:
        while not client.closed:
            try:
                line = await reader.readline()
            except ValueError:
                # Oversized mid-stream line: same accounting as the
                # hello path and the single-process server.
                self.stats.n_protocol_errors += 1
                await self._send(
                    client,
                    {
                        "type": protocol.ERROR,
                        "error": "oversized line",
                    },
                )
                await self._close_client(client, close_shard=True)
                return
            except ConnectionError:
                break
            if not line:
                break
            try:
                message = protocol.decode_line(line)
                kind = message["type"]
                if kind == protocol.SAMPLE:
                    t, counters, meter_w = protocol.parse_sample(message)
                    self._pending_submits[client.shard_index].append(
                        (client.machine_id, t, counters, meter_w)
                    )
                elif kind == protocol.STATS:
                    stats_payload = await self.telemetry_async()
                    await self._send(
                        client,
                        {
                            "type": protocol.STATS,
                            "stats": stats_payload,
                        },
                    )
                elif kind == protocol.BYE:
                    client.bye_pending = True
                    self._pending_drains[client.shard_index].append(
                        client.machine_id
                    )
                    # Stop reading; the tick loop delivers `drained`
                    # once the shard's queue empties.
                    return
                else:
                    raise protocol.ProtocolError(
                        f"unexpected message type {kind!r}"
                    )
            except protocol.ProtocolError as error:
                self.stats.n_protocol_errors += 1
                await self._send(
                    client,
                    {"type": protocol.ERROR, "error": str(error)},
                )
                await self._close_client(client, close_shard=True)
                return
        # EOF without bye: abrupt disconnect — drop the transport and
        # the shard-side session; a reconnect rehashes onto the ring.
        await self._close_client(client, close_shard=True)

    # -- telemetry -----------------------------------------------------
    async def shard_snapshots(self) -> list:
        return await self._all_shards("snapshot")

    async def telemetry_async(
        self, extra_session_rows: Iterable[dict] = ()
    ) -> dict:
        """The merged fleet snapshot, same shape as one server's.

        The router's own snapshot contributes the transport counters
        (protocol errors, stalled closes); each shard contributes its
        scoring counters and live session rows.
        """
        shard_snaps = await self.shard_snapshots()
        router_snap = self.stats.snapshot(
            extra_session_rows=extra_session_rows
        )
        merged = merge_snapshots([router_snap] + list(shard_snaps))
        merged["cluster"] = (
            self.last_estimate.to_payload()
            if self.last_estimate is not None
            else None
        )
        if self.registry is not None:
            merged["registry"] = self.registry.snapshot()
        merged["router"] = {
            "shards": self.n_shards,
            "backend": self.shard_backend,
            "ticks": self.n_ticks,
            "barrier_swaps": self.n_barrier_swaps,
            "barrier_aborts": self.n_barrier_aborts,
            "committed_generations": [
                snap["committed_generation"] for snap in shard_snaps
            ],
            "busy_seconds": [
                snap["busy_seconds"] for snap in shard_snaps
            ],
        }
        return merged
