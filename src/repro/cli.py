"""Command-line interface: ``python -m repro <command>``.

Wraps the library's main entry points for shell use:

* ``platforms``  — list the simulated Table I platforms
* ``select``     — run Algorithm 1 on a platform and print the feature set
* ``train``      — train a platform power model and save it to JSON
* ``evaluate``   — cross-validate a technique + feature set on a workload
* ``export-log`` — generate one machine-run's Perfmon CSV
* ``predict``    — apply a saved model to a Perfmon CSV
* ``lint``       — chaos-lint static analysis (catalogs + source tree)
* ``sweep``      — run the technique x feature-set grid via the engine
* ``dse``        — design-space exploration campaigns: ``screen``
  (factorial main effects), ``search`` (seeded genetic search with
  Pareto/MCDM ranking), ``report`` (HTML frontier report)
* ``cache``      — inspect/clear the engine's artifact cache
* ``serve``      — run the chaos-serve prediction server from a registry
* ``replay``     — stream a recorded/simulated cluster through a live
  server at a speed multiple and verify online == offline
* ``publish``    — push a serving bundle through the registry's
  shadow-scoring DRE gate

Engine flags (``sweep``, ``reproduce``): ``--jobs N`` runs independent
tasks on N worker processes with bit-identical results; ``--cache-dir``
points the content-addressed artifact cache somewhere other than
``.repro-cache``; ``--no-cache`` disables it; ``--failure-policy
continue`` finishes every independent task past a failure and reports
the failed subgraph; ``--resume`` replays an interrupted run against the
warm cache, recomputing only missing tasks.  See ``docs/engine.md``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.cluster.cluster import DEFAULT_SEED
from repro.platforms.specs import ALL_PLATFORMS, get_platform
from repro.workloads.suite import WORKLOAD_NAMES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CHAOS: OS-counter-based full-system power models",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("platforms", help="list simulated platforms")

    counters = sub.add_parser(
        "counters", help="list a platform's OS counter catalog"
    )
    counters.add_argument("--platform", required=True)
    counters.add_argument(
        "--category", default=None,
        help="filter by category (e.g. 'Memory', 'Physical Disk')",
    )

    select = sub.add_parser("select", help="run Algorithm 1 on a platform")
    select.add_argument("--platform", required=True)
    select.add_argument("--runs", type=int, default=3)
    select.add_argument("--seed", type=int, default=DEFAULT_SEED)

    train = sub.add_parser("train", help="train and save a platform model")
    train.add_argument("--platform", required=True)
    train.add_argument("--runs", type=int, default=3)
    train.add_argument("--seed", type=int, default=DEFAULT_SEED)
    train.add_argument("--model", default="Q", choices=["L", "P", "Q", "S"])
    train.add_argument("--out", required=True, help="output JSON path")
    train.add_argument(
        "--bundle-out", default=None, metavar="PATH",
        help="also write a serving bundle (model + drift envelope + "
        "idle floor) for `repro publish`",
    )

    evaluate = sub.add_parser(
        "evaluate", help="cross-validate a model on one workload"
    )
    evaluate.add_argument("--platform", required=True)
    evaluate.add_argument("--workload", required=True, choices=WORKLOAD_NAMES)
    evaluate.add_argument("--model", default="Q", choices=["L", "P", "Q", "S"])
    evaluate.add_argument("--runs", type=int, default=4)
    evaluate.add_argument("--seed", type=int, default=DEFAULT_SEED)

    export = sub.add_parser(
        "export-log", help="generate one machine-run Perfmon CSV"
    )
    export.add_argument("--platform", required=True)
    export.add_argument("--workload", required=True, choices=WORKLOAD_NAMES)
    export.add_argument("--machine", type=int, default=0)
    export.add_argument("--seed", type=int, default=DEFAULT_SEED)
    export.add_argument("--out", required=True)

    predict = sub.add_parser(
        "predict", help="apply a saved model to a Perfmon CSV"
    )
    predict.add_argument("--model-file", required=True)
    predict.add_argument("--log", required=True)

    lint = sub.add_parser(
        "lint", help="run chaos-lint static analysis (catalogs + source)"
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files/directories for the AST pass (default: src, "
        "benchmarks, examples under --root)",
    )
    lint.add_argument(
        "--root", default=".",
        help="repository root anchoring the default scan paths",
    )
    lint.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the report as JSON (alias for --format json)",
    )
    lint.add_argument(
        "--format", default=None, dest="format",
        choices=["text", "json", "sarif"],
        help="report format; 'sarif' emits SARIF 2.1.0 for GitHub "
        "code scanning",
    )
    lint.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule-code prefixes to keep (e.g. 'C1,A301')",
    )
    lint.add_argument(
        "--ignore", default=None, metavar="CODES",
        help="comma-separated rule-code prefixes to drop",
    )
    lint.add_argument(
        "--no-semantic", action="store_true",
        help="skip the catalog/pipeline semantic checker",
    )
    lint.add_argument(
        "--no-ast", action="store_true",
        help="skip the source AST pass",
    )
    lint.add_argument(
        "--no-dataflow", action="store_true",
        help="skip the chaos-flow dataflow analyses (L4xx/U5xx)",
    )
    lint.add_argument(
        "--no-races", action="store_true",
        help="skip the chaos-race concurrency analysis (R6xx)",
    )
    lint.add_argument(
        "--no-shapes", action="store_true",
        help="skip the chaos-shape numeric-array analysis (N7xx)",
    )
    lint.add_argument(
        "--explain", default=None, metavar="CODE",
        help="print a rule's doc, rationale, and bad/good example, "
        "then exit (no linting)",
    )
    lint.add_argument(
        "--list-rules", action="store_true", dest="list_rules",
        help="print every registered rule code with its one-line "
        "summary, then exit (no linting)",
    )

    reproduce = sub.add_parser(
        "reproduce", help="regenerate one of the paper's tables/figures"
    )
    reproduce.add_argument(
        "artifact",
        choices=sorted(_ARTIFACTS),
        help="which paper artifact to regenerate",
    )
    reproduce.add_argument(
        "--runs", type=int, default=5,
        help="runs per workload (paper: 5; lower is faster)",
    )
    reproduce.add_argument(
        "--machines", type=int, default=5,
        help="machines per cluster (paper: 5)",
    )
    reproduce.add_argument("--seed", type=int, default=DEFAULT_SEED)
    reproduce.add_argument(
        "--export", default=None, metavar="DIR",
        help="also write the artifact's data as CSV into DIR",
    )
    _add_engine_flags(reproduce)

    sweep = sub.add_parser(
        "sweep",
        help="cross-validate the technique x feature-set grid "
        "(parallel + cached via the experiment engine)",
    )
    sweep.add_argument("--platform", required=True)
    sweep.add_argument("--workload", required=True, choices=WORKLOAD_NAMES)
    sweep.add_argument(
        "--features", default="U,C", metavar="SETS",
        help="comma-separated feature sets to evaluate: U (CPU-only), "
        "C (Algorithm 1 cluster set), CP (cluster + lagged MHz) "
        "(default: U,C)",
    )
    sweep.add_argument(
        "--runs", type=int, default=5,
        help="runs per workload (paper: 5; lower is faster)",
    )
    sweep.add_argument(
        "--machines", type=int, default=5,
        help="machines per cluster (paper: 5)",
    )
    sweep.add_argument("--seed", type=int, default=DEFAULT_SEED)
    sweep.add_argument(
        "--telemetry", action="store_true",
        help="print per-task timing and cache hit-rate after the grid",
    )
    _add_engine_flags(sweep)

    serve = sub.add_parser(
        "serve", help="run the chaos-serve online prediction server"
    )
    serve.add_argument(
        "--registry", required=True, metavar="DIR",
        help="model registry directory (see `repro publish`)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7380)
    serve.add_argument(
        "--tick-interval", type=float, default=1.0, metavar="SECONDS",
        dest="tick_interval_s",
        help="scoring tick period (1.0 matches the 1 Hz counter streams)",
    )
    serve.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="run the sharded serving tier: a consistent-hash router "
        "in front of N shared-nothing shard workers (omit for the "
        "single-process server)",
    )
    serve.add_argument(
        "--shard-backend", default="process",
        choices=["inline", "process"],
        help="where shard workers live: their own spawned processes "
        "(default) or the router's process (deterministic, for tests)",
    )
    serve.add_argument(
        "--sanitize", action="store_true",
        help="arm the chaos-race runtime sanitizer (event-loop debug "
        "hooks, slow-callback + unawaited-coroutine capture) and the "
        "chaos-shape array sanitizer (shape/dtype contract checks at "
        "kernel boundaries); reports print on shutdown and a "
        "violation exits non-zero",
    )

    rep = sub.add_parser(
        "replay",
        help="stream a recorded or simulated cluster through a live "
        "server at a speed multiple",
    )
    source = rep.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--fixture", default=None, metavar="FILE",
        help="replay fixture JSON (bundle + machine logs)",
    )
    source.add_argument(
        "--bundle", default=None, metavar="FILE",
        help="serving bundle JSON; machines are simulated "
        "(--workload/--machines/--seed)",
    )
    rep.add_argument("--workload", default="sort", choices=WORKLOAD_NAMES)
    rep.add_argument("--machines", type=int, default=2)
    rep.add_argument("--seed", type=int, default=DEFAULT_SEED)
    rep.add_argument(
        "--speed", type=float, default=10.0, metavar="X",
        help="speed multiple over real time (10 = ten simulated "
        "seconds per wall second)",
    )
    rep.add_argument(
        "--stats-out", default=None, metavar="FILE",
        help="write the final telemetry snapshot as JSON",
    )
    rep.add_argument(
        "--verify", action="store_true",
        help="check every non-patched online prediction is bit-identical "
        "to the offline PlatformModel.predict_log reference",
    )
    rep.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="replay through the sharded serving tier (router + N "
        "shard workers); scoring stays bit-identical, so --shards 1 "
        "--verify reproduces the single-process golden gate",
    )
    rep.add_argument(
        "--shard-backend", default="inline",
        choices=["inline", "process"],
        help="shard worker placement for --shards (inline is "
        "deterministic and the default for replay)",
    )
    rep.add_argument(
        "--sanitize", action="store_true",
        help="arm the chaos-race runtime sanitizer and the chaos-shape "
        "array sanitizer during the replay; reports land in "
        "telemetry['sanitizer'] / telemetry['array_sanitizer'] and "
        "any violation exits non-zero",
    )

    publish = sub.add_parser(
        "publish",
        help="push a serving bundle through the registry's shadow gate",
    )
    publish.add_argument("--bundle", required=True, metavar="FILE")
    publish.add_argument("--registry", required=True, metavar="DIR")
    publish.add_argument(
        "--replay-log", default=None, metavar="CSV",
        help="held-out Perfmon CSV (with metered power) to shadow-score "
        "the candidate against the live model; omitting skips the gate",
    )
    publish.add_argument(
        "--max-regression", type=float, default=None, metavar="DRE",
        help="max tolerated DRE regression vs live (default 0.02)",
    )
    publish.add_argument(
        "--force", action="store_true",
        help="publish even when the gate rejects",
    )

    dse = sub.add_parser(
        "dse",
        help="design-space exploration campaigns: factorial screening, "
        "genetic search with Pareto/MCDM ranking, HTML frontier reports",
    )
    dse_sub = dse.add_subparsers(dest="dse_command", required=True)

    def _add_campaign_flags(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--platform", required=True)
        parser.add_argument(
            "--workload", default="sort", choices=WORKLOAD_NAMES
        )
        parser.add_argument("--machines", type=int, default=2)
        parser.add_argument(
            "--runs", type=int, default=2,
            help="measurement runs feeding the run-wise folds (>= 2)",
        )
        parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
        parser.add_argument(
            "--ranking", default="catalog",
            choices=["catalog", "algorithm1"],
            help="counter ranking the candidate feature sets draw from: "
            "'catalog' (fast, deterministic) or 'algorithm1' (the "
            "paper's selection funnel; slower)",
        )
        parser.add_argument(
            "--probe-seconds", type=int, default=20,
            dest="probe_seconds", metavar="S",
            help="length of the serving replay probe per candidate",
        )
        _add_engine_flags(parser)

    dse_screen = dse_sub.add_parser(
        "screen",
        help="fractional-factorial screening: rank parameter main "
        "effects before spending a search budget",
    )
    _add_campaign_flags(dse_screen)

    dse_search = dse_sub.add_parser(
        "search",
        help="seeded genetic search over the design space; writes the "
        "campaign JSON and optionally the HTML frontier report",
    )
    _add_campaign_flags(dse_search)
    dse_search.add_argument(
        "--population", type=int, default=24, metavar="N",
        help="GA population per generation",
    )
    dse_search.add_argument(
        "--generations", type=int, default=8, metavar="N",
    )
    dse_search.add_argument(
        "--budget", type=int, default=None, metavar="N",
        help="hard cap on distinct candidate evaluations",
    )
    dse_search.add_argument(
        "--weights", default=None, metavar="NAME=W,...",
        help="MCDM objective weights, e.g. 'dre=0.5,overhead=0.2'; "
        "unnamed objectives keep their defaults; any positive scaling "
        "of the vector ranks identically",
    )
    dse_search.add_argument(
        "--out", required=True, metavar="FILE",
        help="campaign payload JSON output path",
    )
    dse_search.add_argument(
        "--report", default=None, metavar="FILE", dest="report_out",
        help="also render the HTML frontier report here",
    )

    dse_report = dse_sub.add_parser(
        "report",
        help="re-render the HTML frontier report from a saved campaign",
    )
    dse_report.add_argument(
        "--campaign", required=True, metavar="FILE",
        help="campaign JSON written by `repro dse search --out`",
    )
    dse_report.add_argument("--out", required=True, metavar="FILE")

    cache = sub.add_parser(
        "cache", help="inspect or clear the engine's artifact cache"
    )
    cache.add_argument(
        "action", choices=["stats", "clear"],
        help="'stats' prints entry count and size; 'clear' deletes "
        "every entry",
    )
    cache.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    return parser


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    """The experiment-engine knobs shared by sweep/reproduce."""
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for independent tasks (default: "
        "$REPRO_JOBS or 1); results are bit-identical for any N",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="artifact-cache directory (default: $REPRO_CACHE_DIR, "
        "else .repro-cache); warm reruns only recompute invalidated "
        "cells",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the artifact cache for this invocation",
    )
    parser.add_argument(
        "--failure-policy", default=None,
        choices=["fail_fast", "continue"], dest="failure_policy",
        help="fail_fast (default) aborts on the first task failure; "
        "continue finishes every independent task, skips dependents of "
        "failed ones, and reports the failed subgraph (default: "
        "$REPRO_FAILURE_POLICY or fail_fast)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted run: replay the task graph against "
        "the warm artifact cache, recomputing only missing or failed "
        "tasks (requires the cache; incompatible with --no-cache)",
    )


# ----------------------------------------------------------------------
# Command implementations
# ----------------------------------------------------------------------

def _cmd_platforms(args, out) -> int:
    from repro.framework.reports import render_table

    rows = [
        [
            p.key,
            p.display_name,
            f"{p.n_cores} cores",
            p.dvfs_mode.value,
            f"{p.idle_power_w:.0f}-{p.max_power_w:.0f} W",
            f"{p.n_disks} disk(s)",
        ]
        for p in ALL_PLATFORMS
    ]
    print(render_table(
        ["key", "platform", "cores", "dvfs", "power range", "storage"],
        rows,
        title="Simulated platforms (Table I)",
    ), file=out)
    return 0


def _cmd_counters(args, out) -> int:
    from repro.counters.catalog import build_catalog
    from repro.counters.definitions import CounterCategory
    from repro.framework.reports import render_table

    spec = get_platform(args.platform)
    catalog = build_catalog(spec)
    definitions = catalog.definitions
    if args.category is not None:
        wanted = {
            c for c in CounterCategory
            if c.value.lower() == args.category.lower()
        }
        if not wanted:
            known = ", ".join(sorted(c.value for c in CounterCategory))
            print(f"unknown category {args.category!r}; known: {known}",
                  file=out)
            return 2
        definitions = [d for d in definitions if d.category in wanted]
    rows = [
        [d.category.value, d.name, "yes" if d.informative else "no"]
        for d in definitions
    ]
    print(render_table(
        ["category", "counter", "activity-linked"],
        rows,
        title=f"{spec.display_name}: {len(definitions)} counters",
    ), file=out)
    return 0


def _cmd_select(args, out) -> int:
    from repro.cluster.cluster import Cluster
    from repro.framework.chaos import collect_workload_runs
    from repro.selection.algorithm1 import run_algorithm1

    spec = get_platform(args.platform)
    cluster = Cluster.homogeneous(spec, seed=args.seed)
    runs = collect_workload_runs(cluster, n_runs=args.runs)
    result = run_algorithm1(cluster, runs)
    print(result.describe(), file=out)
    for name in result.selected:
        print(f"  {name}  (weight {result.histogram[name]:.1f})", file=out)
    return 0


def _cmd_train(args, out) -> int:
    from repro.framework.chaos import train_platform_model
    from repro.models.persistence import save_platform_model

    spec = get_platform(args.platform)
    trained = train_platform_model(
        spec, n_runs=args.runs, seed=args.seed, model_code=args.model
    )
    save_platform_model(trained.platform_model, args.out)
    print(
        f"trained {trained.platform_model.model.code} model on "
        f"{len(trained.selected_counters)} counters -> {args.out}",
        file=out,
    )
    if args.bundle_out is not None:
        from repro.models.featuresets import pool_features
        from repro.serving import make_bundle, save_bundle

        runs = [
            run
            for workload_runs in trained.runs_by_workload.values()
            for run in workload_runs
        ]
        design, _ = pool_features(runs, trained.feature_set)
        bundle = make_bundle(
            trained.platform_model,
            design,
            idle_power_w=spec.idle_power_w,
            meta={
                "platform": spec.key,
                "model": args.model,
                "seed": args.seed,
                "runs": args.runs,
            },
        )
        save_bundle(bundle, args.bundle_out)
        print(
            f"serving bundle {bundle.digest()[:12]} -> {args.bundle_out}",
            file=out,
        )
    return 0


def _cmd_evaluate(args, out) -> int:
    from repro.cluster.cluster import Cluster
    from repro.cluster.runner import execute_runs
    from repro.framework.chaos import collect_workload_runs
    from repro.framework.crossval import cross_validate
    from repro.models.featuresets import cluster_set
    from repro.models.registry import supports_feature_set
    from repro.selection.algorithm1 import run_algorithm1
    from repro.workloads.suite import get_workload

    spec = get_platform(args.platform)
    cluster = Cluster.homogeneous(spec, seed=args.seed)
    runs_by_workload = collect_workload_runs(cluster, n_runs=args.runs)
    selection = run_algorithm1(cluster, runs_by_workload)
    feature_set = cluster_set(selection.selected)
    if not supports_feature_set(args.model, feature_set):
        print(
            f"model {args.model} cannot use the {len(selection.selected)}-"
            "feature cluster set on this platform",
            file=out,
        )
        return 2
    runs = execute_runs(
        cluster, get_workload(args.workload), n_runs=args.runs
    )
    result = cross_validate(
        runs, model_code=args.model, feature_set=feature_set, seed=args.seed
    )
    print(
        f"{result.label} on {spec.key}/{args.workload}: "
        f"machine DRE {result.mean_machine_dre:.1%}, "
        f"cluster DRE {result.mean_cluster_dre:.1%}, "
        f"%err {result.machine_reports.mean_percent_error:.1%} "
        f"({result.n_models_built} models cross-validated)",
        file=out,
    )
    return 0


def _cmd_export_log(args, out) -> int:
    from repro.cluster.cluster import Cluster
    from repro.cluster.runner import execute_runs
    from repro.workloads.suite import get_workload

    spec = get_platform(args.platform)
    cluster = Cluster.homogeneous(spec, seed=args.seed)
    if not 0 <= args.machine < cluster.n_machines:
        print(f"machine index out of range (0-{cluster.n_machines - 1})",
              file=out)
        return 2
    run = execute_runs(
        cluster, get_workload(args.workload), n_runs=1
    )[0]
    machine_id = cluster.machines[args.machine].machine_id
    log = run.logs[machine_id]
    with open(args.out, "w") as handle:
        handle.write(log.to_csv())
    print(
        f"wrote {log.n_seconds} s x {log.n_counters} counters for "
        f"{machine_id} -> {args.out}",
        file=out,
    )
    return 0


def _cmd_predict(args, out) -> int:
    from repro.models.persistence import load_platform_model
    from repro.telemetry.perfmon import PerfmonLog

    platform_model = load_platform_model(args.model_file)
    with open(args.log) as handle:
        log = PerfmonLog.from_csv(handle.read())
    prediction = platform_model.predict_log(log)
    actual = log.power_w
    rmse = float(np.sqrt(np.mean((prediction - actual) ** 2)))
    print(
        f"predicted {prediction.size} samples: "
        f"mean {prediction.mean():.1f} W, "
        f"range {prediction.min():.1f}-{prediction.max():.1f} W; "
        f"vs logged power rMSE {rmse:.2f} W",
        file=out,
    )
    return 0


def _resolve_cache_dir(args) -> str | None:
    """--no-cache beats --cache-dir beats $REPRO_CACHE_DIR beats default."""
    import os

    from repro.engine import DEFAULT_CACHE_DIR
    from repro.engine.options import ENV_CACHE_DIR

    if getattr(args, "no_cache", False):
        return None
    if args.cache_dir is not None:
        return args.cache_dir
    return os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR


def _engine_defaults(args):
    """Context manager installing the CLI's engine flags as the
    process-wide defaults, so every sweep inside a driver honors them."""
    import contextlib

    from repro.engine import (
        reset_default_options,
        resolve_failure_policy,
        resolve_jobs,
        set_default_options,
    )

    @contextlib.contextmanager
    def _installed():
        set_default_options(
            jobs=resolve_jobs(args.jobs),
            cache_dir=_resolve_cache_dir(args),
            failure_policy=resolve_failure_policy(
                getattr(args, "failure_policy", None)
            ),
        )
        try:
            yield
        finally:
            reset_default_options()

    return _installed()


def _check_resume(args, out) -> bool:
    """Validate --resume: it needs the artifact cache to replay against.

    Resuming is the warm-cache replay the engine already guarantees:
    completed tasks hit the cache, only missing or failed ones are
    recomputed.  Returns False (and prints a message) on misuse.
    """
    if not getattr(args, "resume", False):
        return True
    if getattr(args, "no_cache", False):
        print("error: --resume needs the artifact cache "
              "(drop --no-cache)", file=out)
        return False
    cache_dir = _resolve_cache_dir(args)
    print(f"resuming against cache at {cache_dir}: completed tasks are "
          "served warm, missing/failed ones recomputed", file=out)
    return True


def _cmd_sweep(args, out) -> int:
    from repro.cluster.cluster import Cluster
    from repro.cluster.runner import execute_runs
    from repro.framework.chaos import collect_workload_runs
    from repro.framework.reports import format_percent, render_table
    from repro.framework.sweep import sweep_models
    from repro.models.featuresets import (
        cluster_plus_lagged_frequency,
        cluster_set,
        cpu_only_set,
    )
    from repro.selection.algorithm1 import run_algorithm1
    from repro.telemetry import EngineTelemetry
    from repro.workloads.suite import get_workload

    wanted = [name.strip().upper() for name in args.features.split(",")]
    unknown = set(wanted) - {"U", "C", "CP"}
    if unknown:
        print(f"unknown feature sets: {sorted(unknown)} "
              "(choose from U, C, CP)", file=out)
        return 2

    if not _check_resume(args, out):
        return 2
    spec = get_platform(args.platform)
    cluster = Cluster.homogeneous(
        spec, n_machines=args.machines, seed=args.seed
    )
    with _engine_defaults(args):
        feature_sets = []
        if "U" in wanted:
            feature_sets.append(cpu_only_set())
        if "C" in wanted or "CP" in wanted:
            selection = run_algorithm1(
                cluster, collect_workload_runs(cluster, n_runs=args.runs)
            )
            if "C" in wanted:
                feature_sets.append(cluster_set(selection.selected))
            if "CP" in wanted:
                feature_sets.append(
                    cluster_plus_lagged_frequency(selection.selected)
                )
        runs = execute_runs(
            cluster, get_workload(args.workload), n_runs=args.runs
        )
        telemetry = EngineTelemetry()
        sweep = sweep_models(runs, feature_sets, seed=args.seed,
                             telemetry=telemetry)

    feature_names = sorted(
        {e.feature_set_name for e in sweep.evaluations},
        key=lambda n: ("U", "C", "CP", "G").index(n),
    )
    rows = []
    for code in ("L", "P", "Q", "S"):
        row = [code]
        for fs_name in feature_names:
            try:
                cell = sweep.cell(code, fs_name)
                row.append(format_percent(cell.mean_machine_dre))
            except KeyError:
                row.append("n/a")
        rows.append(row)
    print(render_table(
        ["model"] + [f"features={n}" for n in feature_names],
        rows,
        title=(
            f"{spec.display_name} / {args.workload}: mean machine DRE "
            f"({sweep.n_models_built} models cross-validated)"
        ),
    ), file=out)
    if sweep.incomplete_cells:
        print(
            "incomplete cells (a fold failed or was skipped): "
            + ", ".join(sweep.incomplete_cells),
            file=out,
        )
        if sweep.report is not None:
            print(sweep.report.render(), file=out)
    if sweep.evaluations:
        best = sweep.best()
        print(f"best cell: {best.label} "
              f"(DRE {best.mean_machine_dre:.1%})", file=out)
    if args.telemetry:
        print(telemetry.render(), file=out)
    return 0 if not sweep.incomplete_cells else 1


def _cmd_serve(args, out) -> int:
    import asyncio

    from repro.serving import (
        ModelRegistry,
        PowerServer,
        ShardedPowerServer,
    )

    registry = ModelRegistry(args.registry)
    platforms = registry.platforms()
    if not platforms:
        print(
            f"error: registry at {args.registry} has no published "
            "models (see `repro publish`)",
            file=out,
        )
        return 2

    sanitizer = None
    array_sanitizer = None

    async def _run() -> None:
        nonlocal sanitizer, array_sanitizer
        if args.sanitize:
            from repro.analysis.arraysan import install_array_sanitizer
            from repro.analysis.sanitizer import install_sanitizer

            sanitizer = install_sanitizer(asyncio.get_running_loop())
            array_sanitizer = install_array_sanitizer()
        if args.shards is not None:
            server = ShardedPowerServer(
                registry=registry,
                n_shards=args.shards,
                shard_backend=args.shard_backend,
                host=args.host,
                port=args.port,
                tick_interval_s=args.tick_interval_s,
            )
            topology = (
                f" [{args.shards} {args.shard_backend} shard(s)]"
            )
        else:
            server = PowerServer(
                registry=registry,
                host=args.host,
                port=args.port,
                tick_interval_s=args.tick_interval_s,
            )
            topology = ""
        await server.start()
        print(
            f"chaos-serve listening on {server.host}:{server.port} "
            f"({len(platforms)} platform(s): {', '.join(platforms)}); "
            "Ctrl-C to stop"
            + topology
            + (" [sanitizer armed]" if args.sanitize else ""),
            file=out,
        )
        try:
            await asyncio.Event().wait()
        finally:
            await server.stop()
            if sanitizer is not None:
                sanitizer.uninstall()
            if array_sanitizer is not None:
                array_sanitizer.uninstall()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("stopped", file=out)
    failed = False
    if sanitizer is not None:
        report = sanitizer.report()
        print(
            f"sanitizer: {report['n_violations']} violation(s) "
            f"{report['by_kind'] or ''}".rstrip(),
            file=out,
        )
        if not report["ok"]:
            for violation in report["violations"]:
                print(f"  - {violation['kind']}: {violation['detail']}",
                      file=out)
            failed = True
    if array_sanitizer is not None:
        report = array_sanitizer.report()
        print(
            f"array sanitizer: {report['n_violations']} violation(s) "
            f"{report['by_kind'] or ''}".rstrip(),
            file=out,
        )
        if not report["ok"]:
            for violation in report["violations"]:
                print(
                    f"  - {violation['kind']} in "
                    f"{violation['function']}(): {violation['detail']}",
                    file=out,
                )
            failed = True
    return 1 if failed else 0


def _cmd_replay(args, out) -> int:
    import json

    from repro.serving import (
        ReplayMachine,
        load_bundle,
        load_replay_fixture,
        max_deviation_w,
        replay,
    )

    if args.fixture is not None:
        bundle, machines = load_replay_fixture(args.fixture)
    else:
        from repro.cluster.cluster import Cluster
        from repro.cluster.runner import execute_runs
        from repro.workloads.suite import get_workload

        bundle = load_bundle(args.bundle)
        spec = get_platform(bundle.platform_key)
        cluster = Cluster.homogeneous(
            spec, n_machines=args.machines, seed=args.seed
        )
        run = execute_runs(
            cluster, get_workload(args.workload), n_runs=1, seed=args.seed
        )[0]
        machines = [
            ReplayMachine(
                machine_id=machine_id,
                platform_key=bundle.platform_key,
                log=run.logs[machine_id],
            )
            for machine_id in run.machine_ids
        ]

    logs = {machine.machine_id: machine.log for machine in machines}
    result = replay(
        machines,
        static_bundles={
            bundle.platform_key: (
                f"{bundle.platform_key}@file-{bundle.digest()[:12]}",
                bundle,
            )
        },
        speed=args.speed,
        sanitize=args.sanitize,
        shards=args.shards,
        shard_backend=args.shard_backend,
    )
    print(
        f"replayed {len(machines)} machine(s) at {args.speed:g}x: "
        f"{result.total_scored} samples scored, "
        f"{result.total_dropped} dropped, "
        f"batch p99 {result.telemetry['batch_latency_s']['p99']*1e3:.2f} ms",
        file=out,
    )
    sanitizer_failed = False
    if args.sanitize:
        report = result.telemetry["sanitizer"]
        print(
            f"sanitizer: {report['n_violations']} violation(s), max "
            f"heartbeat drift "
            f"{report['max_heartbeat_drift_s']*1e3:.1f} ms",
            file=out,
        )
        if not report["ok"]:
            for violation in report["violations"]:
                print(f"  - {violation['kind']}: {violation['detail']}",
                      file=out)
            sanitizer_failed = True
        array_report = result.telemetry["array_sanitizer"]
        n_contracted_calls = sum(
            stats["calls"]
            for stats in array_report["functions"].values()
        )
        print(
            f"array sanitizer: {array_report['n_violations']} "
            f"violation(s) over {n_contracted_calls} contracted "
            "call(s)",
            file=out,
        )
        if not array_report["ok"]:
            for violation in array_report["violations"]:
                print(
                    f"  - {violation['kind']} in "
                    f"{violation['function']}(): {violation['detail']}",
                    file=out,
                )
            sanitizer_failed = True
    if args.stats_out is not None:
        with open(args.stats_out, "w") as handle:
            json.dump(result.telemetry, handle, indent=2)
        print(f"telemetry -> {args.stats_out}", file=out)
    if args.verify:
        worst = max(
            max_deviation_w(machine_result, bundle, logs[machine_id])
            for machine_id, machine_result in result.machines.items()
        )
        if worst > 0.0:
            print(
                f"VERIFY FAILED: online deviates from offline by up to "
                f"{worst:.3e} W",
                file=out,
            )
            return 1
        print("verify: online == offline bit-for-bit on every "
              "non-patched sample", file=out)
    return 1 if sanitizer_failed else 0


def _cmd_publish(args, out) -> int:
    from repro.serving import ModelRegistry, RegistryError, load_bundle
    from repro.serving.registry import DEFAULT_MAX_DRE_REGRESSION
    from repro.telemetry.perfmon import PerfmonLog

    bundle = load_bundle(args.bundle)
    registry = ModelRegistry(args.registry)
    replay_log = None
    if args.replay_log is not None:
        with open(args.replay_log) as handle:
            replay_log = PerfmonLog.from_csv(handle.read())
    try:
        version, gate = registry.publish(
            bundle,
            replay_log=replay_log,
            max_dre_regression=(
                args.max_regression
                if args.max_regression is not None
                else DEFAULT_MAX_DRE_REGRESSION
            ),
            force=args.force,
        )
    except RegistryError as error:
        print(f"publish rejected: {error}", file=out)
        return 1
    if gate is not None:
        print(gate.describe(), file=out)
    else:
        print("ungated publish (no --replay-log)", file=out)
    print(
        f"published {version.label} "
        f"(generation {version.generation}); live for "
        f"{version.platform_key}",
        file=out,
    )
    return 0


def _parse_weights(raw: str | None) -> dict[str, float]:
    """--weights 'dre=0.5,overhead=0.2' merged over the defaults."""
    from repro.dse.mcdm import DEFAULT_WEIGHTS

    weights = dict(DEFAULT_WEIGHTS)
    if raw is None:
        return weights
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, value = part.partition("=")
        if name not in weights:
            raise ValueError(
                f"unknown objective {name!r} in --weights "
                f"(choose from {sorted(weights)})"
            )
        weights[name] = float(value)
    return weights


def _dse_campaign_config(args):
    from repro.dse import CampaignConfig, GAConfig

    ga = GAConfig(
        population=getattr(args, "population", 24),
        generations=getattr(args, "generations", 8),
        budget=getattr(args, "budget", None),
    )
    return CampaignConfig(
        platform=args.platform,
        workload=args.workload,
        machines=args.machines,
        runs=args.runs,
        seed=args.seed,
        ranking=args.ranking,
        probe_seconds=args.probe_seconds,
        weights=_parse_weights(getattr(args, "weights", None)),
        ga=ga,
    )


def _cmd_dse(args, out) -> int:
    from repro.framework.reports import render_table

    if args.dse_command == "report":
        from repro.dse import load_campaign, save_report

        payload = load_campaign(args.campaign)
        save_report(payload, args.out)
        print(
            f"frontier report ({len(payload['frontier'])} of "
            f"{len(payload['candidates'])} candidates) -> {args.out}",
            file=out,
        )
        return 0

    if not _check_resume(args, out):
        return 2
    config = _dse_campaign_config(args)

    if args.dse_command == "screen":
        from repro.dse import screen_campaign

        with _engine_defaults(args):
            result = screen_campaign(config)
        print(
            f"screened {result.n_runs_evaluated} factorial runs "
            f"({result.n_feasible} feasible) on "
            f"{config.platform}/{config.workload}",
            file=out,
        )
        rows = [
            [factor.name, f"{factor.strength:.3f}"]
            + [f"{effect:+.4g}" for effect in factor.effects]
            for factor in result.factors
        ]
        from repro.dse import OBJECTIVE_NAMES

        print(render_table(
            ["parameter", "strength"] + list(OBJECTIVE_NAMES),
            rows,
            title="main effects (strongest first; effect = "
            "mean(high) - mean(low))",
        ), file=out)
        print(result.telemetry.render(), file=out)
        return 0

    # search
    from repro.dse import git_commit, save_campaign, search_campaign

    def _progress(record):
        print(
            f"  generation {record.generation}: "
            f"{len(record.evaluated)} new evaluations, "
            f"frontier {len(record.frontier)}",
            file=out,
        )

    with _engine_defaults(args):
        result = search_campaign(config, on_generation=_progress)
    result.provenance = {"commit": git_commit()}
    save_campaign(result, args.out)
    print(
        f"campaign: {len(result.candidates)} candidates evaluated, "
        f"frontier {len(result.frontier)}, payload "
        f"{result.payload_digest()[:12]} -> {args.out}",
        file=out,
    )
    if result.mcdm:
        from repro.dse import OBJECTIVE_NAMES

        rows = []
        for entry in result.mcdm[:5]:
            verdict = result.candidates[entry["digest"]]
            detail = verdict.get("detail") or {}
            rows.append(
                [
                    entry["digest"][:10],
                    str(detail.get("label", "?")),
                    f"{entry['score']:.4f}",
                ]
                + [
                    f"{verdict['objectives'][name]:.4g}"
                    for name in OBJECTIVE_NAMES
                ]
            )
        print(render_table(
            ["candidate", "config", "mcdm"] + list(OBJECTIVE_NAMES),
            rows,
            title="top candidates (MCDM weighted score, lower = better)",
        ), file=out)
    if args.report_out is not None:
        from repro.dse import save_report

        payload = result.to_payload()
        save_report(payload, args.report_out)
        print(f"frontier report -> {args.report_out}", file=out)
    print(result.telemetry.render(), file=out)
    return 0


def _cmd_cache(args, out) -> int:
    from repro.engine import ArtifactCache

    cache_dir = _resolve_cache_dir(args)
    cache = ArtifactCache(cache_dir)
    if args.action == "stats":
        print(cache.stats().render(), file=out)
    else:
        removed = cache.clear()
        print(f"removed {removed} cache entries from {cache.root}",
              file=out)
    return 0


def _cmd_lint(args, out) -> int:
    from repro.analysis.runner import run_lint

    if args.list_rules:
        from repro.analysis.findings import RULES

        for code in sorted(RULES):
            print(f"{code}  {RULES[code]}", file=out)
        return 0

    if args.explain is not None:
        from repro.analysis.ruledocs import explain

        text = explain(args.explain)
        if text is None:
            print(
                f"unknown rule code {args.explain!r} (see "
                "docs/static_analysis.md for the catalog)",
                file=out,
            )
            return 2
        print(text, file=out)
        return 0

    report = run_lint(
        root=args.root,
        paths=args.paths or None,
        select=args.select,
        ignore=args.ignore,
        semantic=not args.no_semantic,
        ast_pass=not args.no_ast,
        dataflow=not args.no_dataflow,
        races=not args.no_races,
        shapes=not args.no_shapes,
    )
    format = args.format or ("json" if args.as_json else "text")
    print(report.render(format, root=args.root), file=out)
    return report.exit_code


#: Artifact name -> experiment driver (resolved lazily to keep CLI startup
#: light).  Every driver accepts a DataRepository.
_ARTIFACTS = {
    "figure1": "run_figure1",
    "figure2": "run_figure2",
    "figure3": "run_figure3",
    "figure4": "run_figure4",
    "figure5": "run_figure5",
    "table2": "run_table2",
    "table3": "run_table3",
    "table4": "run_table4",
    "hetero": "run_hetero",
    "general-accuracy": "run_general_accuracy",
    "overhead": "run_overhead",
    "scaling-machines": "run_sampling",
    "sampling-rate": "run_sampling_rate",
    "cross-workload": "run_cross_workload",
}


def _cmd_reproduce(args, out) -> int:
    import repro.experiments as experiments

    repository = experiments.DataRepository(
        seed=args.seed, n_runs=args.runs, n_machines=args.machines
    )
    if not _check_resume(args, out):
        return 2
    driver = getattr(experiments, _ARTIFACTS[args.artifact])
    print(
        f"regenerating {args.artifact} "
        f"({args.machines} machines, {args.runs} runs, seed {args.seed}) "
        "...",
        file=out,
    )
    with _engine_defaults(args):
        result = driver(repository=repository)
    print(result.render(), file=out)
    if args.export is not None:
        from repro.experiments.export import export_result

        path = export_result(args.artifact, result, args.export)
        if path is not None:
            print(f"data written to {path}", file=out)
        else:
            print("(no tabular data exporter for this artifact)", file=out)
    return 0


_COMMANDS = {
    "platforms": _cmd_platforms,
    "counters": _cmd_counters,
    "select": _cmd_select,
    "train": _cmd_train,
    "evaluate": _cmd_evaluate,
    "export-log": _cmd_export_log,
    "predict": _cmd_predict,
    "lint": _cmd_lint,
    "reproduce": _cmd_reproduce,
    "sweep": _cmd_sweep,
    "dse": _cmd_dse,
    "cache": _cmd_cache,
    "serve": _cmd_serve,
    "replay": _cmd_replay,
    "publish": _cmd_publish,
}


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    stream = out if out is not None else sys.stdout
    try:
        return _COMMANDS[args.command](args, stream)
    except (KeyError, ValueError, OSError) as error:
        print(f"error: {error}", file=stream)
        return 1


if __name__ == "__main__":
    sys.exit(main())
