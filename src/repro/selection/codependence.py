"""Step 2 of Algorithm 1: co-dependent counter elimination.

Some counters are, by documented definition, exact sums of others
(``Packets/sec = Packets Sent/sec + Packets Received/sec``).  Keeping all
three makes the design matrix singular.  Following the paper's rule for a
triple ``a = b + c``: remove ``a`` (the sum) and ``b`` (one addend),
keeping ``c``.  The paper did this manually from the counter definitions;
here the definitions carry the metadata (``CounterDefinition.sum_of``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.counters.definitions import CounterCatalog


@dataclass(frozen=True)
class CodependenceElimination:
    """Outcome of step 2, in counter names."""

    kept: tuple[str, ...]
    removed: tuple[str, ...]


def eliminate_codependent(
    candidate_names: list[str],
    catalog: CounterCatalog,
) -> CodependenceElimination:
    """Apply the a = b + c rule to the candidate list.

    Only triples whose sum counter is still a candidate are acted on; a
    sum whose addends were already pruned in step 1 carries unique
    information and is kept.
    """
    candidates = set(candidate_names)
    removed: list[str] = []
    for total, addend, other in catalog.codependent_triples:
        if total not in candidates:
            continue
        # Remove the definitional sum.
        candidates.discard(total)
        removed.append(total)
        # Remove one addend if both are still present (a + b with only one
        # addend left is not redundant).
        if addend in candidates and other in candidates:
            candidates.discard(addend)
            removed.append(addend)
    kept = tuple(name for name in candidate_names if name in candidates)
    return CodependenceElimination(kept=kept, removed=tuple(removed))
