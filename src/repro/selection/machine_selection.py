"""Steps 3-4 of Algorithm 1: per-machine feature selection.

For each (machine, workload) pair, an L1-regularized fit (step 3) sweeps
away irrelevant counters in the high-dimensional space, then stepwise
backward elimination with the Wald test (step 4) removes counters whose
coefficients cannot be distinguished from zero.  The output per pair is a
set of *significant* features (survived both) and *marginal* ones
(selected by the lasso but eliminated by stepwise) — the distinction
feeds the weighted-occurrence histogram of step 5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.regression.lasso import fit_lasso_path
from repro.regression.stepwise import backward_eliminate


@dataclass(frozen=True)
class MachineSelection:
    """Feature-selection outcome for one (machine, workload) pair."""

    machine_id: str
    workload_name: str
    significant: tuple[str, ...]
    marginal: tuple[str, ...]

    @property
    def selected(self) -> tuple[str, ...]:
        return self.significant + self.marginal


def select_machine_features(
    design: np.ndarray,
    power: np.ndarray,
    feature_names: list[str],
    machine_id: str,
    workload_name: str,
    lasso_max_features: int = 15,
    significance: float = 0.05,
) -> MachineSelection:
    """Run steps 3-4 on one machine-workload dataset."""
    design = np.asarray(design, dtype=float)
    if design.shape[1] != len(feature_names):
        raise ValueError("feature_names must match design columns")

    # Step 3: L1 regularization path, BIC-selected, capped at a size that
    # keeps the subsequent stepwise fit well-conditioned.
    path = fit_lasso_path(
        design, power, max_features=lasso_max_features
    )
    lasso_indices = [int(i) for i in path.best.selected]
    if not lasso_indices:
        # Degenerate (constant-power) segment: fall back to the single
        # counter most correlated with power.
        correlations = _abs_correlations(design, power)
        lasso_indices = [int(np.argmax(correlations))]

    # Step 4: stepwise Wald elimination among the lasso survivors.
    stepwise = backward_eliminate(
        design[:, lasso_indices],
        power,
        significance=significance,
        min_features=1,
    )
    significant = tuple(
        feature_names[lasso_indices[i]] for i in stepwise.selected
    )
    marginal = tuple(
        feature_names[lasso_indices[i]] for i in stepwise.eliminated
    )
    return MachineSelection(
        machine_id=machine_id,
        workload_name=workload_name,
        significant=significant,
        marginal=marginal,
    )


def _abs_correlations(design: np.ndarray, response: np.ndarray) -> np.ndarray:
    std = design.std(axis=0)
    centered = design - design.mean(axis=0)
    response_centered = response - response.mean()
    response_std = response.std()
    if response_std == 0:
        return np.zeros(design.shape[1])
    safe = np.where(std > 0, std, 1.0)
    corr = (centered / safe).T @ (response_centered / response_std)
    corr = corr / design.shape[0]
    return np.where(std > 0, np.abs(corr), 0.0)
