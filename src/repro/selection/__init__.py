"""Algorithm 1: automatic feature selection for cluster power models."""

from repro.selection.algorithm1 import (
    Algorithm1Result,
    SelectionConfig,
    run_algorithm1,
)
from repro.selection.codependence import (
    CodependenceElimination,
    eliminate_codependent,
)
from repro.selection.correlation import (
    DEFAULT_CORRELATION_THRESHOLD,
    CorrelationPruning,
    correlation_matrix,
    prune_correlated,
)
from repro.selection.general import GeneralFeatureSet, derive_general_set
from repro.selection.machine_selection import (
    MachineSelection,
    select_machine_features,
)
from repro.selection.pooling import (
    DEFAULT_OCCURRENCE_THRESHOLD,
    MARGINAL_WEIGHT,
    PooledSelection,
    occurrence_histogram,
    pool_and_refine,
)

__all__ = [
    "Algorithm1Result",
    "CodependenceElimination",
    "CorrelationPruning",
    "DEFAULT_CORRELATION_THRESHOLD",
    "DEFAULT_OCCURRENCE_THRESHOLD",
    "GeneralFeatureSet",
    "MARGINAL_WEIGHT",
    "MachineSelection",
    "PooledSelection",
    "SelectionConfig",
    "correlation_matrix",
    "derive_general_set",
    "eliminate_codependent",
    "occurrence_histogram",
    "pool_and_refine",
    "prune_correlated",
    "run_algorithm1",
    "select_machine_features",
]
