"""Step 1 of Algorithm 1: correlated-counter pruning.

Pairs of counters whose correlation exceeds |0.95| across all workloads
inflate model coefficients, so each correlated group is reduced to a
single representative.  The catalog registers canonical counters before
their aliases, and this pruning keeps the *earliest* member of each
group — matching the paper's "remove feature b" (keep a).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

DEFAULT_CORRELATION_THRESHOLD = 0.95


def correlation_matrix(design: np.ndarray) -> np.ndarray:
    """Pairwise Pearson correlations; constant columns correlate with
    nothing (zeros)."""
    design = np.asarray(design, dtype=float)
    if design.ndim != 2:
        raise ValueError("design must be 2-D")
    std = design.std(axis=0)
    constant = std == 0
    centered = design - design.mean(axis=0)
    safe_std = np.where(constant, 1.0, std)
    normalized = centered / safe_std
    corr = (normalized.T @ normalized) / design.shape[0]
    corr[constant, :] = 0.0
    corr[:, constant] = 0.0
    np.fill_diagonal(corr, 1.0)
    return corr


@dataclass(frozen=True)
class CorrelationPruning:
    """Outcome of step 1."""

    kept: tuple[int, ...]
    removed: tuple[int, ...]
    removed_because_of: dict[int, int]
    """Removed column -> the earlier column it duplicated."""


def prune_correlated(
    design: np.ndarray,
    threshold: float = DEFAULT_CORRELATION_THRESHOLD,
) -> CorrelationPruning:
    """Greedy earliest-representative pruning of |r| > threshold pairs."""
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    corr = np.abs(correlation_matrix(design))
    n = corr.shape[0]
    removed_because_of: dict[int, int] = {}
    kept: list[int] = []
    removed_mask = np.zeros(n, dtype=bool)
    for i in range(n):
        if removed_mask[i]:
            continue
        kept.append(i)
        duplicates = np.flatnonzero((corr[i] > threshold) & ~removed_mask)
        for j in duplicates:
            if j > i:
                removed_mask[j] = True
                removed_because_of[int(j)] = i
    return CorrelationPruning(
        kept=tuple(kept),
        removed=tuple(sorted(removed_because_of)),
        removed_because_of=removed_because_of,
    )
