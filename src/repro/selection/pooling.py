"""Steps 5-6 of Algorithm 1: cross-machine pooling and cluster refit.

Step 5 builds a weighted-occurrence histogram over the union of every
(machine, workload) selection: a feature scores 1.0 for each pair where it
survived stepwise and a fractional weight where it was lasso-selected but
stepwise-eliminated.  Features above a threshold become candidates.

Step 6 pools the *entire cluster dataset* (all machines, runs, workloads),
restricts it to the candidates, and runs stepwise elimination again;
features it discards effectively raise the selection threshold (the paper
started at 5 and ended at 7 on every platform).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.regression.stepwise import backward_eliminate
from repro.selection.machine_selection import MachineSelection

DEFAULT_OCCURRENCE_THRESHOLD = 5.0
MARGINAL_WEIGHT = 0.5


def occurrence_histogram(
    selections: list[MachineSelection],
    marginal_weight: float = MARGINAL_WEIGHT,
) -> dict[str, float]:
    """Step 5: weighted occurrence count per feature name."""
    histogram: dict[str, float] = {}
    for selection in selections:
        for name in selection.significant:
            histogram[name] = histogram.get(name, 0.0) + 1.0
        for name in selection.marginal:
            histogram[name] = histogram.get(name, 0.0) + marginal_weight
    return histogram


@dataclass(frozen=True)
class PooledSelection:
    """Outcome of steps 5-6."""

    histogram: dict[str, float]
    initial_threshold: float
    effective_threshold: float
    candidates: tuple[str, ...]
    selected: tuple[str, ...]
    eliminated_in_step6: tuple[str, ...]


def pool_and_refine(
    selections: list[MachineSelection],
    cluster_design: np.ndarray,
    cluster_power: np.ndarray,
    feature_names: list[str],
    threshold: float = DEFAULT_OCCURRENCE_THRESHOLD,
    significance: float = 0.05,
    marginal_weight: float = MARGINAL_WEIGHT,
) -> PooledSelection:
    """Run steps 5-6 and return the cluster-specific feature set.

    ``cluster_design`` / ``cluster_power`` must be the full pooled cluster
    dataset with columns in ``feature_names`` order.
    """
    if not selections:
        raise ValueError("need at least one machine selection")
    cluster_design = np.asarray(cluster_design, dtype=float)
    if cluster_design.shape[1] != len(feature_names):
        raise ValueError("feature_names must match cluster design columns")

    histogram = occurrence_histogram(selections, marginal_weight)

    # Step 5: threshold the histogram.  If the threshold removes
    # everything, lower it until at least one feature survives (the
    # paper's fully-automated fallback).
    working_threshold = threshold
    candidates = [
        name for name, weight in histogram.items() if weight >= working_threshold
    ]
    while not candidates and working_threshold > 0:
        working_threshold -= 1.0
        candidates = [
            name for name, weight in histogram.items()
            if weight >= working_threshold
        ]
    if not candidates:
        raise ValueError("no features were ever selected on any machine")
    # Stable order: catalog order, not dict order.
    candidates = [name for name in feature_names if name in set(candidates)]

    # Step 6: stepwise refit on the full cluster data.
    indices = [feature_names.index(name) for name in candidates]
    stepwise = backward_eliminate(
        cluster_design[:, indices],
        cluster_power,
        significance=significance,
        min_features=1,
    )
    selected = tuple(candidates[i] for i in stepwise.selected)
    eliminated = tuple(candidates[i] for i in stepwise.eliminated)

    # The effective threshold is what step 6's eliminations imply: the
    # lowest histogram weight among the survivors.
    effective = min(histogram[name] for name in selected)
    return PooledSelection(
        histogram=histogram,
        initial_threshold=threshold,
        effective_threshold=float(effective),
        candidates=tuple(candidates),
        selected=selected,
        eliminated_in_step6=eliminated,
    )
