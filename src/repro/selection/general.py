"""The cross-platform "general" feature set (Table II, last column).

Section V-C: after building the cluster-specific sets, the paper selects
the features common across models and adds the most common features from
unrepresented categories, yielding one set usable on every platform at a
cost of < 1% DRE.  We reproduce that aggregation: a feature joins the
general set if it was selected on at least half the clusters; then each
Table II category with no representative contributes its most-selected
feature.  Only counters that exist on *every* platform qualify (per-core
and per-disk instances beyond the first do not).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.counters.definitions import CounterCatalog
from repro.selection.algorithm1 import Algorithm1Result


@dataclass(frozen=True)
class GeneralFeatureSet:
    """The cross-platform feature set and its provenance."""

    features: tuple[str, ...]
    vote_counts: dict[str, int]
    category_fills: tuple[str, ...]
    """Features added to cover otherwise-unrepresented categories."""


def _portable_names(catalogs: list[CounterCatalog]) -> set[str]:
    """Counter names present in every platform's catalog."""
    shared = set(catalogs[0].names)
    for catalog in catalogs[1:]:
        shared &= set(catalog.names)
    return shared


def derive_general_set(
    results: list[Algorithm1Result],
    catalogs: list[CounterCatalog],
    min_votes: int | None = None,
) -> GeneralFeatureSet:
    """Aggregate cluster-specific selections into the general set."""
    if not results:
        raise ValueError("need at least one cluster selection result")
    if len(catalogs) != len(results):
        raise ValueError("one catalog per selection result is required")
    portable = _portable_names(catalogs)
    reference = catalogs[0]

    votes: dict[str, int] = {}
    for result in results:
        for name in result.selected:
            if name in portable:
                votes[name] = votes.get(name, 0) + 1

    threshold = (
        max(len(results) // 2, 1) if min_votes is None else min_votes
    )
    core = [name for name, count in votes.items() if count >= threshold]

    # Category fill: every category that appears in ANY cluster-specific
    # set should be represented in the general set.
    categories_needed = set()
    for result in results:
        for name in result.selected:
            if name in portable:
                categories_needed.add(reference.definition(name).category)
    covered = {reference.definition(name).category for name in core}

    fills: list[str] = []
    for category in categories_needed - covered:
        category_votes = {
            name: count
            for name, count in votes.items()
            if reference.definition(name).category is category
        }
        if category_votes:
            best = max(category_votes, key=category_votes.get)
            fills.append(best)

    ordered = [
        name for name in reference.names if name in set(core) | set(fills)
    ]
    return GeneralFeatureSet(
        features=tuple(ordered),
        vote_counts=votes,
        category_fills=tuple(fills),
    )
