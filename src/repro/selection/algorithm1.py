"""Algorithm 1, end to end: from ~250 counters to a cluster feature set.

Orchestrates the six steps over a homogeneous cluster's runs of every
workload:

1. correlation pruning (|r| > 0.95) on the pooled data,
2. co-dependence elimination from counter definitions,
3. per-(machine, workload) L1 selection,
4. per-(machine, workload) stepwise Wald elimination,
5. weighted-occurrence pooling across machines and workloads,
6. cluster-level stepwise refit.

The result carries every intermediate artifact, which the Table II and
Figure 2 experiments render.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.dataset import pool_runs
from repro.cluster.runner import ClusterRun
from repro.selection.codependence import (
    CodependenceElimination,
    eliminate_codependent,
)
from repro.selection.correlation import (
    DEFAULT_CORRELATION_THRESHOLD,
    CorrelationPruning,
    prune_correlated,
)
from repro.selection.machine_selection import (
    MachineSelection,
    select_machine_features,
)
from repro.selection.pooling import (
    DEFAULT_OCCURRENCE_THRESHOLD,
    PooledSelection,
    pool_and_refine,
)


@dataclass(frozen=True)
class SelectionConfig:
    """Tunable knobs of Algorithm 1 (paper defaults)."""

    correlation_threshold: float = DEFAULT_CORRELATION_THRESHOLD
    lasso_max_features: int = 15
    significance: float = 0.05
    occurrence_threshold: float = DEFAULT_OCCURRENCE_THRESHOLD
    max_pooled_rows: int = 12000
    """Correlation/refit computations subsample the pooled data to this
    many rows for tractability (statistically irrelevant at 1 Hz volumes)."""


@dataclass
class Algorithm1Result:
    """Everything Algorithm 1 produced for one platform's cluster."""

    platform_key: str
    config: SelectionConfig
    step1: CorrelationPruning
    step1_survivors: list[str]
    step2: CodependenceElimination
    machine_selections: list[MachineSelection] = field(repr=False)
    pooled: PooledSelection = field(repr=False)

    @property
    def selected(self) -> tuple[str, ...]:
        """The final cluster-specific feature set."""
        return self.pooled.selected

    @property
    def histogram(self) -> dict[str, float]:
        return self.pooled.histogram

    def describe(self) -> str:
        """One paragraph summarizing the funnel through the six steps."""
        n_start = len(self.step1_survivors) + len(self.step1.removed)
        return (
            f"Algorithm 1 on {self.platform_key}: {n_start} counters -> "
            f"step 1 kept {len(self.step1_survivors)} "
            f"(removed {len(self.step1.removed)} correlated) -> "
            f"step 2 kept {len(self.step2.kept)} "
            f"(removed {len(self.step2.removed)} co-dependent) -> "
            f"steps 3-5 pooled {len(self.machine_selections)} "
            f"(machine, workload) selections into "
            f"{len(self.pooled.candidates)} candidates -> "
            f"step 6 selected {len(self.selected)} features "
            f"(effective threshold "
            f"{self.pooled.effective_threshold:.1f})"
        )


def _subsample_rows(
    design: np.ndarray,
    power: np.ndarray,
    max_rows: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    if design.shape[0] <= max_rows:
        return design, power
    rows = rng.choice(design.shape[0], size=max_rows, replace=False)
    rows.sort()
    return design[rows], power[rows]


def run_algorithm1(
    cluster: Cluster,
    runs_by_workload: dict[str, list[ClusterRun]],
    platform_key: str | None = None,
    config: SelectionConfig = SelectionConfig(),
    machine_ids: list[str] | None = None,
) -> Algorithm1Result:
    """Run Algorithm 1 for one platform within a cluster.

    ``platform_key`` defaults to the only platform of a homogeneous
    cluster; for heterogeneous clusters, call once per platform.
    ``machine_ids`` optionally restricts selection to a metered subset of
    the platform's machines (the characterization-phase deployment of
    Section III, where only a few machines carry instrumentation).
    """
    if not runs_by_workload:
        raise ValueError("need runs for at least one workload")
    if platform_key is None:
        if not cluster.is_homogeneous:
            raise ValueError(
                "platform_key is required for a heterogeneous cluster"
            )
        platform_key = cluster.platform_keys[0]
    catalog = cluster.catalog_for(platform_key)
    machines = cluster.machines_of(platform_key)
    if not machines:
        raise ValueError(f"cluster has no {platform_key!r} machines")
    platform_machine_ids = [m.machine_id for m in machines]
    if machine_ids is None:
        machine_ids = platform_machine_ids
    else:
        unknown = set(machine_ids) - set(platform_machine_ids)
        if unknown:
            raise ValueError(
                f"machine_ids not on platform {platform_key!r}: "
                f"{sorted(unknown)}"
            )
    all_names = catalog.names
    rng = np.random.default_rng([cluster.seed, 424242])

    # Pool everything for the steps that look at the whole cluster.
    all_runs = [run for runs in runs_by_workload.values() for run in runs]
    full = pool_runs(all_runs, all_names, machine_ids=machine_ids)
    pooled_design, pooled_power = _subsample_rows(
        full.design, full.power, config.max_pooled_rows, rng
    )

    # Step 1: correlation pruning.
    step1 = prune_correlated(pooled_design, config.correlation_threshold)
    step1_survivors = [all_names[i] for i in step1.kept]

    # Step 2: co-dependence elimination from definitions.
    step2 = eliminate_codependent(step1_survivors, catalog)
    surviving = list(step2.kept)
    survivor_indices = [catalog.index_of(name) for name in surviving]

    # Steps 3-4 per (machine, workload).
    machine_selections: list[MachineSelection] = []
    for workload_name, runs in runs_by_workload.items():
        for machine_id in machine_ids:
            per_machine = pool_runs(
                runs, all_names, machine_ids=[machine_id]
            )
            design = per_machine.design[:, survivor_indices]
            machine_selections.append(
                select_machine_features(
                    design=design,
                    power=per_machine.power,
                    feature_names=surviving,
                    machine_id=machine_id,
                    workload_name=workload_name,
                    lasso_max_features=config.lasso_max_features,
                    significance=config.significance,
                )
            )

    # Steps 5-6 on the full pooled cluster data.
    cluster_design = pooled_design[:, survivor_indices]
    pooled = pool_and_refine(
        selections=machine_selections,
        cluster_design=cluster_design,
        cluster_power=pooled_power,
        feature_names=surviving,
        threshold=config.occurrence_threshold,
        significance=config.significance,
    )

    return Algorithm1Result(
        platform_key=platform_key,
        config=config,
        step1=step1,
        step1_survivors=step1_survivors,
        step2=step2,
        machine_selections=machine_selections,
        pooled=pooled,
    )
