"""ETW/Perfmon-style 1 Hz telemetry collection + engine run telemetry."""

from repro.telemetry.engine_stats import EngineTelemetry, TaskRecord
from repro.telemetry.perfmon import PerfmonLog
from repro.telemetry.sampler import sample_machine_run

__all__ = [
    "EngineTelemetry",
    "PerfmonLog",
    "TaskRecord",
    "sample_machine_run",
]
