"""ETW/Perfmon-style 1 Hz telemetry collection."""

from repro.telemetry.perfmon import PerfmonLog
from repro.telemetry.sampler import sample_machine_run

__all__ = ["PerfmonLog", "sample_machine_run"]
