"""The ETW-like sampling pipeline for one machine-run.

``sample_machine_run`` plays the role of the paper's measurement stack:
the machine executes a workload (latent activity), ETW derives the OS
counters, the WattsUp meter reads wall power, and both land in a 1 Hz
``PerfmonLog``.
"""

from __future__ import annotations

import numpy as np

from repro.activity import ActivityTrace
from repro.counters.definitions import CounterCatalog
from repro.counters.derivation import derive_counters
from repro.platforms.machine import SimulatedMachine
from repro.powermeter.wattsup import WattsUpPro
from repro.telemetry.perfmon import PerfmonLog


def sample_machine_run(
    machine: SimulatedMachine,
    catalog: CounterCatalog,
    activity: ActivityTrace,
    meter: WattsUpPro,
    machine_seed: int,
    run_index: int,
) -> PerfmonLog:
    """Produce the observed 1 Hz log for one machine over one run."""
    if catalog.spec.key != machine.spec.key:
        raise ValueError(
            f"catalog is for platform {catalog.spec.key!r} but machine is "
            f"{machine.spec.key!r}"
        )
    counters = derive_counters(
        catalog, activity, machine_seed=machine_seed, run_index=run_index
    )
    power_rng = np.random.default_rng([machine_seed, run_index, 65537])
    true_power = machine.true_power(activity, rng=power_rng)
    meter_rng = np.random.default_rng([machine_seed, run_index, 65539])
    metered = meter.sample(true_power, meter_rng)
    return PerfmonLog(
        machine_id=machine.machine_id,
        counter_names=catalog.names,
        counters=counters,
        power_w=metered,
    )
