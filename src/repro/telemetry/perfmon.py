"""Perfmon-style logs: per-machine counter + power time series.

A ``PerfmonLog`` is what the paper's software stack records for one
machine over one workload run: every selected OS counter sampled at 1 Hz,
plus the WattsUp reading appended as one more "counter" (Section III-B
notes the meter readings are logged through the same Perfmon pipeline).
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass

import numpy as np


@dataclass
class PerfmonLog:
    """One machine-run worth of 1 Hz samples."""

    machine_id: str
    counter_names: list[str]
    counters: np.ndarray
    """(T, n_counters) observed counter matrix."""

    power_w: np.ndarray
    """(T,) metered wall power."""

    def __post_init__(self):
        self.counters = np.asarray(self.counters, dtype=float)
        self.power_w = np.asarray(self.power_w, dtype=float)
        if self.counters.ndim != 2:
            raise ValueError("counters must be (T, n_counters)")
        if self.counters.shape[1] != len(self.counter_names):
            raise ValueError(
                f"{self.counters.shape[1]} counter columns but "
                f"{len(self.counter_names)} names"
            )
        if self.power_w.shape != (self.counters.shape[0],):
            raise ValueError("power series length must match counter rows")

    @property
    def n_seconds(self) -> int:
        return self.counters.shape[0]

    @property
    def n_counters(self) -> int:
        return self.counters.shape[1]

    def column(self, counter_name: str) -> np.ndarray:
        """One counter's series by name."""
        try:
            index = self.counter_names.index(counter_name)
        except ValueError:
            raise KeyError(f"unknown counter {counter_name!r}")
        return self.counters[:, index]

    def select(self, counter_names: list[str]) -> np.ndarray:
        """(T, k) matrix of the named counters, in the given order."""
        indices = []
        for name in counter_names:
            try:
                indices.append(self.counter_names.index(name))
            except ValueError:
                raise KeyError(f"unknown counter {name!r}")
        return self.counters[:, indices]

    def to_csv(self, max_rows: int | None = None) -> str:
        """Perfmon-like CSV export (power column last)."""
        buffer = io.StringIO()
        header = ",".join(
            ['"Time"']
            + [f'"{name}"' for name in self.counter_names]
            + ['"Power (W)"']
        )
        buffer.write(header + "\n")
        n_rows = self.n_seconds if max_rows is None else min(max_rows, self.n_seconds)
        for t in range(n_rows):
            row = [str(t)] + [
                f"{value:.10g}" for value in self.counters[t]
            ] + [f"{self.power_w[t]:.1f}"]
            buffer.write(",".join(row) + "\n")
        return buffer.getvalue()

    @classmethod
    def from_csv(cls, text: str, machine_id: str = "imported") -> "PerfmonLog":
        """Parse a log previously exported with :meth:`to_csv`.

        Supports archival round-trips: logs collected on one host can be
        analyzed elsewhere, as the paper's Perfmon capture files were.
        """
        lines = [line for line in text.strip().split("\n") if line]
        if len(lines) < 2:
            raise ValueError("CSV must contain a header and at least one row")
        header = next(_read_csv_rows(lines[:1]))
        if header[0] != "Time" or header[-1] != "Power (W)":
            raise ValueError(
                "header must start with 'Time' and end with 'Power (W)'"
            )
        counter_names = header[1:-1]
        counters = []
        power = []
        for row in _read_csv_rows(lines[1:]):
            if len(row) != len(header):
                raise ValueError(
                    f"row has {len(row)} cells, header has {len(header)}"
                )
            counters.append([float(cell) for cell in row[1:-1]])
            power.append(float(row[-1]))
        return cls(
            machine_id=machine_id,
            counter_names=list(counter_names),
            counters=np.asarray(counters, dtype=float),
            power_w=np.asarray(power, dtype=float),
        )


def _read_csv_rows(lines):
    """Minimal CSV reader handling the quoted-name convention we emit."""
    reader = csv.reader(lines)
    yield from reader
