"""Per-task telemetry for the experiment engine.

The executor records one :class:`TaskRecord` per task — how long it took,
whether it was computed, served from the artifact cache, failed, timed
out, or was skipped behind a failed dependency, how many retries it
needed, and where it ran — and :class:`EngineTelemetry` aggregates them
into the hit-rate, retry and timing summary the CLI prints after a sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

OUTCOME_COMPUTED = "computed"
OUTCOME_CACHE_HIT = "cache-hit"
OUTCOME_FAILED = "failed"
OUTCOME_TIMEOUT = "timeout"
OUTCOME_SKIPPED = "skipped"

#: Outcomes that mean the task produced a result.
SUCCESS_OUTCOMES = frozenset({OUTCOME_COMPUTED, OUTCOME_CACHE_HIT})


@dataclass(frozen=True)
class TaskRecord:
    """What happened to one task."""

    key: str
    fn: str
    seconds: float
    outcome: str
    worker: str
    """``inline`` for in-process execution, ``pool`` for a pool worker."""

    retries: int = 0
    """Failed attempts before this outcome (0 = first try)."""


@dataclass
class EngineTelemetry:
    """Accumulated task records for one engine run (or several)."""

    records: list[TaskRecord] = field(default_factory=list)
    wall_seconds: float = 0.0

    def record(
        self,
        key: str,
        fn: str,
        seconds: float,
        outcome: str,
        worker: str,
        retries: int = 0,
    ) -> None:
        self.records.append(
            TaskRecord(
                key=key,
                fn=fn,
                seconds=seconds,
                outcome=outcome,
                worker=worker,
                retries=retries,
            )
        )

    # -- aggregates ----------------------------------------------------
    @property
    def n_tasks(self) -> int:
        return len(self.records)

    def _count(self, outcome: str) -> int:
        return sum(1 for r in self.records if r.outcome == outcome)

    @property
    def n_cache_hits(self) -> int:
        return self._count(OUTCOME_CACHE_HIT)

    @property
    def n_computed(self) -> int:
        return self._count(OUTCOME_COMPUTED)

    @property
    def n_failed(self) -> int:
        return self._count(OUTCOME_FAILED)

    @property
    def n_timeouts(self) -> int:
        return self._count(OUTCOME_TIMEOUT)

    @property
    def n_skipped(self) -> int:
        return self._count(OUTCOME_SKIPPED)

    @property
    def n_retried_tasks(self) -> int:
        """Tasks that needed at least one retry (whatever the outcome)."""
        return sum(1 for r in self.records if r.retries > 0)

    @property
    def total_retries(self) -> int:
        return sum(r.retries for r in self.records)

    @property
    def hit_rate(self) -> float:
        """Fraction of tasks served from the cache (0.0 with no tasks)."""
        if not self.records:
            return 0.0
        return self.n_cache_hits / len(self.records)

    @property
    def busy_seconds(self) -> float:
        """Total task time (sums across workers, so can exceed wall)."""
        return float(sum(r.seconds for r in self.records))

    def merge(self, other: "EngineTelemetry") -> None:
        """Fold another engine run's records into this accumulator.

        Campaign drivers run one task graph per GA generation; merging
        each generation's telemetry yields the campaign-level rollup
        (total tasks, overall hit rate, busy vs wall seconds).
        """
        self.records.extend(other.records)
        self.wall_seconds += other.wall_seconds

    def to_summary(self) -> dict:
        """JSON-safe rollup for campaign reports and ``--telemetry``."""
        return {
            "tasks": self.n_tasks,
            "computed": self.n_computed,
            "cache_hits": self.n_cache_hits,
            "hit_rate": self.hit_rate,
            "failed": self.n_failed,
            "timeouts": self.n_timeouts,
            "skipped": self.n_skipped,
            "retries": self.total_retries,
            "busy_seconds": self.busy_seconds,
            "wall_seconds": self.wall_seconds,
        }

    def slowest(self, n: int = 5) -> list[TaskRecord]:
        return sorted(
            self.records, key=lambda r: r.seconds, reverse=True
        )[:n]

    def render(self) -> str:
        """A short, human-readable run summary."""
        lines = [
            f"engine: {self.n_tasks} tasks "
            f"({self.n_computed} computed, {self.n_cache_hits} cache hits, "
            f"hit rate {self.hit_rate:.0%})",
            f"  task time {self.busy_seconds:.2f}s, "
            f"wall {self.wall_seconds:.2f}s",
        ]
        if self.n_failed or self.n_timeouts or self.n_skipped:
            lines.append(
                f"  {self.n_failed} failed, {self.n_timeouts} timed out, "
                f"{self.n_skipped} skipped"
            )
        if self.total_retries:
            lines.append(
                f"  {self.total_retries} retries across "
                f"{self.n_retried_tasks} tasks"
            )
        for record in self.slowest(3):
            lines.append(
                f"  {record.seconds:7.3f}s  {record.outcome:<9}  "
                f"{record.key}"
            )
        return "\n".join(lines)
