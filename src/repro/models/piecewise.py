"""The piecewise-linear power model (Eq. 2): MARS with additive hinges.

Hinge basis functions let one feature (e.g. CPU utilization) contribute
different watts-per-unit in different operating regions, while the model
stays continuous — the paper's key upgrade over plain linear models for
DVFS platforms.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import PowerModel
from repro.regression.mars import MARSModel, fit_mars


class PiecewiseLinearPowerModel(PowerModel):
    """MARS restricted to degree-1 (additive) hinge bases."""

    code = "P"

    def __init__(
        self,
        feature_names: list[str],
        max_terms: int = 17,
        n_knot_candidates: int = 12,
        penalty: float = 3.0,
    ):
        super().__init__(feature_names)
        self.max_terms = max_terms
        self.n_knot_candidates = n_knot_candidates
        self.penalty = penalty
        self._model: MARSModel | None = None

    _max_degree = 1

    def _fit(self, design: np.ndarray, power: np.ndarray) -> None:
        # Online deployments clamp inputs to the training envelope: hinge
        # (and especially hinge-product) bases extrapolate without bound,
        # so a counter excursion beyond anything seen in training must not
        # produce a runaway power prediction.
        self._feature_low = design.min(axis=0)
        self._feature_high = design.max(axis=0)
        # Output envelope: hinge-product surfaces can still misbehave in
        # corners of the feature box the training manifold never visited,
        # so predictions are clamped to the observed power range plus a
        # margin — a power model must not predict watts the machine has
        # never drawn.
        span = float(power.max() - power.min())
        self._power_low = float(power.min()) - 0.3 * span
        self._power_high = float(power.max()) + 0.3 * span
        # Small training pools cannot support many hinge terms without
        # overfitting the one run they came from; scale capacity with data.
        effective_max_terms = min(
            self.max_terms, max(7, design.shape[0] // 25)
        )
        self._model = fit_mars(
            design,
            power,
            max_degree=self._max_degree,
            max_terms=effective_max_terms,
            n_knot_candidates=self.n_knot_candidates,
            penalty=self.penalty,
        )

    def _predict(self, design: np.ndarray) -> np.ndarray:
        clamped = np.clip(design, self._feature_low, self._feature_high)
        prediction = self._model.predict(clamped)
        return np.clip(prediction, self._power_low, self._power_high)

    @property
    def n_parameters(self) -> int:
        if self._model is None:
            return 0
        return int(self._model.coefficients.size + len(self._model.knots))

    @property
    def mars_model(self) -> MARSModel:
        if self._model is None:
            raise RuntimeError("model is not fitted")
        return self._model

    def describe(self) -> str:
        if self._model is None:
            return f"piecewise({self.n_features} features, unfitted)"
        return "piecewise: " + self._model.describe(self.feature_names)

