"""The four power-model families (Eqs. 1-4), feature sets and composition."""

from repro.models.base import PowerModel
from repro.models.composition import (
    ClusterPowerModel,
    PlatformModel,
    compose_cluster_model,
)
from repro.models.featuresets import (
    CPU_UTILIZATION_COUNTER,
    FREQUENCY_COUNTER,
    FeatureSet,
    cluster_plus_lagged_frequency,
    cluster_set,
    cpu_only_set,
    general_set,
    pool_features,
)
from repro.models.linear import LinearPowerModel
from repro.models.persistence import (
    load_platform_model,
    model_from_payload,
    model_to_payload,
    platform_model_from_payload,
    platform_model_to_payload,
    save_platform_model,
)
from repro.models.piecewise import PiecewiseLinearPowerModel
from repro.models.quadratic import QuadraticPowerModel
from repro.models.registry import (
    MODEL_CODES,
    MODEL_NAMES,
    build_model,
    supports_feature_set,
)
from repro.models.switching import SwitchingPowerModel

__all__ = [
    "CPU_UTILIZATION_COUNTER",
    "ClusterPowerModel",
    "FREQUENCY_COUNTER",
    "FeatureSet",
    "LinearPowerModel",
    "MODEL_CODES",
    "MODEL_NAMES",
    "PiecewiseLinearPowerModel",
    "PlatformModel",
    "PowerModel",
    "QuadraticPowerModel",
    "SwitchingPowerModel",
    "build_model",
    "cluster_plus_lagged_frequency",
    "cluster_set",
    "compose_cluster_model",
    "cpu_only_set",
    "general_set",
    "load_platform_model",
    "model_from_payload",
    "model_to_payload",
    "platform_model_from_payload",
    "platform_model_to_payload",
    "pool_features",
    "save_platform_model",
    "supports_feature_set",
]
