"""The baseline linear power model (Eq. 1).

f() = a0 + sum_i a_i * x_i — the form most prior work used, and the
paper's baseline for quantifying what nonlinearity buys.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import PowerModel
from repro.regression.ols import OLSFit, fit_ols


class LinearPowerModel(PowerModel):
    """Ordinary least-squares linear model over the feature set."""

    code = "L"

    def __init__(self, feature_names: list[str]):
        super().__init__(feature_names)
        self._fit_result: OLSFit | None = None

    def _fit(self, design: np.ndarray, power: np.ndarray) -> None:
        self._fit_result = fit_ols(design, power)

    def _predict(self, design: np.ndarray) -> np.ndarray:
        return self._fit_result.predict(design)

    @property
    def n_parameters(self) -> int:
        if self._fit_result is None:
            return self.n_features + 1
        return int(self._fit_result.coefficients.size)

    @property
    def coefficients(self) -> np.ndarray:
        if self._fit_result is None:
            raise RuntimeError("model is not fitted")
        return self._fit_result.coefficients

    def describe(self) -> str:
        if self._fit_result is None:
            return f"linear({self.n_features} features, unfitted)"
        terms = [f"{self._fit_result.intercept:.3g}"]
        for name, slope in zip(self.feature_names, self._fit_result.slopes):
            terms.append(f"{slope:+.3g}*[{name}]")
        return "linear: " + " ".join(terms)
