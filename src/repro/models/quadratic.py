"""The quadratic power model (Eq. 3): MARS with degree-2 interactions."""

from __future__ import annotations

from repro.models.piecewise import PiecewiseLinearPowerModel


class QuadraticPowerModel(PiecewiseLinearPowerModel):
    """The quadratic power model (Eq. 3): MARS with degree-2 interactions.

    Basis functions may be products of two hinges, capturing joint effects
    such as utilization x frequency — the term that physically drives CPU
    power.  This is the technique that wins most Table IV cells.
    """

    code = "Q"
    _max_degree = 2

    def describe(self) -> str:
        if self._model is None:
            return f"quadratic({self.n_features} features, unfitted)"
        return "quadratic: " + self._model.describe(self.feature_names)
