"""Cluster power model composition (Eq. 5).

Cluster power is the sum of per-machine predictions from the pooled
machine-level model.  Because Algorithm 1 and the pooled fit already
absorbed machine-to-machine variation, the same model applies to every
machine of a platform; a heterogeneous cluster simply applies each
platform's model to its own machines (Section V-B).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.arraysan import contracted
from repro.cluster.runner import ClusterRun
from repro.models.base import PowerModel
from repro.models.featuresets import FeatureSet


@dataclass(frozen=True)
class PlatformModel:
    """A fitted machine model plus the feature set that feeds it."""

    platform_key: str
    model: PowerModel
    feature_set: FeatureSet

    @contracted
    def predict_log(self, log) -> np.ndarray:
        """Predicted power series for one machine's Perfmon log."""
        return self.model.predict(self.feature_set.extract(log))


@dataclass
class ClusterPowerModel:
    """Eq. 5: cluster power = sum of machine model predictions."""

    platform_models: dict[str, PlatformModel]
    machine_platforms: dict[str, str]
    """machine_id -> platform key."""

    def __post_init__(self):
        missing = {
            platform
            for platform in self.machine_platforms.values()
            if platform not in self.platform_models
        }
        if missing:
            raise ValueError(
                f"no platform model for platform(s): {sorted(missing)}"
            )

    def predict_machine(self, run: ClusterRun, machine_id: str) -> np.ndarray:
        """Predicted power series for one machine in a run."""
        try:
            platform = self.machine_platforms[machine_id]
        except KeyError:
            raise KeyError(f"unknown machine {machine_id!r}")
        log = run.logs[machine_id]
        return self.platform_models[platform].predict_log(log)

    def predict_cluster(self, run: ClusterRun) -> np.ndarray:
        """(T,) predicted total cluster power for a run."""
        predictions = [
            self.predict_machine(run, machine_id)
            for machine_id in run.machine_ids
            if machine_id in self.machine_platforms
        ]
        if not predictions:
            raise ValueError("run contains no machines known to this model")
        return np.sum(predictions, axis=0)


def compose_cluster_model(
    platform_models: list[PlatformModel],
    machine_platforms: dict[str, str],
) -> ClusterPowerModel:
    """Assemble a cluster model from per-platform machine models."""
    return ClusterPowerModel(
        platform_models={pm.platform_key: pm for pm in platform_models},
        machine_platforms=dict(machine_platforms),
    )
