"""The switching power model (Eq. 4): one linear model per P-state.

CPU frequency acts as the indicator: samples are bucketed by the observed
frequency counter, and each bucket (P-state) gets its own linear model.
Unlike the piecewise model — whose knots partition only one feature's
axis — the switch partitions *all* features at once, which makes the
model more rigid, possibly discontinuous at transitions, and parameter-
hungry (coefficients for every feature at every state).
"""

from __future__ import annotations

import numpy as np

from repro.models.base import PowerModel
from repro.regression.ols import OLSFit, fit_ols

_MIN_BUCKET_ROWS_FACTOR = 10
"""A bucket must hold at least this many rows per coefficient to get its
own model; smaller buckets fall back to the global linear model.  State-
local fits see a narrow slice of each feature's range, so they need a
comfortable margin to stay stable."""


class SwitchingPowerModel(PowerModel):
    """Frequency-indexed family of linear models."""

    code = "S"

    def __init__(
        self,
        feature_names: list[str],
        switch_feature: str,
        max_states: int = 8,
    ):
        super().__init__(feature_names)
        if switch_feature not in feature_names:
            raise ValueError(
                f"switch feature {switch_feature!r} must be one of the "
                "model's features"
            )
        if len(feature_names) < 2:
            raise ValueError(
                "the switching model needs at least one feature besides "
                "the frequency indicator"
            )
        self.switch_feature = switch_feature
        self.switch_index = feature_names.index(switch_feature)
        self.max_states = max_states
        self._state_values: np.ndarray | None = None
        self._state_fits: dict[int, OLSFit] = {}
        self._global_fit: OLSFit | None = None

    # ------------------------------------------------------------------
    def _quantize_states(self, frequencies: np.ndarray) -> np.ndarray:
        """Cluster observed frequency readings into P-state levels.

        Readings carry a little sensor noise, so exact uniqueness over-
        fragments; we round to a resolution coarse enough to merge noise
        but fine enough to separate real states.
        """
        finite = frequencies[np.isfinite(frequencies)]
        if finite.size == 0:
            raise ValueError("switch feature has no finite values")
        span = float(finite.max() - finite.min())
        resolution = max(span / 20.0, 1e-9)
        levels = np.unique(np.round(finite / resolution))
        if levels.size > self.max_states:
            # Quantile-based merge down to max_states levels.
            quantiles = np.linspace(0, 1, self.max_states + 1)[1:-1]
            edges = np.quantile(finite, quantiles)
            levels = np.unique(
                np.searchsorted(edges, finite)
            ).astype(float)
            self._edges = edges
            return levels
        self._edges = None
        self._resolution = resolution
        return levels

    def _assign_states(self, frequencies: np.ndarray) -> np.ndarray:
        if self._edges is not None:
            return np.searchsorted(self._edges, frequencies).astype(float)
        return np.round(frequencies / self._resolution)

    def _fit(self, design: np.ndarray, power: np.ndarray) -> None:
        # State-local linear fits extrapolate badly outside the narrow
        # feature slice they saw; clamp prediction inputs to the training
        # envelope, as online deployments do.
        self._feature_low = design.min(axis=0)
        self._feature_high = design.max(axis=0)
        span = float(power.max() - power.min())
        self._power_low = float(power.min()) - 0.3 * span
        self._power_high = float(power.max()) + 0.3 * span
        frequencies = design[:, self.switch_index]
        self._quantize_states(frequencies)
        states = self._assign_states(frequencies)
        other = [i for i in range(self.n_features) if i != self.switch_index]
        self._other_indices = other

        self._global_fit = fit_ols(design, power)
        self._state_fits = {}
        self._state_envelopes = {}
        min_rows = _MIN_BUCKET_ROWS_FACTOR * (len(other) + 1)
        self._state_values = np.unique(states)
        for state in self._state_values:
            mask = states == state
            if int(mask.sum()) < min_rows:
                continue  # fall back to the global model for this state
            bucket = design[mask][:, other]
            self._state_fits[int(state)] = fit_ols(bucket, power[mask])
            # A state-local fit is only trustworthy inside the feature
            # slice it saw; record that slice for prediction-time clamping.
            self._state_envelopes[int(state)] = (
                bucket.min(axis=0),
                bucket.max(axis=0),
            )

    def _predict(self, design: np.ndarray) -> np.ndarray:
        design = np.clip(design, self._feature_low, self._feature_high)
        frequencies = design[:, self.switch_index]
        states = self._assign_states(frequencies)
        prediction = self._global_fit.predict(design)
        for state, fit in self._state_fits.items():
            mask = states == state
            if mask.any():
                low, high = self._state_envelopes[state]
                bucket = np.clip(
                    design[mask][:, self._other_indices], low, high
                )
                prediction[mask] = fit.predict(bucket)
        return np.clip(prediction, self._power_low, self._power_high)

    @property
    def n_states(self) -> int:
        return len(self._state_fits)

    @property
    def n_parameters(self) -> int:
        if self._global_fit is None:
            return 0
        per_state = sum(
            fit.coefficients.size for fit in self._state_fits.values()
        )
        return int(per_state + self._global_fit.coefficients.size)

    def describe(self) -> str:
        if self._global_fit is None:
            return f"switching({self.n_features} features, unfitted)"
        return (
            f"switching on [{self.switch_feature}]: {self.n_states} "
            f"state-specific linear models + global fallback"
        )
