"""Feature sets: which counters feed a model, with optional lagged terms.

The paper evaluates four families of feature sets per cluster:

* ``U``  — CPU utilization only (the prior-work strawman),
* ``C``  — the cluster-specific set from Algorithm 1,
* ``CP`` — the cluster set plus the previous second's frequency,
  MHz(t-1) (the 'QCP' label of Table IV),
* ``G``  — the cross-platform general set.

A ``FeatureSet`` knows how to extract its design matrix from a
``PerfmonLog``; lagged counters are shifted *within* each machine-run so
samples never leak across run boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.runner import ClusterRun
from repro.telemetry.perfmon import PerfmonLog

CPU_UTILIZATION_COUNTER = r"\Processor(_Total)\% Processor Time"
FREQUENCY_COUNTER = r"\Processor Performance(0)\Frequency MHz"


@dataclass(frozen=True)
class FeatureSet:
    """A named list of counters (plus optional one-second lags)."""

    name: str
    counters: tuple[str, ...]
    lagged_counters: tuple[str, ...] = ()

    def __post_init__(self):
        if not self.counters and not self.lagged_counters:
            raise ValueError("a feature set needs at least one counter")
        duplicates = set(self.counters) & {
            f"{name} (t-1)" for name in self.lagged_counters
        }
        if duplicates:
            raise ValueError(f"duplicate feature names: {duplicates}")

    @property
    def feature_names(self) -> list[str]:
        return list(self.counters) + [
            f"{name} (t-1)" for name in self.lagged_counters
        ]

    @property
    def n_features(self) -> int:
        return len(self.counters) + len(self.lagged_counters)

    def extract(self, log: PerfmonLog) -> np.ndarray:
        """(T, n_features) design matrix for one machine-run."""
        blocks = []
        if self.counters:
            blocks.append(log.select(list(self.counters)))
        for name in self.lagged_counters:
            series = log.column(name)
            lagged = np.concatenate([[series[0]], series[:-1]])
            blocks.append(lagged[:, None])
        return np.hstack(blocks)


def cpu_only_set() -> FeatureSet:
    """The prior-work baseline: utilization alone."""
    return FeatureSet(name="U", counters=(CPU_UTILIZATION_COUNTER,))


def cluster_set(selected: tuple[str, ...] | list[str]) -> FeatureSet:
    """The cluster-specific Algorithm 1 output."""
    return FeatureSet(name="C", counters=tuple(selected))


def cluster_plus_lagged_frequency(
    selected: tuple[str, ...] | list[str],
    frequency_counter: str = FREQUENCY_COUNTER,
) -> FeatureSet:
    """Cluster features + MHz(t-1) (Table IV's 'CP' suffix)."""
    return FeatureSet(
        name="CP",
        counters=tuple(selected),
        lagged_counters=(frequency_counter,),
    )


def general_set(features: tuple[str, ...] | list[str]) -> FeatureSet:
    """The cross-platform general set (Table II, last column)."""
    return FeatureSet(name="G", counters=tuple(features))


def pool_features(
    runs: list[ClusterRun],
    feature_set: FeatureSet,
    machine_ids: list[str] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Pooled (design, power) over runs/machines for a feature set.

    The lag transform is applied per machine-run before stacking, so a
    lagged feature never reads across a run boundary.
    """
    if not runs:
        raise ValueError("need at least one run")
    designs = []
    powers = []
    for run in runs:
        ids = machine_ids if machine_ids is not None else run.machine_ids
        for machine_id in ids:
            log = run.logs[machine_id]
            designs.append(feature_set.extract(log))
            powers.append(log.power_w)
    return np.vstack(designs), np.concatenate(powers)
