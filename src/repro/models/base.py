"""The power-model interface shared by all four modeling techniques."""

from __future__ import annotations

import abc

import numpy as np


class PowerModel(abc.ABC):
    """A machine-level full-system power model.

    A model is constructed unfitted, bound to a list of feature names, and
    learns its parameters from a pooled (design, power) dataset.  All four
    of the paper's techniques (Eqs. 1-4) implement this interface, which is
    what lets the evaluation sweep treat them uniformly.
    """

    #: Short code used in the paper's Table IV labels (L, P, Q, S).
    code: str = "?"

    def __init__(self, feature_names: list[str]) -> None:
        if not feature_names:
            raise ValueError("a power model needs at least one feature")
        self.feature_names = list(feature_names)
        self._fitted = False

    @property
    def n_features(self) -> int:
        return len(self.feature_names)

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def _check_design(self, design: np.ndarray) -> np.ndarray:
        design = np.asarray(design, dtype=float)
        if design.ndim != 2:
            raise ValueError("design must be 2-D")
        if design.shape[1] != self.n_features:
            raise ValueError(
                f"design has {design.shape[1]} columns, model expects "
                f"{self.n_features}"
            )
        return design

    def fit(self, design: np.ndarray, power: np.ndarray) -> "PowerModel":
        """Learn parameters; returns self for chaining."""
        design = self._check_design(design)
        power = np.asarray(power, dtype=float).ravel()
        if power.shape[0] != design.shape[0]:
            raise ValueError("design and power row counts differ")
        self._fit(design, power)
        self._fitted = True
        return self

    def predict(self, design: np.ndarray) -> np.ndarray:
        """Predicted watts for each row of the design matrix."""
        if not self._fitted:
            raise RuntimeError(f"{type(self).__name__} is not fitted")
        design = self._check_design(design)
        return self._predict(design)

    @abc.abstractmethod
    def _fit(self, design: np.ndarray, power: np.ndarray) -> None:
        ...

    @abc.abstractmethod
    def _predict(self, design: np.ndarray) -> np.ndarray:
        ...

    @property
    @abc.abstractmethod
    def n_parameters(self) -> int:
        """Number of fitted parameters (model-complexity axis)."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable summary of the fitted model."""
