"""Model builders keyed by the paper's technique codes (L, P, Q, S)."""

from __future__ import annotations

from typing import Callable

from repro.models.base import PowerModel
from repro.models.featuresets import FREQUENCY_COUNTER, FeatureSet
from repro.models.linear import LinearPowerModel
from repro.models.piecewise import PiecewiseLinearPowerModel
from repro.models.quadratic import QuadraticPowerModel
from repro.models.switching import SwitchingPowerModel

MODEL_CODES: tuple[str, ...] = ("L", "P", "Q", "S")

MODEL_NAMES: dict[str, str] = {
    "L": "linear",
    "P": "piecewise linear",
    "Q": "quadratic",
    "S": "switching",
}


def supports_feature_set(code: str, feature_set: FeatureSet) -> bool:
    """Whether a technique can use a feature set.

    The quadratic and switching models require multiple features (the
    paper's Figures 3-4 note the CPU-only set does not apply to them), and
    switching additionally needs the frequency counter as its indicator.
    """
    if code not in MODEL_CODES:
        raise KeyError(f"unknown model code {code!r}")
    if code in ("Q", "S") and feature_set.n_features < 2:
        return False
    if code == "S" and FREQUENCY_COUNTER not in feature_set.counters:
        return False
    return True


def build_model(code: str, feature_set: FeatureSet) -> PowerModel:
    """Instantiate an unfitted model of the given technique."""
    if not supports_feature_set(code, feature_set):
        raise ValueError(
            f"model {code!r} does not support feature set "
            f"{feature_set.name!r} ({feature_set.n_features} features)"
        )
    names = feature_set.feature_names
    builders: dict[str, Callable[[], PowerModel]] = {
        "L": lambda: LinearPowerModel(names),
        "P": lambda: PiecewiseLinearPowerModel(names),
        "Q": lambda: QuadraticPowerModel(names),
        "S": lambda: SwitchingPowerModel(
            names, switch_feature=FREQUENCY_COUNTER
        ),
    }
    return builders[code]()
