"""Model persistence: serialize fitted power models to plain JSON.

A characterization campaign trains a model once; production hosts only
need its parameters.  These helpers round-trip every model family (and
the wrapping ``PlatformModel``) through a versioned, dependency-free JSON
payload, preserving the deployment clamps (feature and power envelopes).
"""

from __future__ import annotations

import json

import numpy as np

from repro.models.base import PowerModel
from repro.models.composition import PlatformModel
from repro.models.featuresets import FeatureSet
from repro.models.linear import LinearPowerModel
from repro.models.piecewise import PiecewiseLinearPowerModel
from repro.models.quadratic import QuadraticPowerModel
from repro.models.switching import SwitchingPowerModel
from repro.regression.hinge import BasisFunction, Hinge
from repro.regression.mars import MARSModel
from repro.regression.ols import OLSFit

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------

def _ols_payload(fit: OLSFit) -> dict:
    return {"coefficients": fit.coefficients.tolist()}


def _mars_payload(model: MARSModel) -> dict:
    return {
        "max_degree": model.max_degree,
        "coefficients": model.coefficients.tolist(),
        "bases": [
            [
                {"feature": h.feature, "knot": h.knot, "sign": h.sign}
                for h in basis.hinges
            ]
            for basis in model.bases
        ],
    }


def model_to_payload(model: PowerModel) -> dict:
    """Serialize a fitted model into a JSON-safe dict."""
    if not model.is_fitted:
        raise ValueError("only fitted models can be serialized")
    payload: dict = {
        "format_version": FORMAT_VERSION,
        "code": model.code,
        "feature_names": list(model.feature_names),
    }
    if isinstance(model, LinearPowerModel):
        payload["ols"] = _ols_payload(model._fit_result)
    elif isinstance(model, PiecewiseLinearPowerModel):
        # Covers QuadraticPowerModel via inheritance.
        payload["mars"] = _mars_payload(model.mars_model)
        payload["feature_low"] = model._feature_low.tolist()
        payload["feature_high"] = model._feature_high.tolist()
        payload["power_low"] = model._power_low
        payload["power_high"] = model._power_high
    elif isinstance(model, SwitchingPowerModel):
        payload["switch_feature"] = model.switch_feature
        payload["global"] = _ols_payload(model._global_fit)
        payload["feature_low"] = model._feature_low.tolist()
        payload["feature_high"] = model._feature_high.tolist()
        payload["power_low"] = model._power_low
        payload["power_high"] = model._power_high
        payload["edges"] = (
            model._edges.tolist() if model._edges is not None else None
        )
        payload["resolution"] = getattr(model, "_resolution", None)
        payload["states"] = {
            str(state): {
                "ols": _ols_payload(fit),
                "low": model._state_envelopes[state][0].tolist(),
                "high": model._state_envelopes[state][1].tolist(),
            }
            for state, fit in model._state_fits.items()
        }
    else:
        raise TypeError(f"cannot serialize {type(model).__name__}")
    return payload


# ----------------------------------------------------------------------
# Deserialization
# ----------------------------------------------------------------------

def _ols_from_payload(payload: dict) -> OLSFit:
    coefficients = np.asarray(payload["coefficients"], dtype=float)
    placeholder = np.zeros_like(coefficients)
    return OLSFit(
        coefficients=coefficients,
        standard_errors=placeholder,
        p_values=placeholder,
        residual_variance=float("nan"),
        r_squared=float("nan"),
        rank=coefficients.size,
        n_samples=0,
    )


def _mars_from_payload(payload: dict) -> MARSModel:
    bases = tuple(
        BasisFunction(tuple(
            Hinge(
                feature=int(h["feature"]),
                knot=float(h["knot"]),
                sign=int(h["sign"]),
            )
            for h in hinges
        ))
        for hinges in payload["bases"]
    )
    return MARSModel(
        bases=bases,
        coefficients=np.asarray(payload["coefficients"], dtype=float),
        gcv=float("nan"),
        training_rss=float("nan"),
        n_samples=0,
        max_degree=int(payload["max_degree"]),
    )


def model_from_payload(payload: dict) -> PowerModel:
    """Reconstruct a fitted model from :func:`model_to_payload` output."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported payload version {version!r}")
    code = payload["code"]
    names = list(payload["feature_names"])

    if code == "L":
        model = LinearPowerModel(names)
        model._fit_result = _ols_from_payload(payload["ols"])
    elif code in ("P", "Q"):
        model = (
            PiecewiseLinearPowerModel(names)
            if code == "P"
            else QuadraticPowerModel(names)
        )
        model._model = _mars_from_payload(payload["mars"])
        model._feature_low = np.asarray(payload["feature_low"], dtype=float)
        model._feature_high = np.asarray(payload["feature_high"], dtype=float)
        model._power_low = float(payload["power_low"])
        model._power_high = float(payload["power_high"])
    elif code == "S":
        model = SwitchingPowerModel(
            names, switch_feature=payload["switch_feature"]
        )
        model._global_fit = _ols_from_payload(payload["global"])
        model._feature_low = np.asarray(payload["feature_low"], dtype=float)
        model._feature_high = np.asarray(payload["feature_high"], dtype=float)
        model._power_low = float(payload["power_low"])
        model._power_high = float(payload["power_high"])
        model._edges = (
            np.asarray(payload["edges"], dtype=float)
            if payload["edges"] is not None
            else None
        )
        if payload["resolution"] is not None:
            model._resolution = float(payload["resolution"])
        model._other_indices = [
            i for i in range(len(names)) if i != model.switch_index
        ]
        model._state_fits = {}
        model._state_envelopes = {}
        for state_key, state_payload in payload["states"].items():
            state = int(state_key)
            model._state_fits[state] = _ols_from_payload(
                state_payload["ols"]
            )
            model._state_envelopes[state] = (
                np.asarray(state_payload["low"], dtype=float),
                np.asarray(state_payload["high"], dtype=float),
            )
    else:
        raise ValueError(f"unknown model code {code!r}")

    model._fitted = True
    return model


# ----------------------------------------------------------------------
# PlatformModel round-trip + JSON convenience
# ----------------------------------------------------------------------

def platform_model_to_payload(platform_model: PlatformModel) -> dict:
    return {
        "format_version": FORMAT_VERSION,
        "platform_key": platform_model.platform_key,
        "feature_set": {
            "name": platform_model.feature_set.name,
            "counters": list(platform_model.feature_set.counters),
            "lagged_counters": list(
                platform_model.feature_set.lagged_counters
            ),
        },
        "model": model_to_payload(platform_model.model),
    }


def platform_model_from_payload(payload: dict) -> PlatformModel:
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported payload version {version!r}")
    feature_set = FeatureSet(
        name=payload["feature_set"]["name"],
        counters=tuple(payload["feature_set"]["counters"]),
        lagged_counters=tuple(payload["feature_set"]["lagged_counters"]),
    )
    return PlatformModel(
        platform_key=payload["platform_key"],
        model=model_from_payload(payload["model"]),
        feature_set=feature_set,
    )


def save_platform_model(platform_model: PlatformModel, path) -> None:
    """Write a platform model to a JSON file (atomically, like the
    engine's artifact cache, so a crash never leaves a torn model)."""
    from repro.engine.cache import atomic_write_json

    atomic_write_json(path, platform_model_to_payload(platform_model))


def load_platform_model(path) -> PlatformModel:
    """Read a platform model from a JSON file."""
    with open(path) as handle:
        return platform_model_from_payload(json.load(handle))
