"""WattsUp? Pro power meter simulation.

The paper instruments every machine with a WattsUp Pro reading wall power
at 1 Hz over USB, with a rated accuracy of 1.5% (Section III-B).  The
simulated meter applies:

* a per-meter calibration gain (each physical meter reads consistently a
  little high or low — the paper verified calibration and observed
  machine-to-machine differences),
* per-sample white noise within the accuracy budget, and
* 0.1 W display quantization, as on the real device.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

METER_ACCURACY = 0.015
"""Rated full-scale accuracy of the WattsUp Pro."""

QUANTIZATION_W = 0.1
"""Display/readout resolution in watts."""


@dataclass(frozen=True)
class WattsUpPro:
    """One physical meter with its own calibration error."""

    gain: float
    sample_noise_frac: float = 0.004

    @classmethod
    def build(cls, meter_index: int, seed: int) -> "WattsUpPro":
        """Deterministically manufacture meter ``meter_index``.

        The calibration gain is drawn within the rated +/-1.5% band.
        """
        rng = np.random.default_rng([seed, 7919, meter_index])
        gain = 1.0 + float(
            np.clip(
                rng.normal(0.0, METER_ACCURACY / 4),
                -METER_ACCURACY,
                METER_ACCURACY,
            )
        )
        return cls(gain=gain)

    def sample(
        self, true_power_w: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """1 Hz meter readings for a true power series."""
        power = np.asarray(true_power_w, dtype=float)
        if np.any(power < 0):
            raise ValueError("true power must be nonnegative")
        readings = power * self.gain
        readings = readings * (
            1.0 + rng.normal(0.0, self.sample_noise_frac, size=readings.shape)
        )
        return np.round(readings / QUANTIZATION_W) * QUANTIZATION_W
