"""Simulated WattsUp? Pro wall-power meters."""

from repro.powermeter.wattsup import METER_ACCURACY, QUANTIZATION_W, WattsUpPro

__all__ = ["METER_ACCURACY", "QUANTIZATION_W", "WattsUpPro"]
