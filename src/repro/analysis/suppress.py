"""Inline suppressions: ``# chaos: ignore[CODE,...] -- justification``.

A suppression silences matching findings *on its own line only* — the
narrowest possible scope, so an ignore cannot quietly swallow a future
finding elsewhere in the file.  Two hygiene rules keep the mechanism
honest:

* ``W001`` — the comment suppressed nothing this run; either the
  defect was fixed (delete the comment) or the code moved (the ignore
  is now a trap),
* ``W002`` — the comment has no ``-- reason`` tail; a suppression is
  an audit record and must say *why* the finding is acceptable.

Codes are matched by prefix, like ``--select``: ``ignore[R601]`` is
exact, ``ignore[R6]`` silences the whole family on that line.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.analysis.findings import Finding

_IGNORE_RE = re.compile(
    r"#\s*chaos:\s*ignore\[(?P<codes>[A-Za-z0-9,\s]+)\]"
    r"(?:\s*--\s*(?P<why>\S.*))?"
)


@dataclass
class Suppression:
    """One inline ignore comment."""

    path: str
    line: int
    codes: Tuple[str, ...]
    justification: str = ""
    used: bool = field(default=False, compare=False)

    def matches(self, finding: Finding) -> bool:
        location = finding.location
        prefix = f"{self.path}:"
        if not location.startswith(prefix):
            return False
        try:
            line = int(location[len(prefix):].split(":")[0])
        except ValueError:
            return False
        if line != self.line:
            return False
        return finding.code.startswith(self.codes)


def parse_suppressions(
    source: str, path: Union[str, Path]
) -> List[Suppression]:
    """Every ``chaos: ignore`` comment in ``source``.

    Comments are found with the tokenizer, not a per-line regex, so a
    ``# chaos: ignore[...]`` inside a string literal is not a
    suppression.
    """
    path = str(path)
    suppressions: List[Suppression] = []
    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(source).readline)
        )
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return []
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _IGNORE_RE.search(token.string)
        if match is None:
            continue
        codes = tuple(
            part.strip().upper()
            for part in match.group("codes").split(",")
            if part.strip()
        )
        if not codes:
            continue
        suppressions.append(Suppression(
            path=path,
            line=token.start[0],
            codes=codes,
            justification=(match.group("why") or "").strip(),
        ))
    return suppressions


def apply_suppressions(
    findings: List[Finding],
    suppressions: List[Suppression],
) -> Tuple[List[Finding], List[Finding]]:
    """(kept findings, W001/W002 hygiene findings).

    Matching findings are dropped and their suppression is marked
    used; every unused suppression yields W001 and every
    justification-free one yields W002.
    """
    by_path: Dict[str, List[Suppression]] = {}
    for suppression in suppressions:
        by_path.setdefault(suppression.path, []).append(suppression)

    kept: List[Finding] = []
    for finding in findings:
        path = finding.location.rsplit(":", 1)[0]
        suppressed = False
        for suppression in by_path.get(path, []):
            if suppression.matches(finding):
                suppression.used = True
                suppressed = True
        if not suppressed:
            kept.append(finding)

    hygiene: List[Finding] = []
    for suppression in suppressions:
        location = f"{suppression.path}:{suppression.line}"
        codes = ",".join(suppression.codes)
        if not suppression.used:
            hygiene.append(Finding(
                "W001",
                f"chaos: ignore[{codes}] suppresses nothing on this "
                "line; delete it or move it back to the finding it "
                "silences",
                location,
                context={"codes": list(suppression.codes)},
            ))
        if not suppression.justification:
            hygiene.append(Finding(
                "W002",
                f"chaos: ignore[{codes}] has no '-- reason' tail; a "
                "suppression must record why the finding is acceptable",
                location,
                context={"codes": list(suppression.codes)},
            ))
    return kept, hygiene
