"""Array shape/dtype/contiguity dataflow analysis (rule family ``N7xx``).

chaos-serve's bit-for-bit online == offline replay gate rests on a
numeric contract nothing else in the lint stack can see: every feature
row, design matrix and power series is **float64**, kernels reduce in a
fixed order over **contiguous** operands, and per-tick hot paths never
allocate.  A silent ``float32`` upcast, a hidden copy from fancy
indexing, or a broadcasting surprise keeps every functional test green
while quietly changing the last ulp — exactly the class of defect that
only shows up when the replay gate diffs online against offline.

This analysis interprets each function over an abstract array lattice:

* **shape** — a tuple of dims, each a concrete size, a *symbolic* name
  (``"n"``, ``"k"`` — the same name unifies across the parameters of one
  contracted call), or ``"?"`` (unknown); unknown rank is ``None``,
* **dtype** — flat, anchored on the ``float64`` kernel contract,
* **contiguity** — C-contiguous / not / unknown.

Values come from numpy constructor calls, the declared
:data:`~repro.analysis.signatures.ARRAY_CONTRACTS` (which also seed the
parameters *inside* a contracted function), and per-module return
summaries computed over the call graph, which make the pass
interprocedural: a helper returning ``np.zeros((3,), dtype=np.float32)``
is caught at the kernel boundary two calls later.

Rules
-----
* ``N701`` — a call argument's dtype contradicts the contracted kernel
  dtype (a ``float32`` row reaching the float64 predict kernel),
* ``N702`` — a Python-level loop over the rows of a rank-2+ array whose
  body calls a vectorized kernel: one call on the full matrix is the
  same math at a fraction of the cost,
* ``N703`` — a hidden copy (fancy indexing, ``concatenate``/
  ``ascontiguousarray``/...) inside a ``@hot_path``-marked function,
* ``N704`` — a shape/broadcast mismatch: wrong rank against a declared
  contract, conflicting symbolic dims within one call, or two concrete
  shapes that cannot broadcast,
* ``N705`` — a fresh allocation (``np.zeros``/``empty``/``arange``/...)
  inside a ``@hot_path``-marked function,
* ``N706`` — an operand known to be non-contiguous reaching an
  einsum/BLAS kernel (the library strides or silently copies; the
  batch-invariant reduction order assumes neither).

The runtime counterpart is :mod:`repro.analysis.arraysan`, which wraps
the same contracted entry points during ``repro replay --sanitize`` and
fails when observed shapes/dtypes contradict these static verdicts.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.analysis.cfg import BasicBlock, FunctionUnit, iter_function_units
from repro.analysis.dataflow import run_forward
from repro.analysis.findings import Finding
from repro.analysis.flowast import EnvAnalysis, header_exprs
from repro.analysis.signatures import (
    ALLOCATOR_CALLS,
    ARRAY_CONTRACTS,
    BLAS_KERNEL_CALLS,
    COPY_CALLS,
    HOT_PATH_DECORATORS,
    KERNEL_DTYPE,
    ArrayContract,
    ArraySpec,
    Dim,
    array_contract,
    call_target,
)

#: Unknown dim: the top of the per-dimension lattice.
DYN = "?"

Shape = Optional[Tuple[Dim, ...]]

ARRAY = "array"
SCALAR = "scalar"
TOP_KIND = "top"

_DTYPE_ATTRS = frozenset({
    "float64", "float32", "float16", "int64", "int32", "int16", "int8",
    "uint8", "uint16", "uint32", "uint64", "bool_", "complex128",
    "complex64",
})

#: Builtin-name shorthand numpy accepts for ``dtype=``.
_DTYPE_BUILTINS = {
    "float": "float64",
    "int": "int64",
    "bool": "bool",
    "complex": "complex128",
}

_FLOATS = frozenset({"float64", "float32", "float16"})
_INTS = frozenset({
    "int64", "int32", "int16", "int8", "uint8", "uint16", "uint32",
    "uint64",
})

#: numpy type-promotion, restricted to the pairs the tree actually
#: mixes.  Unlisted pairs promote to "unknown" — never to a concrete
#: dtype that might be wrong.
_PROMOTE: Dict[Tuple[str, str], str] = {
    ("float64", "float32"): "float64",
    ("float64", "float16"): "float64",
    ("float32", "float16"): "float32",
    ("float64", "int64"): "float64",
    ("float64", "int32"): "float64",
    ("float64", "bool"): "float64",
    ("int64", "int32"): "int64",
    ("int64", "bool"): "int64",
}

#: Elementwise numpy functions that preserve their argument's shape.
_ELEMENTWISE_CALLS = frozenset({
    "sqrt", "abs", "absolute", "exp", "log", "log2", "log10", "clip",
    "maximum", "minimum", "square", "sign", "floor", "ceil", "round",
})

#: Reductions collapsing to a scalar when called without an axis.
_REDUCTION_CALLS = frozenset({
    "mean", "sum", "min", "max", "median", "std", "var", "prod",
    "amin", "amax",
})


@dataclass(frozen=True)
class ArrayValue:
    """One abstract value: maybe-array with shape/dtype/contiguity."""

    kind: str = TOP_KIND
    shape: Shape = None
    dtype: Optional[str] = None
    contiguous: Optional[bool] = None

    @property
    def is_array(self) -> bool:
        return self.kind == ARRAY

    @property
    def rank(self) -> Optional[int]:
        return None if self.shape is None else len(self.shape)


TOP = ArrayValue()


def scalar(dtype: Optional[str] = None) -> ArrayValue:
    return ArrayValue(kind=SCALAR, dtype=dtype)


def array_of(
    shape: Shape,
    dtype: Optional[str] = None,
    contiguous: Optional[bool] = None,
) -> ArrayValue:
    return ArrayValue(
        kind=ARRAY, shape=shape, dtype=dtype, contiguous=contiguous
    )


# ----------------------------------------------------------------------
# Lattice operations
# ----------------------------------------------------------------------

def join_dim(left: Dim, right: Dim) -> Dim:
    return left if left == right else DYN


def join_shape(left: Shape, right: Shape) -> Shape:
    if left is None or right is None:
        return None
    if len(left) != len(right):
        return None
    return tuple(join_dim(a, b) for a, b in zip(left, right))


def _join_opt(left: Optional[object], right: Optional[object]) -> Optional[object]:
    """Flat join where ``None`` is top."""
    return left if left == right else None


def join_value(left: ArrayValue, right: ArrayValue) -> ArrayValue:
    if left == right:
        return left
    if left.kind != right.kind:
        return TOP
    if left.kind == TOP_KIND:
        return TOP
    dtype = _join_opt(left.dtype, right.dtype)
    if left.kind == SCALAR:
        return ArrayValue(kind=SCALAR, dtype=dtype)  # type: ignore[arg-type]
    return ArrayValue(
        kind=ARRAY,
        shape=join_shape(left.shape, right.shape),
        dtype=dtype,  # type: ignore[arg-type]
        contiguous=_join_opt(left.contiguous, right.contiguous),  # type: ignore[arg-type]
    )


def dim_leq(left: Dim, right: Dim) -> bool:
    return right == DYN or left == right


def shape_leq(left: Shape, right: Shape) -> bool:
    if right is None:
        return True
    if left is None:
        return False
    return len(left) == len(right) and all(
        dim_leq(a, b) for a, b in zip(left, right)
    )


def value_leq(left: ArrayValue, right: ArrayValue) -> bool:
    """Partial order of the value lattice (``TOP`` is greatest)."""
    if right.kind == TOP_KIND:
        return True
    if left.kind != right.kind:
        return False
    if right.dtype is not None and left.dtype != right.dtype:
        return False
    if left.kind == SCALAR:
        return True
    if not shape_leq(left.shape, right.shape):
        return False
    if right.contiguous is not None and left.contiguous != right.contiguous:
        return False
    return True


def promote_dtype(
    left: Optional[str], right: Optional[str]
) -> Optional[str]:
    """numpy result dtype of a binary op, or None when unknown."""
    if left is None or right is None:
        return None
    if left == right:
        return left
    return _PROMOTE.get((left, right)) or _PROMOTE.get((right, left))


def broadcast_shapes(left: Shape, right: Shape) -> Tuple[Shape, bool]:
    """(result shape, compatible) under numpy broadcasting.

    Incompatibility is only claimed when two *concrete* dims differ and
    neither is 1; symbolic or unknown dims broadcast to ``"?"``.  A
    conflicting axis still yields a ``"?"`` dim (not an error state):
    the checker reports the conflict, while the abstract result stays
    monotone — refining an operand's shape never produces a *larger*
    result value than the unrefined one did.
    """
    if left is None or right is None:
        return None, True
    rank = max(len(left), len(right))
    padded_l = (1,) * (rank - len(left)) + left
    padded_r = (1,) * (rank - len(right)) + right
    dims: List[Dim] = []
    compatible = True
    for a, b in zip(padded_l, padded_r):
        if a == 1:
            dims.append(b)
        elif b == 1:
            dims.append(a)
        elif a == b:
            dims.append(a)
        elif isinstance(a, int) and isinstance(b, int):
            compatible = False
            dims.append(DYN)
        else:
            dims.append(DYN)
    return tuple(dims), compatible


class Unifier:
    """Binds symbolic contract dims to observed concrete sizes.

    Feeding the same set of (declared, observed) pairs in any order
    produces the same bindings and the same conflict verdict — the
    property suite checks this, because call-site argument order must
    not change what N704 reports.
    """

    def __init__(self) -> None:
        self.bindings: Dict[str, int] = {}
        self.conflicts: List[Tuple[Dim, Dim]] = []

    @property
    def ok(self) -> bool:
        return not self.conflicts

    def observe(self, declared: Dim, observed: Dim) -> None:
        if isinstance(declared, int):
            if isinstance(observed, int) and observed != declared:
                self.conflicts.append((declared, observed))
            return
        if declared == DYN or not isinstance(observed, int):
            return
        bound = self.bindings.get(declared)
        if bound is None:
            self.bindings[declared] = observed
        elif bound != observed:
            self.conflicts.append((declared, observed))
            # Keep the smaller binding so the final state is
            # order-independent even after a conflict.
            self.bindings[declared] = min(bound, observed)

    def observe_shape(self, declared: Shape, observed: Shape) -> None:
        if declared is None or observed is None:
            return
        if len(declared) != len(observed):
            return
        # Dims are observed in a canonical (positional) order; the
        # *calls* to observe_shape may come in any order.
        for d, o in zip(declared, observed):
            self.observe(d, o)

    def instantiate(self, spec_shape: Shape) -> Shape:
        """Replace bound symbols with their size, unbound ones with "?".

        Unbound symbols become ``"?"`` rather than staying symbolic:
        leaving the name in would make a call on *less* precise
        arguments return a *smaller* (rigid-symbol) value than the same
        call on concrete ones, breaking transfer monotonicity.
        """
        if spec_shape is None:
            return None
        return tuple(
            self.bindings.get(dim, DYN) if isinstance(dim, str) else dim
            for dim in spec_shape
        )


def value_from_spec(
    spec: ArraySpec, unifier: Optional[Unifier] = None
) -> ArrayValue:
    """Abstract value a declared :class:`ArraySpec` describes."""
    shape = spec.shape
    if unifier is not None:
        shape = unifier.instantiate(shape)
    return ArrayValue(
        kind=ARRAY,
        shape=shape,
        dtype=spec.dtype,
        contiguous=spec.contiguous,
    )


# ----------------------------------------------------------------------
# Expression helpers
# ----------------------------------------------------------------------

def _dtype_from_expr(expr: Optional[ast.expr]) -> Optional[str]:
    if expr is None:
        return None
    if isinstance(expr, ast.Attribute) and expr.attr in _DTYPE_ATTRS:
        return "bool" if expr.attr == "bool_" else expr.attr
    if isinstance(expr, ast.Name):
        if expr.id in _DTYPE_BUILTINS:
            return _DTYPE_BUILTINS[expr.id]
        if expr.id in _DTYPE_ATTRS:
            return "bool" if expr.id == "bool_" else expr.id
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        name = expr.value
        if name in _DTYPE_ATTRS or name in ("bool",):
            return "bool" if name in ("bool", "bool_") else name
    return None


def _dims_from_expr(expr: ast.expr) -> Shape:
    """Shape literal of an allocator's first argument, or None."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, int):
        return (expr.value,)
    if isinstance(expr, (ast.Tuple, ast.List)):
        dims: List[Dim] = []
        for element in expr.elts:
            if isinstance(element, ast.Constant) and isinstance(
                element.value, int
            ):
                dims.append(element.value)
            else:
                dims.append(DYN)
        return tuple(dims)
    return None


def _keyword(call: ast.Call, name: str) -> Optional[ast.expr]:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def _nested_list_shape(expr: ast.expr) -> Shape:
    """Shape of a (possibly nested) list/tuple literal of scalars.

    Only literal structure counts: a name inside the list could itself
    be a sequence (``np.asarray([row])`` is rank 2 when ``row`` is a
    list), so anything but constants and nested literals stays unknown.
    """
    if not isinstance(expr, (ast.List, ast.Tuple)):
        return None
    if not expr.elts:
        return (0,)
    if all(isinstance(e, (ast.List, ast.Tuple)) for e in expr.elts):
        inner_shapes = {_nested_list_shape(e) for e in expr.elts}
        if len(inner_shapes) == 1:
            inner = inner_shapes.pop()
            if inner is not None:
                return (len(expr.elts),) + inner
        return (len(expr.elts), DYN)
    if all(isinstance(e, ast.Constant) for e in expr.elts):
        return (len(expr.elts),)
    return None


def _hot_path_decorated(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    for decorator in getattr(node, "decorator_list", []):
        expr = decorator.func if isinstance(decorator, ast.Call) else decorator
        target = call_target(expr)
        if target in HOT_PATH_DECORATORS:
            return True
    return False


# ----------------------------------------------------------------------
# The dataflow analysis
# ----------------------------------------------------------------------

class ShapeAnalysis(EnvAnalysis):
    """Forward shape/dtype/contiguity inference over one function."""

    def __init__(
        self,
        unit: FunctionUnit,
        summaries: Optional[Dict[str, ArrayValue]] = None,
    ) -> None:
        super().__init__(unit)
        self.summaries = summaries or {}
        name = unit.qualname.rsplit(".", 1)[-1].lstrip("_")
        self.contract: Optional[ArrayContract] = ARRAY_CONTRACTS.get(name)

    # -- value lattice ---------------------------------------------------

    def default_value(self) -> ArrayValue:
        return TOP

    def join_value(self, left: ArrayValue, right: ArrayValue) -> ArrayValue:
        return join_value(left, right)

    def seed_param(self, name: str) -> ArrayValue:
        if self.contract is not None:
            for param_name, spec in self.contract.params:
                if param_name == name and spec is not None:
                    return value_from_spec(spec)
        return TOP

    def element_of(self, value: ArrayValue, stmt: ast.stmt) -> ArrayValue:
        del stmt
        if not value.is_array:
            return TOP
        if value.shape is None:
            return ArrayValue(kind=ARRAY, dtype=value.dtype)
        if len(value.shape) == 1:
            return scalar(value.dtype)
        return array_of(value.shape[1:], dtype=value.dtype)

    # -- expression evaluation ------------------------------------------

    def eval(
        self, expr: ast.expr, env: Dict[str, ArrayValue]
    ) -> ArrayValue:
        if isinstance(expr, ast.Name):
            return env.get(expr.id, TOP)
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, (int, float, complex)) and not (
                isinstance(expr.value, bool)
            ):
                return scalar()
            return TOP
        if isinstance(expr, ast.Attribute):
            if expr.attr == "T":
                return self._transpose(self.eval(expr.value, env))
            return TOP
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr, env)
        if isinstance(expr, ast.UnaryOp):
            return self.eval(expr.operand, env)
        if isinstance(expr, ast.IfExp):
            return join_value(
                self.eval(expr.body, env), self.eval(expr.orelse, env)
            )
        if isinstance(expr, ast.Subscript):
            return self._eval_subscript(expr, env)
        if isinstance(expr, ast.Starred):
            return self.eval(expr.value, env)
        return TOP

    def _transpose(self, value: ArrayValue) -> ArrayValue:
        if not value.is_array:
            return TOP
        if value.shape is None:
            return ArrayValue(kind=ARRAY, dtype=value.dtype)
        if len(value.shape) < 2:
            return value
        return array_of(
            tuple(reversed(value.shape)),
            dtype=value.dtype,
            contiguous=False,
        )

    def _eval_call(
        self, call: ast.Call, env: Dict[str, ArrayValue]
    ) -> ArrayValue:
        target = call_target(call.func)
        if target is None:
            return TOP

        contract = ARRAY_CONTRACTS.get(target)
        if contract is not None and contract.returns is not None:
            unifier = Unifier()
            self._unify_call_args(call, contract, env, unifier)
            return value_from_spec(contract.returns, unifier)

        if target in ALLOCATOR_CALLS:
            return self._eval_allocator(target, call, env)
        if target in ("asarray", "array"):
            return self._eval_asarray(call, env)
        if target == "ascontiguousarray":
            inner = self._first_arg_value(call, env)
            dtype = _dtype_from_expr(_keyword(call, "dtype")) or (
                inner.dtype if inner.is_array else None
            )
            return ArrayValue(
                kind=ARRAY,
                shape=inner.shape if inner.is_array else None,
                dtype=dtype,
                contiguous=True,
            )
        if target == "astype" and isinstance(call.func, ast.Attribute):
            receiver = self.eval(call.func.value, env)
            dtype = _dtype_from_expr(call.args[0]) if call.args else None
            if receiver.is_array:
                return ArrayValue(
                    kind=ARRAY,
                    shape=receiver.shape,
                    dtype=dtype,
                    contiguous=True,
                )
            return ArrayValue(kind=ARRAY, dtype=dtype, contiguous=True)
        if target == "reshape" and isinstance(call.func, ast.Attribute):
            receiver = self.eval(call.func.value, env)
            if len(call.args) == 1:
                shape = _dims_from_expr(call.args[0])
            else:
                shape = _dims_from_expr(
                    ast.Tuple(elts=list(call.args), ctx=ast.Load())
                )
            dtype = receiver.dtype if receiver.is_array else None
            return ArrayValue(kind=ARRAY, shape=shape, dtype=dtype)
        if target == "transpose":
            if isinstance(call.func, ast.Attribute):
                return self._transpose(self.eval(call.func.value, env))
            return self._transpose(self._first_arg_value(call, env))
        if target in ("ravel", "flatten"):
            base = (
                self.eval(call.func.value, env)
                if isinstance(call.func, ast.Attribute)
                else self._first_arg_value(call, env)
            )
            dtype = base.dtype if base.kind != TOP_KIND else None
            return ArrayValue(
                kind=ARRAY, shape=(DYN,), dtype=dtype, contiguous=True
            )
        if target == "copy" and isinstance(call.func, ast.Attribute):
            receiver = self.eval(call.func.value, env)
            if receiver.is_array:
                return ArrayValue(
                    kind=ARRAY,
                    shape=receiver.shape,
                    dtype=receiver.dtype,
                    contiguous=True,
                )
            return TOP
        if target in COPY_CALLS:
            # concatenate/vstack/...: a fresh contiguous array whose
            # dtype joins the parts'.
            dtype = self._join_arg_dtypes(call, env)
            return ArrayValue(kind=ARRAY, dtype=dtype, contiguous=True)
        if target == "einsum":
            dtype = self._join_arg_dtypes(call, env, skip_first=True)
            return ArrayValue(kind=ARRAY, dtype=dtype, contiguous=True)
        if target in ("dot", "matmul"):
            return self._eval_matmul_call(call, env)
        if target in _ELEMENTWISE_CALLS:
            base = self._first_arg_value(call, env)
            if base.is_array:
                return ArrayValue(
                    kind=ARRAY, shape=base.shape, dtype=base.dtype
                )
            if base.kind == SCALAR:
                return scalar(base.dtype)
            return TOP
        if target in _REDUCTION_CALLS:
            base = (
                self.eval(call.func.value, env)
                if isinstance(call.func, ast.Attribute)
                else self._first_arg_value(call, env)
            )
            if _keyword(call, "axis") is not None or len(call.args) > (
                1 if not isinstance(call.func, ast.Attribute) else 0
            ):
                dtype = base.dtype if base.is_array else None
                return ArrayValue(kind=ARRAY, dtype=dtype)
            return scalar(base.dtype if base.kind != TOP_KIND else None)
        if target in self.summaries:
            return self.summaries[target]
        return TOP

    def _unify_call_args(
        self,
        call: ast.Call,
        contract: ArrayContract,
        env: Dict[str, ArrayValue],
        unifier: Unifier,
    ) -> None:
        for position, arg in enumerate(call.args):
            spec = contract.spec_for(position, None)
            if spec is None:
                continue
            value = self.eval(arg, env)
            if value.is_array:
                unifier.observe_shape(spec.shape, value.shape)
        for keyword in call.keywords:
            if keyword.arg is None:
                continue
            spec = contract.spec_for(-1, keyword.arg)
            if spec is None:
                continue
            value = self.eval(keyword.value, env)
            if value.is_array:
                unifier.observe_shape(spec.shape, value.shape)

    def _eval_allocator(
        self, target: str, call: ast.Call, env: Dict[str, ArrayValue]
    ) -> ArrayValue:
        dtype = _dtype_from_expr(_keyword(call, "dtype"))
        if target.endswith("_like"):
            base = self._first_arg_value(call, env)
            return ArrayValue(
                kind=ARRAY,
                shape=base.shape if base.is_array else None,
                dtype=dtype or (base.dtype if base.is_array else None),
                contiguous=True,
            )
        if target in ("arange", "linspace"):
            return ArrayValue(
                kind=ARRAY, shape=(DYN,), dtype=dtype, contiguous=True
            )
        shape = _dims_from_expr(call.args[0]) if call.args else None
        if dtype is None and target in ("zeros", "ones", "empty", "eye"):
            dtype = KERNEL_DTYPE  # numpy's default
        return ArrayValue(
            kind=ARRAY, shape=shape, dtype=dtype, contiguous=True
        )

    def _eval_asarray(
        self, call: ast.Call, env: Dict[str, ArrayValue]
    ) -> ArrayValue:
        dtype = _dtype_from_expr(_keyword(call, "dtype"))
        if dtype is None and len(call.args) > 1:
            dtype = _dtype_from_expr(call.args[1])
        if not call.args:
            return TOP
        source = call.args[0]
        inner = self.eval(source, env)
        if inner.is_array:
            # asarray is a passthrough unless the dtype changes, and
            # whether it changes is only knowable when both sides are:
            # stay unknown on contiguity otherwise.
            if dtype is None or dtype == inner.dtype:
                contiguous = inner.contiguous
            else:
                contiguous = None
            return ArrayValue(
                kind=ARRAY,
                shape=inner.shape,
                dtype=dtype or inner.dtype,
                contiguous=contiguous,
            )
        literal_shape = _nested_list_shape(source)
        if literal_shape is not None:
            return ArrayValue(
                kind=ARRAY,
                shape=literal_shape,
                dtype=dtype,
                contiguous=True,
            )
        return ArrayValue(kind=ARRAY, dtype=dtype)

    def _eval_matmul_call(
        self, call: ast.Call, env: Dict[str, ArrayValue]
    ) -> ArrayValue:
        if len(call.args) < 2:
            return TOP
        return self._matmul(
            self.eval(call.args[0], env), self.eval(call.args[1], env)
        )

    def _matmul(self, left: ArrayValue, right: ArrayValue) -> ArrayValue:
        dtype = promote_dtype(left.dtype, right.dtype)
        if (
            left.is_array
            and right.is_array
            and left.shape is not None
            and right.shape is not None
        ):
            if len(left.shape) == 2 and len(right.shape) == 1:
                return array_of((left.shape[0],), dtype=dtype)
            if len(left.shape) == 2 and len(right.shape) == 2:
                return array_of(
                    (left.shape[0], right.shape[1]), dtype=dtype
                )
            if len(left.shape) == 1 and len(right.shape) == 2:
                return array_of((right.shape[1],), dtype=dtype)
            if len(left.shape) == 1 and len(right.shape) == 1:
                return scalar(dtype)
        # A known rank-2 operand forces an array result whatever the
        # other side is; with both ranks unknown the result could be a
        # scalar (1-D @ 1-D), so TOP is the only monotone answer.
        if (left.is_array and left.rank == 2) or (
            right.is_array and right.rank == 2
        ):
            return ArrayValue(kind=ARRAY, dtype=dtype)
        return TOP

    def _eval_binop(
        self, expr: ast.BinOp, env: Dict[str, ArrayValue]
    ) -> ArrayValue:
        left = self.eval(expr.left, env)
        right = self.eval(expr.right, env)
        if isinstance(expr.op, ast.MatMult):
            return self._matmul(left, right)
        if left.is_array or right.is_array:
            if left.is_array and right.is_array:
                shape, _ = broadcast_shapes(left.shape, right.shape)
                dtype = promote_dtype(left.dtype, right.dtype)
            elif left.is_array:
                # With a TOP other side the result could broadcast
                # wider than left.shape, so only a known scalar keeps
                # the shape.
                shape = left.shape if right.kind == SCALAR else None
                dtype = left.dtype if right.kind == SCALAR else None
            else:
                shape = right.shape if left.kind == SCALAR else None
                dtype = right.dtype if left.kind == SCALAR else None
            return ArrayValue(kind=ARRAY, shape=shape, dtype=dtype)
        if left.kind == SCALAR and right.kind == SCALAR:
            return scalar(promote_dtype(left.dtype, right.dtype))
        return TOP

    def _eval_subscript(
        self, expr: ast.Subscript, env: Dict[str, ArrayValue]
    ) -> ArrayValue:
        value = self.eval(expr.value, env)
        if not value.is_array:
            return TOP
        index = expr.slice
        if _is_fancy_index(index, env):
            # Fancy indexing materializes a fresh (contiguous) copy of
            # unknown extent.
            return ArrayValue(
                kind=ARRAY, dtype=value.dtype, contiguous=True
            )
        if isinstance(index, ast.Constant) and isinstance(index.value, int):
            if value.shape is None:
                # Unknown rank: an int index could yield a scalar (rank
                # 1) or an array (rank 2+), so anything more precise
                # than TOP would be non-monotone.
                return TOP
            if len(value.shape) == 1:
                return scalar(value.dtype)
            return array_of(value.shape[1:], dtype=value.dtype)
        if isinstance(index, ast.Slice):
            step_known_one = index.step is None or (
                isinstance(index.step, ast.Constant)
                and index.step.value == 1
            )
            shape: Shape = None
            if value.shape is not None:
                shape = (DYN,) + value.shape[1:]
            return ArrayValue(
                kind=ARRAY,
                shape=shape,
                dtype=value.dtype,
                contiguous=(
                    value.contiguous if step_known_one else False
                ),
            )
        if isinstance(index, ast.Tuple):
            all_ints = all(
                isinstance(element, ast.Constant)
                and isinstance(element.value, int)
                for element in index.elts
            )
            if all_ints:
                if value.shape is None:
                    return TOP  # could index down to a scalar
                remaining = value.shape[len(index.elts):]
                if not remaining:
                    return scalar(value.dtype)
                return array_of(remaining, dtype=value.dtype)
            # Mixed int/slice indexing: rank drops by the int count,
            # dims unknown; a leading full slice keeps contiguity
            # undecidable, a trailing one usually breaks it — stay
            # unknown rather than guess.
            return ArrayValue(kind=ARRAY, dtype=value.dtype)
        return ArrayValue(kind=ARRAY, dtype=value.dtype)

    # -- helpers ---------------------------------------------------------

    def _first_arg_value(
        self, call: ast.Call, env: Dict[str, ArrayValue]
    ) -> ArrayValue:
        if not call.args:
            return TOP
        return self.eval(call.args[0], env)

    def _join_arg_dtypes(
        self,
        call: ast.Call,
        env: Dict[str, ArrayValue],
        skip_first: bool = False,
    ) -> Optional[str]:
        dtypes: List[Optional[str]] = []
        args = call.args[1:] if skip_first else call.args
        for arg in args:
            if isinstance(arg, (ast.List, ast.Tuple)):
                for element in arg.elts:
                    dtypes.append(self.eval(element, env).dtype)
            else:
                dtypes.append(self.eval(arg, env).dtype)
        concrete = [d for d in dtypes if d is not None]
        if concrete and len(concrete) == len(dtypes) and all(
            d == concrete[0] for d in concrete
        ):
            return concrete[0]
        return None


def _is_fancy_index(
    index: ast.expr, env: Dict[str, ArrayValue]
) -> bool:
    """Does this subscript index trigger numpy advanced indexing?"""
    candidates: List[ast.expr] = (
        list(index.elts) if isinstance(index, ast.Tuple) else [index]
    )
    for candidate in candidates:
        if isinstance(candidate, ast.List):
            return True
        if isinstance(candidate, ast.Name):
            value = env.get(candidate.id)
            if value is not None and value.is_array:
                return True
    return False


# ----------------------------------------------------------------------
# Interprocedural return summaries
# ----------------------------------------------------------------------

_SUMMARY_ROUNDS = 3


def module_summaries(
    units: List[FunctionUnit],
) -> Dict[str, ArrayValue]:
    """Per-function return-value summaries for one module.

    Functions are keyed by their last qualname segment (the same
    convention call targets resolve by); same-named functions join.
    Summaries feed back into evaluation, so helper chains propagate —
    a couple of rounds reaches the fixpoint for any acyclic helper
    chain of that depth, and cycles safely stay at TOP.
    """
    summaries: Dict[str, ArrayValue] = {}
    for _ in range(_SUMMARY_ROUNDS):
        fresh: Dict[str, ArrayValue] = {}
        for unit in units:
            if unit.node is None:
                continue
            value = _return_summary(unit, summaries)
            name = unit.qualname.rsplit(".", 1)[-1].lstrip("_")
            if name in fresh:
                fresh[name] = join_value(fresh[name], value)
            else:
                fresh[name] = value
        interesting = {
            name: value
            for name, value in fresh.items()
            if value != TOP and name not in ARRAY_CONTRACTS
        }
        if interesting == summaries:
            break
        summaries = interesting
    return summaries


def _return_summary(
    unit: FunctionUnit, summaries: Dict[str, ArrayValue]
) -> ArrayValue:
    analysis = ShapeAnalysis(unit, summaries)
    result = run_forward(unit.cfg, analysis)
    returned: Optional[ArrayValue] = None
    for block in unit.cfg.blocks:
        state = result.block_in[block.index]
        for stmt in block.stmts:
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                value = analysis.eval(stmt.value, state)
                returned = (
                    value
                    if returned is None
                    else join_value(returned, value)
                )
            state = analysis.transfer(state, stmt)
    return returned if returned is not None else TOP


# ----------------------------------------------------------------------
# The N7xx checker
# ----------------------------------------------------------------------

class _ShapeChecker:
    def __init__(
        self,
        path: str,
        unit: FunctionUnit,
        summaries: Dict[str, ArrayValue],
    ) -> None:
        self.path = path
        self.unit = unit
        self.analysis = ShapeAnalysis(unit, summaries)
        self.is_hot = _hot_path_decorated(unit.node)
        self._seen: set = set()

    def run(self) -> List[Finding]:
        result = run_forward(self.unit.cfg, self.analysis)
        findings: List[Finding] = []
        for block in self.unit.cfg.blocks:
            state = result.block_in[block.index]
            for stmt in block.stmts:
                findings.extend(self._check_stmt(stmt, state, block))
                state = self.analysis.transfer(state, stmt)
        return findings

    def _check_stmt(
        self,
        stmt: ast.stmt,
        state: Dict[str, ArrayValue],
        block: BasicBlock,
    ) -> List[Finding]:
        del block
        findings: List[Finding] = []
        for expr in header_exprs(stmt):
            for node in ast.walk(expr):
                if isinstance(node, ast.Call):
                    findings.extend(self._check_call(node, state))
                elif isinstance(node, ast.BinOp):
                    findings.extend(self._check_binop(node, state))
                elif isinstance(node, ast.Subscript) and self.is_hot:
                    findings.extend(self._check_subscript(node, state))
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            findings.extend(self._check_row_loop(stmt, state))
        return findings

    # -- N701 / N704 / N706: contract boundaries ------------------------

    def _check_call(
        self, call: ast.Call, state: Dict[str, ArrayValue]
    ) -> List[Finding]:
        findings: List[Finding] = []
        target = call_target(call.func) or "<call>"
        contract = array_contract(call.func)
        if contract is not None:
            findings.extend(self._check_contract_call(call, target, contract, state))
        if target in BLAS_KERNEL_CALLS:
            for position, arg in enumerate(call.args):
                value = self.analysis.eval(arg, state)
                if value.is_array and value.contiguous is False:
                    findings.extend(self._emit(
                        "N706", call,
                        f"argument {position + 1} of {target}() is "
                        "non-contiguous; the kernel will stride or "
                        "silently copy — call np.ascontiguousarray "
                        "outside the hot path",
                    ))
        if self.is_hot:
            if target in ALLOCATOR_CALLS:
                findings.extend(self._emit(
                    "N705", call,
                    f"np.{target}() allocates inside a @hot_path "
                    "function; preallocate the buffer outside the "
                    "per-tick path and fill it in place",
                ))
            elif target in COPY_CALLS:
                findings.extend(self._emit(
                    "N703", call,
                    f"{target}() materializes a copy inside a "
                    "@hot_path function; restructure so the hot path "
                    "works in preallocated storage",
                ))
        return findings

    def _check_contract_call(
        self,
        call: ast.Call,
        target: str,
        contract: ArrayContract,
        state: Dict[str, ArrayValue],
    ) -> List[Finding]:
        findings: List[Finding] = []
        unifier = Unifier()
        args: List[Tuple[str, ast.expr, Optional[ArraySpec]]] = []
        for position, arg in enumerate(call.args):
            args.append(
                (
                    f"argument {position + 1}",
                    arg,
                    contract.spec_for(position, None),
                )
            )
        for keyword in call.keywords:
            if keyword.arg is None:
                continue
            args.append(
                (
                    f"keyword '{keyword.arg}'",
                    keyword.value,
                    contract.spec_for(-1, keyword.arg),
                )
            )
        for where, arg, spec in args:
            if spec is None:
                continue
            value = self.analysis.eval(arg, state)
            if not value.is_array:
                continue
            if (
                spec.dtype is not None
                and value.dtype is not None
                and value.dtype != spec.dtype
            ):
                findings.extend(self._emit(
                    "N701", call,
                    f"{target}() is a {spec.dtype} kernel but {where} "
                    f"is {value.dtype}; the cast changes rounding and "
                    "breaks bit-for-bit replay",
                ))
            if (
                spec.shape is not None
                and value.shape is not None
                and len(spec.shape) != len(value.shape)
            ):
                findings.extend(self._emit(
                    "N704", call,
                    f"{target}() expects rank {len(spec.shape)} "
                    f"{_render_shape(spec.shape)} for {where}, got "
                    f"rank {len(value.shape)} "
                    f"{_render_shape(value.shape)}",
                ))
                continue
            if spec.contiguous and value.contiguous is False:
                findings.extend(self._emit(
                    "N706", call,
                    f"{target}() requires a contiguous {where} but the "
                    "operand is known non-contiguous",
                ))
            if value.shape is not None:
                unifier.observe_shape(spec.shape, value.shape)
        if not unifier.ok:
            declared, observed = unifier.conflicts[0]
            findings.extend(self._emit(
                "N704", call,
                f"{target}() arguments disagree on a shared dim: "
                f"declared {declared!r} observed as {observed!r} "
                "conflicts with another argument",
            ))
        return findings

    # -- N704: concrete broadcast mismatches ----------------------------

    def _check_binop(
        self, node: ast.BinOp, state: Dict[str, ArrayValue]
    ) -> List[Finding]:
        if isinstance(node.op, ast.MatMult):
            return []
        left = self.analysis.eval(node.left, state)
        right = self.analysis.eval(node.right, state)
        if not (left.is_array and right.is_array):
            return []
        _, compatible = broadcast_shapes(left.shape, right.shape)
        if compatible:
            return []
        return self._emit(
            "N704", node,
            f"operands of shape {_render_shape(left.shape)} and "
            f"{_render_shape(right.shape)} cannot broadcast",
        )

    # -- N703: fancy indexing in hot paths ------------------------------

    def _check_subscript(
        self, node: ast.Subscript, state: Dict[str, ArrayValue]
    ) -> List[Finding]:
        if not isinstance(node.ctx, ast.Load):
            return []
        value = self.analysis.eval(node.value, state)
        if not value.is_array:
            return []
        if not _is_fancy_index(node.slice, state):
            return []
        return self._emit(
            "N703", node,
            "fancy indexing copies inside a @hot_path function; use a "
            "precomputed slice or index outside the per-tick path",
        )

    # -- N702: row loops over matrices ----------------------------------

    def _check_row_loop(
        self, stmt: ast.stmt, state: Dict[str, ArrayValue]
    ) -> List[Finding]:
        iterated = self.analysis.eval(stmt.iter, state)  # type: ignore[attr-defined]
        if not iterated.is_array:
            return []
        if iterated.shape is None or len(iterated.shape) < 2:
            return []
        loop_id = self.unit.cfg.loop_id_of(stmt)
        if loop_id is None:
            return []
        kernel = self._kernel_called_in_loop(loop_id)
        if kernel is None:
            return []
        return self._emit(
            "N702", stmt,
            f"Python-level loop over ndarray rows calls {kernel}() per "
            "row; the kernel is vectorized — call it once on the full "
            "matrix",
        )

    def _kernel_called_in_loop(self, loop_id: int) -> Optional[str]:
        for block in self.unit.cfg.blocks:
            if loop_id not in block.loops or block.index == loop_id:
                continue
            for stmt in block.stmts:
                for expr in header_exprs(stmt):
                    for node in ast.walk(expr):
                        if not isinstance(node, ast.Call):
                            continue
                        target = call_target(node.func)
                        if target is None:
                            continue
                        if (
                            target in ARRAY_CONTRACTS
                            or target in BLAS_KERNEL_CALLS
                        ):
                            return target
        return None

    def _emit(
        self, code: str, node: ast.AST, message: str
    ) -> List[Finding]:
        key = (code, node.lineno, node.col_offset)
        if key in self._seen:
            return []
        self._seen.add(key)
        return [Finding(
            code,
            message,
            f"{self.path}:{node.lineno}",
            context={"function": self.unit.qualname},
        )]


def _render_shape(shape: Shape) -> str:
    if shape is None:
        return "(?)"
    return "(" + ", ".join(str(dim) for dim in shape) + ")"


def check_shapes_source(
    source: str, path: Union[str, Path]
) -> List[Finding]:
    """N7xx findings for one module's source text."""
    path = Path(path)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        raise ValueError(f"cannot parse {path}: {error}") from error
    units = list(iter_function_units(tree))
    summaries = module_summaries(units)
    findings: List[Finding] = []
    for unit in units:
        findings.extend(_ShapeChecker(str(path), unit, summaries).run())
    return findings
