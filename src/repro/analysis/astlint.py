"""AST lint pass: determinism and Python-footgun rules (A3xx).

The data substrate guarantees one RNG stream per (machine, run, counter)
— see ``repro.counters.derivation`` — so any unseeded or global RNG use
in this tree silently breaks reproducibility.  Experiment code
additionally must not compare floats with ``==``/``!=``: thresholds and
accumulated metrics are never exactly representable.

Rules:

* ``A301`` — ``np.random.default_rng()`` with no seed argument,
* ``A302`` — ``np.random.seed(...)`` (legacy global reseeding),
* ``A303`` — float-literal ``==``/``!=`` comparison in experiment code,
* ``A304`` — mutable default argument,
* ``A305`` — ``from module import *``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding

#: Directory names whose files count as "experiment code" for A303.
EXPERIMENT_DIR_NAMES = ("experiments", "benchmarks", "examples")

#: Default roots scanned by ``repro lint``, relative to the repo root.
DEFAULT_AST_ROOTS = ("src", "benchmarks", "examples")

_MUTABLE_CONSTRUCTORS = ("list", "dict", "set")


def is_experiment_path(path: Path) -> bool:
    return any(part in EXPERIMENT_DIR_NAMES for part in path.parts)


def _dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for an attribute/name chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, experiment_code: bool) -> None:
        self.path = path
        self.experiment_code = experiment_code
        self.findings: list[Finding] = []
        #: Local aliases of numpy.random functions, e.g. imported via
        #: ``from numpy.random import default_rng``.
        self.random_aliases: dict[str, str] = {}
        #: Local aliases of the numpy.random module itself.
        self.random_modules: set[str] = set()

    def _report(self, code: str, message: str, node: ast.AST) -> None:
        self.findings.append(Finding(
            code, message, f"{self.path}:{node.lineno}"
        ))

    # -- imports --------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "numpy.random":
                self.random_modules.add(alias.asname or "numpy.random")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            if alias.name == "*":
                self._report(
                    "A305",
                    f"star import from {node.module or '.'!r}",
                    node,
                )
        if node.module == "numpy.random":
            for alias in node.names:
                if alias.name in ("default_rng", "seed"):
                    self.random_aliases[alias.asname or alias.name] = (
                        alias.name
                    )
        elif node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self.random_modules.add(alias.asname or "random")
        self.generic_visit(node)

    # -- calls ----------------------------------------------------------

    def _resolve_random_call(self, func: ast.AST) -> str | None:
        """'default_rng' / 'seed' if the call targets numpy.random."""
        dotted = _dotted_name(func)
        if dotted is None:
            return None
        head, _, tail = dotted.rpartition(".")
        if tail in ("default_rng", "seed"):
            if head.endswith(".random") or head == "random":
                return tail
            if head in self.random_modules:
                return tail
            if not head and self.random_aliases.get(dotted) is not None:
                return self.random_aliases[dotted]
        return None

    def visit_Call(self, node: ast.Call) -> None:
        target = self._resolve_random_call(node.func)
        if target == "default_rng":
            if not node.args and not node.keywords:
                self._report(
                    "A301",
                    "default_rng() without a seed breaks the "
                    "per-(machine, run, counter) stream guarantee",
                    node,
                )
        elif target == "seed":
            self._report(
                "A302",
                "np.random.seed reseeds the global legacy RNG; use a "
                "keyed np.random.default_rng stream instead",
                node,
            )
        self.generic_visit(node)

    # -- comparisons ----------------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        if self.experiment_code and any(
            isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
        ):
            operands = [node.left, *node.comparators]
            if any(
                isinstance(o, ast.Constant) and isinstance(o.value, float)
                for o in operands
            ):
                self._report(
                    "A303",
                    "float ==/!= comparison in experiment code; use a "
                    "tolerance (abs(a - b) < eps)",
                    node,
                )
        self.generic_visit(node)

    # -- defaults -------------------------------------------------------

    def _check_defaults(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        defaults: list[ast.expr] = list(node.args.defaults)
        defaults += [d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CONSTRUCTORS
            ):
                mutable = True
            if mutable:
                self._report(
                    "A304",
                    f"mutable default argument in {node.name}()",
                    default,
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)


def lint_source(
    source: str, path: str | Path, experiment_code: bool | None = None
) -> list[Finding]:
    """AST findings for one module's source text."""
    path = Path(path)
    if experiment_code is None:
        experiment_code = is_experiment_path(path)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        raise ValueError(f"cannot parse {path}: {error}") from error
    visitor = _Visitor(str(path), experiment_code)
    visitor.visit(tree)
    return visitor.findings


def lint_file(path: str | Path) -> list[Finding]:
    path = Path(path)
    return lint_source(path.read_text(), path)


def iter_python_files(roots: Sequence[str | Path]) -> Iterable[Path]:
    for root in roots:
        root = Path(root)
        if root.is_file() and root.suffix == ".py":
            yield root
        elif root.is_dir():
            yield from sorted(root.rglob("*.py"))


def lint_paths(roots: Sequence[str | Path]) -> tuple[list[Finding], int]:
    """(findings, n_files_scanned) over every .py file under the roots."""
    findings: list[Finding] = []
    n_files = 0
    for path in iter_python_files(roots):
        n_files += 1
        findings += lint_file(path)
    return findings, n_files
