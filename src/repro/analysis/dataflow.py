"""Generic forward-dataflow fixpoint engine with a pluggable lattice.

The engine is deliberately small and statement-agnostic: it knows
nothing about Python AST, taint labels, or physical units.  An
:class:`Analysis` supplies four operations (entry state, bottom, join,
transfer); the engine iterates a worklist in reverse post-order until
the block-entry states stop changing.

Termination is the analysis's contract, not the engine's magic: with a
finite-height lattice and monotone transfer functions the chain of
states at each block is strictly ascending and must stabilize.  The
property tests in ``tests/analysis/test_dataflow.py`` check both halves
(random CFGs terminate; the shipped taint/unit transfers are monotone).
A generous iteration cap turns a broken lattice into a loud
:class:`FixpointDiverged` instead of a hung lint run.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Dict, Generic, Iterable, List, TypeVar

from repro.analysis.cfg import CFG

S = TypeVar("S")


class FixpointDiverged(RuntimeError):
    """The worklist failed to stabilize within the iteration budget —
    a non-monotone transfer function or an infinite-height lattice."""


class Analysis(abc.ABC, Generic[S]):
    """A forward dataflow problem over opaque per-block statements."""

    @abc.abstractmethod
    def entry_state(self, cfg: CFG) -> S:
        """State on entry to the CFG (e.g. parameter seeding)."""

    @abc.abstractmethod
    def bottom(self) -> S:
        """Identity of ``join``; the state of unreached code."""

    @abc.abstractmethod
    def join(self, left: S, right: S) -> S:
        """Least upper bound at a control-flow confluence."""

    @abc.abstractmethod
    def transfer(self, state: S, stmt: Any) -> S:
        """State after executing one (header-only) statement."""


@dataclass
class DataflowResult(Generic[S]):
    """Fixpoint states: ``block_in[i]`` holds on entry to block ``i``."""

    block_in: Dict[int, S]
    block_out: Dict[int, S]
    iterations: int

    def states_through(
        self, analysis: Analysis, stmts: Iterable[Any], state: S
    ) -> Iterable[tuple]:
        """Yield ``(pre_state, stmt)`` pairs walking one block's body."""
        for stmt in stmts:
            yield state, stmt
            state = analysis.transfer(state, stmt)


def run_forward(
    cfg: CFG,
    analysis: Analysis,
    max_iterations: int | None = None,
) -> DataflowResult:
    """Iterate to fixpoint; returns per-block entry/exit states.

    ``max_iterations`` bounds the number of *block visits*; the default
    budget (256 per block, minimum 1024) is far above what any monotone
    analysis on a finite lattice needs, so hitting it raises
    :class:`FixpointDiverged` rather than silently truncating.
    """
    n_blocks = len(cfg.blocks)
    if max_iterations is None:
        max_iterations = max(1024, 256 * n_blocks)

    order = cfg.rpo()
    position = {index: rank for rank, index in enumerate(order)}
    block_in: Dict[int, Any] = {i: analysis.bottom() for i in range(n_blocks)}
    block_out: Dict[int, Any] = {i: analysis.bottom() for i in range(n_blocks)}
    block_in[cfg.entry] = analysis.entry_state(cfg)

    # Worklist keyed by RPO rank so loops converge inner-first.
    pending: List[int] = list(order)
    in_worklist = set(pending)
    visits = 0
    while pending:
        pending.sort(key=lambda index: position.get(index, n_blocks))
        block_index = pending.pop(0)
        in_worklist.discard(block_index)
        visits += 1
        if visits > max_iterations:
            raise FixpointDiverged(
                f"{cfg.name}: no fixpoint after {visits} block visits "
                f"({n_blocks} blocks); transfer function is likely "
                "non-monotone"
            )
        block = cfg.blocks[block_index]
        state = block_in[block_index]
        for pred in block.preds:
            state = analysis.join(state, block_out[pred])
        if block_index == cfg.entry:
            state = analysis.join(state, analysis.entry_state(cfg))
        block_in[block_index] = state
        for stmt in block.stmts:
            state = analysis.transfer(state, stmt)
        if state != block_out[block_index]:
            block_out[block_index] = state
            for succ in block.succs:
                if succ not in in_worklist:
                    pending.append(succ)
                    in_worklist.add(succ)
    return DataflowResult(
        block_in=block_in, block_out=block_out, iterations=visits
    )


# ----------------------------------------------------------------------
# Environment lattice helpers shared by the taint and unit analyses
# ----------------------------------------------------------------------

V = TypeVar("V")


def join_env(
    left: Dict[str, V], right: Dict[str, V], join_value
) -> Dict[str, V]:
    """Pointwise join of variable environments; missing keys are bottom,
    so a one-sided binding survives the merge unchanged."""
    if not left:
        return dict(right)
    if not right:
        return dict(left)
    merged = dict(left)
    for name, value in right.items():
        if name in merged:
            merged[name] = join_value(merged[name], value)
        else:
            merged[name] = value
    return merged
