"""Runtime array-contract sanitizer: chaos-shape's dynamic half.

The static N7xx rules (:mod:`repro.analysis.shapes`) prove the declared
:data:`~repro.analysis.signatures.ARRAY_CONTRACTS` hold for every array
the analysis can see.  This module is the runtime cross-check: the same
contracted entry points are wrapped with :func:`contracted`, and while
an :class:`ArraySanitizer` is armed (``repro replay --sanitize``,
``repro serve --sanitize``) every call records the shapes, dtypes and
contiguity that *actually* flow through the kernel boundary.  A runtime
observation that contradicts the declared contract — a float32 row, a
rank the spec forbids, two arguments disagreeing on a shared symbolic
dim, a non-contiguous operand where the kernel demands contiguity —
becomes a violation CI fails on.

Two invariants make the wrapper safe to leave on production entry
points:

* **observe-only** — arguments and results are never touched, coerced,
  or copied, so scoring stays bit-identical with the sanitizer armed
  (the CI golden replay asserts exactly that);
* **near-zero cost when disarmed** — the fast path is one module-global
  ``None`` check per call.

:func:`hot_path` is the static marker half of the N703/N705 rules: it
tags a function as per-tick hot so the analyzer forbids allocations and
hidden copies inside it, and the sanitizer counts its calls so a hot
path that never runs in replay is visible in telemetry.
"""

from __future__ import annotations

import functools
import inspect
import threading
from dataclasses import dataclass, field
from types import TracebackType
from typing import Any, Callable, Dict, List, Optional, Tuple, Type, TypeVar

import numpy as np

from repro.analysis.signatures import (
    ARRAY_CONTRACTS,
    ArrayContract,
    ArraySpec,
)

F = TypeVar("F", bound=Callable[..., Any])

#: The armed sanitizer, if any.  Module-global on purpose: contracted
#: entry points live all over the tree and must not thread a handle.
_ACTIVE: Optional["ArraySanitizer"] = None
_ACTIVE_LOCK = threading.Lock()


def hot_path(func: F) -> F:
    """Mark ``func`` as per-tick hot (N703/N705 apply to its body).

    Purely a marker: the function is returned unchanged, so there is no
    call overhead — the *static* analyzer keys on the decorator name and
    the runtime sanitizer keys on the attribute.
    """
    func.__chaos_hot_path__ = True  # type: ignore[attr-defined]
    return func


def contracted(func: F) -> F:
    """Wrap a declared array-contract entry point for runtime checking.

    The contract is looked up by function name in ``ARRAY_CONTRACTS`` at
    decoration time, so an annotated function that drifts out of the
    registry fails at import, not silently at runtime.  Arguments are
    matched to contract parameters **by name** via the function's
    signature (methods therefore work: ``self`` simply has no spec).
    """
    name = func.__name__.lstrip("_")
    contract = ARRAY_CONTRACTS.get(name)
    if contract is None:
        raise ValueError(
            f"@contracted function {func.__name__!r} has no entry in "
            "ARRAY_CONTRACTS; declare its contract in "
            "repro.analysis.signatures first"
        )
    signature = inspect.signature(func)
    is_hot = getattr(func, "__chaos_hot_path__", False)

    @functools.wraps(func)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        sanitizer = _ACTIVE
        if sanitizer is not None:
            try:
                bound = signature.bind_partial(*args, **kwargs)
                arguments: Dict[str, Any] = dict(bound.arguments)
            except TypeError:
                arguments = {}
            sanitizer.observe_call(contract, arguments, hot=is_hot)
        result = func(*args, **kwargs)
        if sanitizer is not None:
            sanitizer.observe_return(contract, result)
        return result

    wrapper.__chaos_contract__ = contract  # type: ignore[attr-defined]
    if is_hot:
        wrapper.__chaos_hot_path__ = True  # type: ignore[attr-defined]
    return wrapper  # type: ignore[return-value]


@dataclass
class ArrayViolation:
    """One runtime contradiction of a declared array contract."""

    kind: str
    """``dtype`` | ``rank`` | ``dim`` | ``contiguity`` | ``return``."""

    function: str
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "function": self.function,
            "detail": self.detail,
        }


@dataclass
class _FunctionStats:
    """What one contracted entry point actually saw at runtime."""

    n_calls: int = 0
    n_hot_calls: int = 0
    n_noncontiguous_args: int = 0
    shapes: Dict[str, int] = field(default_factory=dict)
    """``"param:(n, k)"`` -> observation count (capped)."""

    dtypes: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "calls": self.n_calls,
            "hot_calls": self.n_hot_calls,
            "noncontiguous_args": self.n_noncontiguous_args,
            "shapes": dict(self.shapes),
            "dtypes": dict(self.dtypes),
        }


_MAX_DISTINCT_SHAPES = 32
_MAX_VIOLATIONS_PER_KEY = 1


@dataclass
class ArraySanitizer:
    """Records runtime array observations against declared contracts.

    Use as a context manager around a replay/serve run, or call
    :meth:`install` / :meth:`uninstall` explicitly.  ``report()`` is
    JSON-safe and lands in replay telemetry under
    ``"array_sanitizer"``.
    """

    violations: List[ArrayViolation] = field(default_factory=list)
    functions: Dict[str, _FunctionStats] = field(default_factory=dict)

    _installed: bool = False
    _seen: Dict[Tuple[str, str, str], int] = field(default_factory=dict)

    # -- arming --------------------------------------------------------

    def install(self) -> "ArraySanitizer":
        """Arm this sanitizer globally; idempotent per instance."""
        global _ACTIVE
        with _ACTIVE_LOCK:
            if self._installed:
                return self
            if _ACTIVE is not None:
                raise RuntimeError(
                    "another ArraySanitizer is already installed"
                )
            _ACTIVE = self
            self._installed = True
        return self

    def uninstall(self) -> None:
        global _ACTIVE
        with _ACTIVE_LOCK:
            if not self._installed:
                return
            if _ACTIVE is self:
                _ACTIVE = None
            self._installed = False

    def __enter__(self) -> "ArraySanitizer":
        return self.install()

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.uninstall()

    # -- observation ---------------------------------------------------

    def observe_call(
        self,
        contract: ArrayContract,
        arguments: Dict[str, Any],
        hot: bool = False,
    ) -> None:
        stats = self.functions.setdefault(contract.name, _FunctionStats())
        stats.n_calls += 1
        if hot:
            stats.n_hot_calls += 1
        bindings: Dict[str, int] = {}
        for param_name, spec in contract.params:
            if spec is None:
                continue
            value = arguments.get(param_name)
            if not isinstance(value, np.ndarray):
                # Lists and scalars are legal at tolerant entry points;
                # the contract constrains arrays only.
                continue
            self._record(stats, param_name, value)
            self._check_spec(
                contract.name, f"parameter {param_name!r}", spec, value,
                bindings, stats,
            )

    def observe_return(self, contract: ArrayContract, result: Any) -> None:
        spec = contract.returns
        if spec is None or not isinstance(result, np.ndarray):
            return
        stats = self.functions.setdefault(contract.name, _FunctionStats())
        self._record(stats, "return", result)
        self._check_spec(
            contract.name, "return value", spec, result, {}, stats,
            kind_prefix="return_",
        )

    def _record(
        self, stats: _FunctionStats, where: str, value: np.ndarray
    ) -> None:
        key = f"{where}:{value.shape}"
        if key in stats.shapes or len(stats.shapes) < _MAX_DISTINCT_SHAPES:
            stats.shapes[key] = stats.shapes.get(key, 0) + 1
        dtype = str(value.dtype)
        stats.dtypes[dtype] = stats.dtypes.get(dtype, 0) + 1
        if not value.flags["C_CONTIGUOUS"]:
            stats.n_noncontiguous_args += 1

    def _check_spec(
        self,
        function: str,
        where: str,
        spec: ArraySpec,
        value: np.ndarray,
        bindings: Dict[str, int],
        stats: _FunctionStats,
        kind_prefix: str = "",
    ) -> None:
        del stats
        if spec.dtype is not None and str(value.dtype) != spec.dtype:
            self._violate(
                kind_prefix + "dtype", function,
                f"{where} is {value.dtype}, contract declares "
                f"{spec.dtype}",
            )
        if spec.shape is not None:
            if value.ndim != len(spec.shape):
                self._violate(
                    kind_prefix + "rank", function,
                    f"{where} has rank {value.ndim}, contract declares "
                    f"rank {len(spec.shape)} {spec.shape}",
                )
            else:
                for declared, observed in zip(spec.shape, value.shape):
                    if isinstance(declared, int):
                        if observed != declared:
                            self._violate(
                                kind_prefix + "dim", function,
                                f"{where} dim is {observed}, contract "
                                f"declares {declared}",
                            )
                    elif declared != "?":
                        bound = bindings.get(declared)
                        if bound is None:
                            bindings[declared] = int(observed)
                        elif bound != observed:
                            self._violate(
                                kind_prefix + "dim", function,
                                f"{where} binds shared dim "
                                f"{declared!r}={observed} but another "
                                f"argument bound it to {bound}",
                            )
        if spec.contiguous and not value.flags["C_CONTIGUOUS"]:
            self._violate(
                kind_prefix + "contiguity", function,
                f"{where} is non-contiguous; the contract requires a "
                "C-contiguous operand",
            )

    def _violate(self, kind: str, function: str, detail: str) -> None:
        key = (kind, function, detail.split(";")[0])
        count = self._seen.get(key, 0)
        self._seen[key] = count + 1
        if count < _MAX_VIOLATIONS_PER_KEY:
            self.violations.append(ArrayViolation(kind, function, detail))

    # -- reporting -----------------------------------------------------

    @property
    def ok(self) -> bool:
        return not self.violations

    def report(self) -> Dict[str, Any]:
        """JSON-safe summary for telemetry and CLI output."""
        by_kind: Dict[str, int] = {}
        for key, count in self._seen.items():
            by_kind[key[0]] = by_kind.get(key[0], 0) + count
        return {
            "ok": self.ok,
            "n_violations": sum(self._seen.values()),
            "by_kind": by_kind,
            "violations": [v.to_dict() for v in self.violations],
            "functions": {
                name: stats.to_dict()
                for name, stats in sorted(self.functions.items())
            },
        }


def install_array_sanitizer() -> ArraySanitizer:
    """Convenience: build, arm, and return an array sanitizer."""
    return ArraySanitizer().install()


def active_array_sanitizer() -> Optional[ArraySanitizer]:
    """The currently armed sanitizer, if any (for tests/telemetry)."""
    return _ACTIVE
