"""SARIF 2.1.0 rendering of a chaos-lint report.

SARIF (Static Analysis Results Interchange Format) is what GitHub code
scanning ingests: ``repro lint --format sarif`` uploaded via
``codeql-action/upload-sarif`` turns every finding into an inline PR
annotation.  Only the small stable subset of the spec is emitted — one
run, one driver, one result per finding.

Findings carry their location as a plain string: ``path:line`` for
source rules, ``catalog[key]:counter`` for semantic rules.  The former
becomes a ``physicalLocation``; the latter has no artifact on disk and
is mapped to a ``logicalLocations`` entry, which renders in SARIF
viewers without claiming a file that does not exist.

Every result also carries a stable ``partialFingerprints`` entry —
``chaosLint/v1``, a hash of the rule id, the logical location (the
enclosing function when the rule recorded one, else the file path),
and the whitespace-normalized source line.  Line numbers are *not*
part of the hash, so GitHub code-scanning annotations survive
unrelated edits that shift a finding up or down the file.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Tuple, Union

from repro.analysis.findings import RULES, Finding

if TYPE_CHECKING:
    from repro.analysis.runner import LintReport

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "chaos-lint"
TOOL_URI = "docs/static_analysis.md"


def split_location(location: str) -> Tuple[str, Optional[int]]:
    """``'src/x.py:12'`` -> ``('src/x.py', 12)``; non-file locations
    (no trailing integer) return ``(location, None)``."""
    head, sep, tail = location.rpartition(":")
    if sep and tail.isdigit():
        return head, int(tail)
    return location, None


def _source_line(
    path: str, line: int, cache: Dict[str, Tuple[str, ...]]
) -> str:
    """Whitespace-normalized source line, '' when unreadable."""
    if path not in cache:
        try:
            cache[path] = tuple(Path(path).read_text().splitlines())
        except OSError:
            cache[path] = ()
    lines = cache[path]
    if 0 < line <= len(lines):
        return " ".join(lines[line - 1].split())
    return ""


def fingerprint(
    finding: Finding, cache: Optional[Dict[str, Tuple[str, ...]]] = None
) -> str:
    """Stable ``chaosLint/v1`` fingerprint for one finding."""
    if cache is None:
        cache = {}
    path, line = split_location(finding.location)
    snippet = "" if line is None else _source_line(path, line, cache)
    logical = str(finding.context.get("function", "")) or path
    material = "|".join([finding.code, logical, snippet])
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:32]


def _result(
    finding: Finding,
    root: Optional[Path],
    cache: Dict[str, Tuple[str, ...]],
) -> dict:
    path, line = split_location(finding.location)
    result = {
        "ruleId": finding.code,
        "level": "error",
        "message": {"text": finding.message},
        "partialFingerprints": {
            "chaosLint/v1": fingerprint(finding, cache)
        },
    }
    if line is not None:
        uri = path
        if root is not None:
            try:
                uri = str(Path(path).resolve().relative_to(root.resolve()))
            except ValueError:
                uri = path
        result["locations"] = [{
            "physicalLocation": {
                "artifactLocation": {"uri": uri.replace("\\", "/")},
                "region": {"startLine": line},
            },
        }]
    else:
        result["locations"] = [{
            "logicalLocations": [{"fullyQualifiedName": finding.location}],
        }]
    return result


def render_sarif(
    report: "LintReport", root: Union[str, Path, None] = None
) -> str:
    """Serialize a :class:`~repro.analysis.runner.LintReport` as SARIF.

    ``root`` (a path) relativizes source locations so annotations line
    up with repository paths on the code-scanning side.
    """
    root = Path(root) if root is not None else None
    cache: Dict[str, Tuple[str, ...]] = {}
    rules = [
        {
            "id": code,
            "shortDescription": {"text": description},
            "helpUri": TOOL_URI,
        }
        for code, description in sorted(RULES.items())
    ]
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "informationUri": TOOL_URI,
                    "rules": rules,
                },
            },
            "results": [
                _result(finding, root, cache)
                for finding in report.findings
            ],
        }],
    }
    return json.dumps(payload, indent=2)
