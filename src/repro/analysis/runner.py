"""chaos-lint orchestration: run every layer, filter, render a report.

``run_lint`` is what both the ``repro lint`` CLI subcommand and the
tier-1 regression test call; keeping it pure (no process exit, no
printing) makes the report easy to assert on.

Five layers run by default:

* the semantic checker over the in-process catalogs/registry (C1xx,
  M2xx),
* the single-pass AST lint (A3xx),
* the chaos-flow dataflow analyses — taint/leakage (L4xx) and physical
  units (U5xx) — over the same source roots,
* the chaos-race concurrency pass (R6xx) over the same roots,
* the chaos-shape numeric-array pass (N7xx) over the same roots.

Each source file is read and parsed once per layer family; inline
``# chaos: ignore[CODE] -- reason`` comments are honored for every
file-based finding, and stale or justification-free suppressions come
back as W001/W002 (see :mod:`repro.analysis.suppress`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.astlint import (
    DEFAULT_AST_ROOTS,
    iter_python_files,
    lint_source,
)
from repro.analysis.findings import RULES, Finding, filter_findings
from repro.analysis.leakage import check_leakage_source
from repro.analysis.races import check_races_source
from repro.analysis.semantic import check_all_platforms
from repro.analysis.shapes import check_shapes_source
from repro.analysis.suppress import (
    Suppression,
    apply_suppressions,
    parse_suppressions,
)
from repro.analysis.units import check_units_source


@dataclass
class LintReport:
    """Everything one chaos-lint invocation produced."""

    findings: list[Finding] = field(default_factory=list)
    n_files_scanned: int = 0
    n_platforms_checked: int = 0
    n_files_flow_analyzed: int = 0
    n_files_race_analyzed: int = 0
    n_files_shape_analyzed: int = 0
    n_suppressions: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        return 0 if self.clean else 1

    def counts_by_code(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return dict(sorted(counts.items()))

    def render_text(self) -> str:
        lines = []
        for finding in self.findings:
            lines.append(finding.render())
        summary = (
            f"chaos-lint: {len(self.findings)} finding(s) in "
            f"{self.n_files_scanned} file(s), "
            f"{self.n_platforms_checked} platform catalog(s), "
            f"{self.n_files_flow_analyzed} file(s) dataflow-analyzed, "
            f"{self.n_files_race_analyzed} file(s) race-analyzed, "
            f"{self.n_files_shape_analyzed} file(s) shape-analyzed"
        )
        if self.n_suppressions:
            summary += f", {self.n_suppressions} suppression(s)"
        if self.findings:
            breakdown = ", ".join(
                f"{code} x{count}"
                for code, count in self.counts_by_code().items()
            )
            summary += f" [{breakdown}]"
        lines.append(summary)
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(
            {
                "clean": self.clean,
                "n_files_scanned": self.n_files_scanned,
                "n_platforms_checked": self.n_platforms_checked,
                "n_files_flow_analyzed": self.n_files_flow_analyzed,
                "n_files_race_analyzed": self.n_files_race_analyzed,
                "n_files_shape_analyzed": self.n_files_shape_analyzed,
                "n_suppressions": self.n_suppressions,
                "counts_by_code": self.counts_by_code(),
                "rules": RULES,
                "findings": [f.to_dict() for f in self.findings],
            },
            indent=2,
        )

    def render_sarif(self, root: str | Path | None = None) -> str:
        from repro.analysis.sarif import render_sarif

        return render_sarif(self, root=root)

    def render(
        self, format: str = "text", root: str | Path | None = None
    ) -> str:
        if format == "json":
            return self.render_json()
        if format == "sarif":
            return self.render_sarif(root=root)
        if format == "text":
            return self.render_text()
        raise ValueError(f"unknown lint report format {format!r}")


def _resolve_scan_paths(
    root: str | Path | None, paths: Sequence[str | Path] | None
) -> list[Path]:
    if paths is None:
        base = Path(root) if root is not None else Path.cwd()
        scan = [base / name for name in DEFAULT_AST_ROOTS]
        return [p for p in scan if p.exists()]
    scan = [Path(p) for p in paths]
    missing = [str(p) for p in scan if not p.exists()]
    if missing:
        # A typo'd path in a CI invocation must not pass green.
        raise ValueError(
            "lint path(s) do not exist: " + ", ".join(missing)
        )
    return scan


def run_lint(
    root: str | Path | None = None,
    paths: Sequence[str | Path] | None = None,
    select: str | Iterable[str] | None = None,
    ignore: str | Iterable[str] | None = None,
    semantic: bool = True,
    ast_pass: bool = True,
    dataflow: bool = True,
    races: bool = True,
    shapes: bool = True,
) -> LintReport:
    """Run chaos-lint and return the (filtered) report.

    ``root`` anchors the default scan roots (``src``, ``benchmarks``,
    ``examples``); pass explicit ``paths`` to lint arbitrary files or
    directories instead.  The semantic layer is path-independent: it
    checks the in-process platform catalogs and model registry.
    ``dataflow=False`` skips the chaos-flow pass, ``races=False`` the
    chaos-race pass, ``shapes=False`` the chaos-shape pass.
    """
    from repro.platforms.specs import ALL_PLATFORMS

    report = LintReport()
    findings: list[Finding] = []
    if semantic:
        findings += check_all_platforms()
        report.n_platforms_checked = len(ALL_PLATFORMS)

    file_findings: list[Finding] = []
    suppressions: list[Suppression] = []
    if ast_pass or dataflow or races or shapes:
        scan = _resolve_scan_paths(root, paths)
        for path in iter_python_files(scan):
            source = path.read_text()
            suppressions += parse_suppressions(source, path)
            if ast_pass:
                report.n_files_scanned += 1
                file_findings += lint_source(source, path)
            if dataflow:
                report.n_files_flow_analyzed += 1
                file_findings += check_leakage_source(source, path)
                file_findings += check_units_source(source, path)
            if races:
                report.n_files_race_analyzed += 1
                file_findings += check_races_source(source, path)
            if shapes:
                report.n_files_shape_analyzed += 1
                file_findings += check_shapes_source(source, path)

    kept, hygiene = apply_suppressions(file_findings, suppressions)
    report.n_suppressions = len(suppressions)
    findings += kept + hygiene
    report.findings = filter_findings(findings, select=select, ignore=ignore)
    return report
