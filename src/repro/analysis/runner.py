"""chaos-lint orchestration: run every layer, filter, render a report.

``run_lint`` is what both the ``repro lint`` CLI subcommand and the
tier-1 regression test call; keeping it pure (no process exit, no
printing) makes the report easy to assert on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.astlint import DEFAULT_AST_ROOTS, lint_paths
from repro.analysis.findings import RULES, Finding, filter_findings
from repro.analysis.semantic import check_all_platforms


@dataclass
class LintReport:
    """Everything one chaos-lint invocation produced."""

    findings: list[Finding] = field(default_factory=list)
    n_files_scanned: int = 0
    n_platforms_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        return 0 if self.clean else 1

    def counts_by_code(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return dict(sorted(counts.items()))

    def render_text(self) -> str:
        lines = []
        for finding in self.findings:
            lines.append(finding.render())
        summary = (
            f"chaos-lint: {len(self.findings)} finding(s) in "
            f"{self.n_files_scanned} file(s), "
            f"{self.n_platforms_checked} platform catalog(s)"
        )
        if self.findings:
            breakdown = ", ".join(
                f"{code} x{count}"
                for code, count in self.counts_by_code().items()
            )
            summary += f" [{breakdown}]"
        lines.append(summary)
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(
            {
                "clean": self.clean,
                "n_files_scanned": self.n_files_scanned,
                "n_platforms_checked": self.n_platforms_checked,
                "counts_by_code": self.counts_by_code(),
                "rules": RULES,
                "findings": [f.to_dict() for f in self.findings],
            },
            indent=2,
        )


def run_lint(
    root: str | Path | None = None,
    paths: Sequence[str | Path] | None = None,
    select: str | Iterable[str] | None = None,
    ignore: str | Iterable[str] | None = None,
    semantic: bool = True,
    ast_pass: bool = True,
) -> LintReport:
    """Run chaos-lint and return the (filtered) report.

    ``root`` anchors the default scan roots (``src``, ``benchmarks``,
    ``examples``); pass explicit ``paths`` to lint arbitrary files or
    directories instead.  The semantic layer is path-independent: it
    checks the in-process platform catalogs and model registry.
    """
    from repro.platforms.specs import ALL_PLATFORMS

    report = LintReport()
    findings: list[Finding] = []
    if semantic:
        findings += check_all_platforms()
        report.n_platforms_checked = len(ALL_PLATFORMS)
    if ast_pass:
        if paths is None:
            base = Path(root) if root is not None else Path.cwd()
            scan = [base / name for name in DEFAULT_AST_ROOTS]
            scan = [p for p in scan if p.exists()]
        else:
            scan = [Path(p) for p in paths]
            missing = [str(p) for p in scan if not p.exists()]
            if missing:
                # A typo'd path in a CI invocation must not pass green.
                raise ValueError(
                    "lint path(s) do not exist: " + ", ".join(missing)
                )
        ast_findings, n_files = lint_paths(scan)
        findings += ast_findings
        report.n_files_scanned = n_files
    report.findings = filter_findings(findings, select=select, ignore=ignore)
    return report
