"""Control-flow graphs over Python AST, one per function (and module).

chaos-flow's dataflow analyses (:mod:`repro.analysis.dataflow`) need a
CFG, not a syntax tree: whether test-fold data reaches a ``fit`` call
depends on *which paths* an assignment survives, not on where it sits in
the source.  This builder produces intraprocedural CFGs with one
convention worth knowing:

**Compound statements appear in their header block only.**  An
``ast.If``/``ast.While``/``ast.For``/``ast.With``/``ast.Try`` node placed
in a block stands for *evaluating its header* (the test expression, the
iterable, the context managers); the statements of its body live in
separate blocks connected by edges.  Transfer functions must therefore
treat e.g. ``ast.For`` as "bind the target from one element of the
iterable" and never recurse into ``node.body``.

Loops are first-class: every block records the set of enclosing loop
header blocks (``BasicBlock.loops``), and ``CFG.loop_id_of`` maps a
``For``/``While`` header statement to its loop id.  The leakage analysis
uses this to tell "inside fold loop" apart from "after the fold loop".

**Interleaving points** (chaos-race).  In cooperative concurrency the
only places another coroutine can run are suspension points: ``await``
expressions, ``yield``/``yield from``, the implicit awaits in ``async
for``/``async with`` headers, and hand-offs to an executor.
:func:`interleaving_points` enumerates them for one (header-only)
statement, and :func:`cfg_interleaving_blocks` marks the blocks that
contain one — the R6xx race rules key their "can someone else run in
between?" question on exactly these points.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Iterator, List, Optional, Sequence, Tuple

_MATCH = getattr(ast, "Match", None)
_TRYSTAR = getattr(ast, "TryStar", None)


@dataclass
class BasicBlock:
    """A straight-line sequence of (header-only) statements."""

    index: int
    stmts: List[Any] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)
    loops: Tuple[int, ...] = ()
    """Indices of the loop-header blocks enclosing this block,
    outermost first.  The header block of a loop includes itself."""


@dataclass
class CFG:
    """One function's (or module's) control-flow graph."""

    name: str
    blocks: List[BasicBlock]
    entry: int
    exit: int
    lineno: int = 0
    _loop_ids: dict = field(default_factory=dict, repr=False)

    def loop_id_of(self, stmt: Any) -> Optional[int]:
        """Loop id (header block index) of a For/While header statement."""
        return self._loop_ids.get(id(stmt))

    def rpo(self) -> List[int]:
        """Reverse post-order of the blocks reachable from entry."""
        seen = set()
        order: List[int] = []

        def visit(index: int) -> None:
            stack = [(index, iter(self.blocks[index].succs))]
            seen.add(index)
            while stack:
                current, successors = stack[-1]
                advanced = False
                for succ in successors:
                    if succ not in seen:
                        seen.add(succ)
                        stack.append((succ, iter(self.blocks[succ].succs)))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(self.entry)
        return list(reversed(order))

    def statements(self) -> Iterator[Tuple[BasicBlock, Any]]:
        """Every (block, statement) pair, in block order."""
        for block in self.blocks:
            for stmt in block.stmts:
                yield block, stmt


class _Builder:
    """Accumulates blocks/edges while walking one statement list."""

    def __init__(self, name: str, lineno: int) -> None:
        self.name = name
        self.lineno = lineno
        self.blocks: List[BasicBlock] = []
        #: Stack of (loop header block, loop exit block) for break/continue.
        self.loop_stack: List[Tuple[int, int]] = []
        self.loop_ids: dict = {}
        self.entry = self.new_block()
        self.exit = self.new_block(loops=())

    def new_block(self, loops: Optional[Tuple[int, ...]] = None) -> int:
        if loops is None:
            loops = tuple(header for header, _ in self.loop_stack)
        block = BasicBlock(index=len(self.blocks), loops=loops)
        self.blocks.append(block)
        return block.index

    def add_edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)
            self.blocks[dst].preds.append(src)

    def add_stmt(self, block: int, stmt: Any) -> None:
        self.blocks[block].stmts.append(stmt)

    # -- statement dispatch ---------------------------------------------

    def build_body(
        self, stmts: Sequence[ast.stmt], current: Optional[int]
    ) -> Optional[int]:
        """Thread ``stmts`` from block ``current``; return the block where
        control continues, or None when every path terminated."""
        for stmt in stmts:
            if current is None:
                # Unreachable code after return/break/...; still give it
                # a block so its statements are visible to syntax-only
                # passes, but leave it disconnected.
                current = self.new_block()
            current = self._build_stmt(stmt, current)
        return current

    def _build_stmt(self, stmt: ast.stmt, current: int) -> Optional[int]:
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, current)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._build_loop(stmt, current)
        if isinstance(stmt, ast.Try) or (
            _TRYSTAR is not None and isinstance(stmt, _TRYSTAR)
        ):
            return self._build_try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self.add_stmt(current, stmt)
            return self.build_body(stmt.body, current)
        if _MATCH is not None and isinstance(stmt, _MATCH):
            return self._build_match(stmt, current)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self.add_stmt(current, stmt)
            self.add_edge(current, self.exit)
            return None
        if isinstance(stmt, ast.Break):
            self.add_stmt(current, stmt)
            if self.loop_stack:
                self.add_edge(current, self.loop_stack[-1][1])
            return None
        if isinstance(stmt, ast.Continue):
            self.add_stmt(current, stmt)
            if self.loop_stack:
                self.add_edge(current, self.loop_stack[-1][0])
            return None
        # Simple statements — including nested FunctionDef/ClassDef,
        # which bind a name here and get their own CFG elsewhere.
        self.add_stmt(current, stmt)
        return current

    def _build_if(self, stmt: ast.If, current: int) -> Optional[int]:
        self.add_stmt(current, stmt)
        then_start = self.new_block()
        self.add_edge(current, then_start)
        then_end = self.build_body(stmt.body, then_start)
        if stmt.orelse:
            else_start = self.new_block()
            self.add_edge(current, else_start)
            else_end = self.build_body(stmt.orelse, else_start)
        else:
            else_end = current
        if then_end is None and else_end is None:
            return None
        join = self.new_block()
        if then_end is not None:
            self.add_edge(then_end, join)
        if else_end is not None:
            self.add_edge(else_end, join)
        return join

    def _build_loop(self, stmt: ast.stmt, current: int) -> int:
        header = self.new_block()
        self.add_edge(current, header)
        # The header participates in its own loop (rebinds each round).
        exit_block = self.new_block()
        self.loop_stack.append((header, exit_block))
        self.blocks[header].loops = tuple(h for h, _ in self.loop_stack)
        self.loop_ids[id(stmt)] = header
        self.add_stmt(header, stmt)
        body_start = self.new_block()
        self.add_edge(header, body_start)
        body_end = self.build_body(stmt.body, body_start)
        if body_end is not None:
            self.add_edge(body_end, header)
        self.loop_stack.pop()
        self.add_edge(header, exit_block)
        orelse = getattr(stmt, "orelse", [])
        if orelse:
            else_end = self.build_body(orelse, exit_block)
            if else_end is not None:
                return else_end
        return exit_block

    def _build_try(self, stmt: ast.stmt, current: int) -> Optional[int]:
        body_start = self.new_block()
        self.add_edge(current, body_start)
        body_end = self.build_body(stmt.body, body_start)
        join = self.new_block()
        handler_sources = [body_start]
        if body_end is not None:
            handler_sources.append(body_end)
        for handler in stmt.handlers:
            handler_start = self.new_block()
            for source in handler_sources:
                self.add_edge(source, handler_start)
            handler_end = self.build_body(handler.body, handler_start)
            if handler_end is not None:
                self.add_edge(handler_end, join)
        if body_end is not None:
            else_end = (
                self.build_body(stmt.orelse, body_end)
                if stmt.orelse
                else body_end
            )
            if else_end is not None:
                self.add_edge(else_end, join)
        if not join_has_preds(self.blocks[join]):
            # Every path raised/returned; the finally body is still
            # built for visibility but control does not continue.
            if stmt.finalbody:
                self.build_body(stmt.finalbody, join)
            return None
        if stmt.finalbody:
            return self.build_body(stmt.finalbody, join)
        return join

    def _build_match(self, stmt: Any, current: int) -> Optional[int]:
        self.add_stmt(current, stmt)
        join = self.new_block()
        any_flow = False
        for case in stmt.cases:
            case_start = self.new_block()
            self.add_edge(current, case_start)
            case_end = self.build_body(case.body, case_start)
            if case_end is not None:
                self.add_edge(case_end, join)
                any_flow = True
        # A match without a catch-all can fall through.
        self.add_edge(current, join)
        del any_flow
        return join

    def finish(self, last: Optional[int]) -> CFG:
        if last is not None:
            self.add_edge(last, self.exit)
        return CFG(
            name=self.name,
            blocks=self.blocks,
            entry=self.entry,
            exit=self.exit,
            lineno=self.lineno,
            _loop_ids=self.loop_ids,
        )


def join_has_preds(block: BasicBlock) -> bool:
    return bool(block.preds)


def build_cfg(
    body: Sequence[ast.stmt], name: str = "<module>", lineno: int = 0
) -> CFG:
    """CFG for one statement list (a function body or a module body)."""
    builder = _Builder(name, lineno)
    last = builder.build_body(body, builder.entry)
    return builder.finish(last)


@dataclass
class FunctionUnit:
    """One analyzable scope: a function, method, or the module body."""

    qualname: str
    node: Optional[ast.AST]
    """The FunctionDef/AsyncFunctionDef node, or None for the module."""
    cfg: CFG

    @property
    def args(self) -> Optional[ast.arguments]:
        if self.node is None:
            return None
        return self.node.args


# ----------------------------------------------------------------------
# Interleaving points (await / yield / executor hand-off)
# ----------------------------------------------------------------------

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _stmt_header_exprs(stmt: ast.stmt) -> List[ast.expr]:
    """The expressions a (header-only) statement itself evaluates.

    Mirrors the CFG convention: compound statements contribute only
    their header (an ``ast.If`` its test, an ``ast.For`` its iterable);
    simple statements contribute their whole expression tree.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if _MATCH is not None and isinstance(stmt, _MATCH):
        return [stmt.subject]
    if isinstance(stmt, ast.Try) or (
        _TRYSTAR is not None and isinstance(stmt, _TRYSTAR)
    ):
        return []
    if isinstance(stmt, _SCOPE_NODES):
        # A nested def/class binds a name; its body is another scope.
        return []
    return [
        node for node in ast.iter_child_nodes(stmt)
        if isinstance(node, ast.expr)
    ]


def interleaving_points(
    stmt: ast.stmt,
    handoff_calls: Optional[frozenset] = None,
) -> List[ast.AST]:
    """Suspension points evaluated by one (header-only) statement.

    Returns the ``Await``/``Yield``/``YieldFrom`` nodes inside the
    statement's header expressions, the statement itself for ``async
    for``/``async with`` headers (their protocol methods are awaited),
    and any call whose target's last dotted segment is in
    ``handoff_calls`` (executor hand-offs like ``run_in_executor``).
    Nested function bodies are separate scopes and never contribute.
    """
    points: List[ast.AST] = []
    if isinstance(stmt, (ast.AsyncFor, ast.AsyncWith)):
        points.append(stmt)
    for expr in _stmt_header_exprs(stmt):
        for node in ast.walk(expr):
            if isinstance(node, (ast.Await, ast.Yield, ast.YieldFrom)):
                points.append(node)
            elif (
                handoff_calls is not None
                and isinstance(node, ast.Call)
            ):
                target = None
                if isinstance(node.func, ast.Attribute):
                    target = node.func.attr
                elif isinstance(node.func, ast.Name):
                    target = node.func.id
                if target is not None and target in handoff_calls:
                    points.append(node)
    return points


def stmt_interleaves(
    stmt: ast.stmt, handoff_calls: Optional[frozenset] = None
) -> bool:
    """Does evaluating this statement's header suspend the coroutine?"""
    return bool(interleaving_points(stmt, handoff_calls))


def cfg_interleaving_blocks(
    cfg: CFG, handoff_calls: Optional[frozenset] = None
) -> set:
    """Indices of blocks containing at least one interleaving point."""
    return {
        block.index
        for block in cfg.blocks
        if any(
            stmt_interleaves(stmt, handoff_calls) for stmt in block.stmts
        )
    }


def unit_has_interleaving(
    unit: "FunctionUnit", handoff_calls: Optional[frozenset] = None
) -> bool:
    """Can control ever leave this unit mid-body (async def, generator,
    or executor hand-off present)?"""
    if isinstance(unit.node, ast.AsyncFunctionDef):
        return True
    return any(
        stmt_interleaves(stmt, handoff_calls)
        for _, stmt in unit.cfg.statements()
    )


def iter_function_units(
    tree: ast.Module, module_name: str = "<module>"
) -> Iterator[FunctionUnit]:
    """Yield a FunctionUnit for the module body and every (nested)
    function, each with its own intraprocedural CFG."""
    yield FunctionUnit(
        qualname=module_name,
        node=None,
        cfg=build_cfg(tree.body, name=module_name, lineno=0),
    )

    def walk(node: ast.AST, prefix: str) -> Iterator[FunctionUnit]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                yield FunctionUnit(
                    qualname=qualname,
                    node=child,
                    cfg=build_cfg(
                        child.body, name=qualname, lineno=child.lineno
                    ),
                )
                yield from walk(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")
            else:
                yield from walk(child, prefix)

    yield from walk(tree, "")
