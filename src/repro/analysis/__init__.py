"""chaos-lint + chaos-flow: static analysis for the modeling pipeline.

Five layers (see ``docs/static_analysis.md``):

* a semantic checker that validates every platform's counter catalog
  (the co-dependency documentation Algorithm 1 step 2 relies on) and the
  model pipeline's registry/feature-set invariants;
* an AST pass over the source tree enforcing the determinism contract
  (seeded RNG streams, no float equality in experiments) and common
  Python footguns;
* chaos-flow: flow-sensitive intraprocedural dataflow analyses — a CFG
  builder (``cfg``), a generic fixpoint engine (``dataflow``), and the
  taint/leakage (L4xx) and physical-unit (U5xx) analyses built on them,
  driven by the API contracts in ``signatures``;
* chaos-race: concurrency-safety analysis (R6xx) — a module call graph
  with async coloring (``callgraph``), interleaving-point awareness in
  the CFG, the rules themselves (``races``), and a runtime event-loop
  sanitizer (``sanitizer``) behind ``repro serve/replay --sanitize``;
* chaos-shape: numeric-array analysis (N7xx) — abstract interpretation
  over a shape/dtype/contiguity lattice (``shapes``) against the
  declared array contracts in ``signatures``, paired with a runtime
  array sanitizer (``arraysan``) that cross-checks the same contracts
  at kernel boundaries during sanitized replays.

Inline suppressions (``# chaos: ignore[CODE] -- reason``) are honored
across all file-based layers; see ``suppress``.
"""

from repro.analysis.arraysan import (
    ArraySanitizer,
    ArrayViolation,
    contracted,
    hot_path,
    install_array_sanitizer,
)
from repro.analysis.astlint import lint_file, lint_paths, lint_source
from repro.analysis.callgraph import (
    CallGraph,
    CallSite,
    FunctionNode,
    build_callgraph,
    build_callgraph_source,
)
from repro.analysis.cfg import (
    CFG,
    BasicBlock,
    build_cfg,
    interleaving_points,
    iter_function_units,
    stmt_interleaves,
    unit_has_interleaving,
)
from repro.analysis.dataflow import (
    Analysis,
    DataflowResult,
    FixpointDiverged,
    run_forward,
)
from repro.analysis.findings import RULES, Finding, filter_findings
from repro.analysis.leakage import check_leakage_source
from repro.analysis.races import check_races_source
from repro.analysis.ruledocs import RULE_DOCS, RuleDoc, explain
from repro.analysis.runner import LintReport, run_lint
from repro.analysis.sanitizer import (
    LoopSanitizer,
    SanitizerConfig,
    install_sanitizer,
)
from repro.analysis.sarif import render_sarif
from repro.analysis.semantic import (
    check_all_platforms,
    check_catalog,
    check_feature_sets,
    check_model_registry,
    unit_of,
)
from repro.analysis.suppress import (
    Suppression,
    apply_suppressions,
    parse_suppressions,
)
from repro.analysis.shapes import (
    ArrayValue,
    ShapeAnalysis,
    Unifier,
    check_shapes_source,
)
from repro.analysis.signatures import ArrayContract, ArraySpec
from repro.analysis.units import check_units_source

__all__ = [
    "Analysis",
    "ArrayContract",
    "ArraySanitizer",
    "ArraySpec",
    "ArrayValue",
    "ArrayViolation",
    "BasicBlock",
    "CFG",
    "CallGraph",
    "CallSite",
    "DataflowResult",
    "Finding",
    "FixpointDiverged",
    "FunctionNode",
    "LintReport",
    "LoopSanitizer",
    "RULES",
    "RULE_DOCS",
    "RuleDoc",
    "SanitizerConfig",
    "ShapeAnalysis",
    "Suppression",
    "Unifier",
    "apply_suppressions",
    "build_callgraph",
    "build_callgraph_source",
    "build_cfg",
    "check_all_platforms",
    "check_catalog",
    "check_feature_sets",
    "check_leakage_source",
    "check_model_registry",
    "check_races_source",
    "check_shapes_source",
    "check_units_source",
    "contracted",
    "explain",
    "filter_findings",
    "hot_path",
    "install_array_sanitizer",
    "install_sanitizer",
    "interleaving_points",
    "iter_function_units",
    "lint_file",
    "lint_paths",
    "lint_source",
    "parse_suppressions",
    "render_sarif",
    "run_forward",
    "run_lint",
    "stmt_interleaves",
    "unit_has_interleaving",
]
