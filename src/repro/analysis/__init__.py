"""chaos-lint: static analysis for catalogs, pipelines, and determinism.

Two layers (see ``docs/static_analysis.md``):

* a semantic checker that validates every platform's counter catalog
  (the co-dependency documentation Algorithm 1 step 2 relies on) and the
  model pipeline's registry/feature-set invariants;
* an AST pass over the source tree enforcing the determinism contract
  (seeded RNG streams, no float equality in experiments) and common
  Python footguns.
"""

from repro.analysis.astlint import lint_file, lint_paths, lint_source
from repro.analysis.findings import RULES, Finding, filter_findings
from repro.analysis.runner import LintReport, run_lint
from repro.analysis.semantic import (
    check_all_platforms,
    check_catalog,
    check_feature_sets,
    check_model_registry,
    unit_of,
)

__all__ = [
    "RULES",
    "Finding",
    "LintReport",
    "check_all_platforms",
    "check_catalog",
    "check_feature_sets",
    "check_model_registry",
    "filter_findings",
    "lint_file",
    "lint_paths",
    "lint_source",
    "run_lint",
    "unit_of",
]
