"""Runtime concurrency sanitizer for the asyncio serving stack.

The static R6xx rules (:mod:`repro.analysis.races`) prove discipline
over what they can see; this module is the runtime counterpart that
catches what they cannot — third-party callbacks, data-dependent
blocking, coroutines leaked through dynamic dispatch.  It arms the
event loop's own debug machinery and funnels everything it reports
into one structured violation list:

* **slow callbacks** — ``loop.slow_callback_duration`` is lowered to
  the configured threshold and asyncio's "Executing ... took Ns"
  warnings are captured via a logging handler,
* **unawaited coroutines** — ``RuntimeWarning: coroutine ... was never
  awaited`` is forced to ``always`` and recorded (promoted from a
  warning users scroll past to a violation CI fails on),
* **loop exceptions** — unhandled exceptions reaching the loop's
  exception handler are recorded (and chained to the previous handler),
* **loop stalls** — an optional heartbeat task measures scheduling
  drift: if a ``sleep(dt)`` wakes up more than ``hang_threshold_s``
  late, something blocked the loop between beats.

Armed behind ``repro serve --sanitize`` and ``repro replay
--sanitize``; the replay path additionally asserts bit-identity, so CI
proves the sanitizer itself does not perturb scoring.
"""

from __future__ import annotations

import asyncio
import gc
import logging
import warnings
from dataclasses import dataclass, field
from types import TracebackType
from typing import Any, Callable, Dict, List, Optional, Type, Union

_ExceptionHandler = Callable[
    [asyncio.AbstractEventLoop, Dict[str, Any]], Any
]


@dataclass(frozen=True)
class SanitizerConfig:
    """Thresholds for the loop sanitizer."""

    slow_callback_s: float = 0.25
    """A callback holding the loop longer than this is a violation."""

    hang_threshold_s: float = 0.5
    """Heartbeat drift beyond this counts as a loop stall."""

    heartbeat_interval_s: float = 0.05
    """How often the heartbeat samples scheduling drift."""

    heartbeat: bool = True
    """Run the drift-measuring heartbeat task."""

    promote_unawaited: bool = True
    """Record 'coroutine was never awaited' warnings as violations."""


@dataclass
class Violation:
    """One sanitizer observation."""

    kind: str
    """``slow_callback`` | ``unawaited_coroutine`` | ``loop_exception``
    | ``loop_stall``."""

    detail: str
    seconds: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"kind": self.kind, "detail": self.detail}
        if self.seconds is not None:
            payload["seconds"] = round(self.seconds, 6)
        return payload


class _AsyncioLogHandler(logging.Handler):
    """Captures asyncio's slow-callback warnings into violations."""

    def __init__(self, sink: "LoopSanitizer") -> None:
        super().__init__(level=logging.WARNING)
        self._sink = sink

    def emit(self, record: logging.LogRecord) -> None:
        message = record.getMessage()
        if "took" in message and "Executing" in message:
            self._sink.violations.append(
                Violation("slow_callback", message)
            )


@dataclass
class LoopSanitizer:
    """Arms an event loop with the debug hooks described above.

    Use as a context manager around the serving/replay run, or call
    :meth:`install` / :meth:`uninstall` explicitly.  ``report()`` is
    JSON-safe and lands in replay telemetry under ``"sanitizer"``.
    """

    config: SanitizerConfig = field(default_factory=SanitizerConfig)
    violations: List[Violation] = field(default_factory=list)

    _loop: Optional[asyncio.AbstractEventLoop] = None
    _saved_debug: bool = False
    _saved_slow: float = 0.1
    _saved_handler: Optional[_ExceptionHandler] = None
    _saved_showwarning: Optional[Callable[..., Any]] = None
    _log_handler: Optional[_AsyncioLogHandler] = None
    _heartbeat_task: Optional["asyncio.Task[None]"] = None
    _max_drift_s: float = 0.0
    _installed: bool = False

    def install(self, loop: asyncio.AbstractEventLoop) -> "LoopSanitizer":
        """Arm every hook on ``loop``; idempotent per instance."""
        if self._installed:
            return self
        self._loop = loop
        self._saved_debug = loop.get_debug()
        self._saved_slow = loop.slow_callback_duration
        self._saved_handler = loop.get_exception_handler()
        loop.set_debug(True)
        loop.slow_callback_duration = self.config.slow_callback_s
        loop.set_exception_handler(self._on_loop_exception)

        self._log_handler = _AsyncioLogHandler(self)
        logging.getLogger("asyncio").addHandler(self._log_handler)

        if self.config.promote_unawaited:
            warnings.filterwarnings(
                "always", message=".*was never awaited.*"
            )
            self._saved_showwarning = warnings.showwarning
            setattr(warnings, "showwarning", self._on_warning)

        if self.config.heartbeat and loop.is_running():
            self._heartbeat_task = loop.create_task(self._heartbeat())
        self._installed = True
        return self

    def uninstall(self) -> None:
        """Disarm and restore the loop's previous debug settings."""
        if not self._installed or self._loop is None:
            return
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            self._heartbeat_task = None
        # Flush pending coroutine finalizers so "never awaited"
        # warnings fire while our hook is still installed.
        gc.collect()
        if self._saved_showwarning is not None:
            setattr(warnings, "showwarning", self._saved_showwarning)
            self._saved_showwarning = None
        if self._log_handler is not None:
            logging.getLogger("asyncio").removeHandler(self._log_handler)
            self._log_handler = None
        self._loop.set_exception_handler(self._saved_handler)
        self._loop.slow_callback_duration = self._saved_slow
        self._loop.set_debug(self._saved_debug)
        self._loop = None
        self._installed = False

    # -- hooks ---------------------------------------------------------

    def _on_loop_exception(
        self, loop: asyncio.AbstractEventLoop, context: Dict[str, Any]
    ) -> None:
        message = context.get("message") or "unhandled loop exception"
        exception = context.get("exception")
        if exception is not None:
            message = f"{message}: {exception!r}"
        self.violations.append(Violation("loop_exception", message))
        if self._saved_handler is not None:
            self._saved_handler(loop, context)
        else:
            loop.default_exception_handler(context)

    def _on_warning(
        self,
        message: Union[Warning, str],
        category: Type[Warning],
        filename: str,
        lineno: int,
        file: Optional[Any] = None,
        line: Optional[str] = None,
    ) -> None:
        text = str(message)
        if issubclass(category, RuntimeWarning) and "never awaited" in text:
            self.violations.append(
                Violation(
                    "unawaited_coroutine", f"{text} ({filename}:{lineno})"
                )
            )
            return
        if self._saved_showwarning is not None:
            self._saved_showwarning(
                message, category, filename, lineno, file, line
            )

    async def _heartbeat(self) -> None:
        assert self._loop is not None
        interval = self.config.heartbeat_interval_s
        try:
            while True:
                before = self._loop.time()
                await asyncio.sleep(interval)
                drift = self._loop.time() - before - interval
                if drift > self._max_drift_s:
                    self._max_drift_s = drift
                if drift > self.config.hang_threshold_s:
                    self.violations.append(Violation(
                        "loop_stall",
                        "heartbeat woke "
                        f"{drift:.3f}s late (threshold "
                        f"{self.config.hang_threshold_s}s); something "
                        "blocked the loop",
                        seconds=drift,
                    ))
        except asyncio.CancelledError:
            pass

    # -- reporting -----------------------------------------------------

    @property
    def ok(self) -> bool:
        return not self.violations

    def report(self) -> Dict[str, Any]:
        """JSON-safe summary for telemetry and CLI output."""
        by_kind: Dict[str, int] = {}
        for violation in self.violations:
            by_kind[violation.kind] = by_kind.get(violation.kind, 0) + 1
        return {
            "ok": self.ok,
            "n_violations": len(self.violations),
            "by_kind": by_kind,
            "max_heartbeat_drift_s": round(self._max_drift_s, 6),
            "violations": [v.to_dict() for v in self.violations],
            "config": {
                "slow_callback_s": self.config.slow_callback_s,
                "hang_threshold_s": self.config.hang_threshold_s,
                "heartbeat": self.config.heartbeat,
                "promote_unawaited": self.config.promote_unawaited,
            },
        }

    # -- context manager -----------------------------------------------

    def __enter__(self) -> "LoopSanitizer":
        loop = asyncio.get_event_loop_policy().get_event_loop()
        return self.install(loop)

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.uninstall()


def install_sanitizer(
    loop: asyncio.AbstractEventLoop,
    config: Optional[SanitizerConfig] = None,
) -> LoopSanitizer:
    """Convenience: build, install, and return a sanitizer."""
    sanitizer = LoopSanitizer(config=config or SanitizerConfig())
    return sanitizer.install(loop)
