"""Finding and rule-code vocabulary shared by every chaos-lint layer.

Rule codes are *stable*: tests, CI gates, and ``--select``/``--ignore``
filters key on them, so a code is never renumbered or reused.  Codes are
grouped by family:

* ``C1xx`` — counter-catalog semantic invariants (Algorithm 1 step 2
  depends on the co-dependency documentation being correct),
* ``M2xx`` — model-pipeline invariants (feature sets and the technique
  registry),
* ``A3xx`` — AST-level source rules (determinism contract and Python
  footguns),
* ``L4xx`` — chaos-flow taint/leakage dataflow rules (train/test
  separation; see :mod:`repro.analysis.leakage`),
* ``U5xx`` — chaos-flow physical-unit dataflow rules (DRE terms in
  watts, rates vs. cumulative counters; see
  :mod:`repro.analysis.units`),
* ``R6xx`` — chaos-race concurrency-safety rules (shared-state races
  across interleaving points, loop-blocking calls, coroutine hygiene;
  see :mod:`repro.analysis.races`),
* ``N7xx`` — chaos-shape numeric-array rules (dtype contract breaks,
  shape/broadcast mismatches, hidden copies and allocations in hot
  paths; see :mod:`repro.analysis.shapes`),
* ``W0xx`` — lint-infrastructure hygiene (inline suppressions that no
  longer suppress anything, or carry no justification).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

#: code -> one-line description of what the rule guards.
RULES: dict[str, str] = {
    "C101": "duplicate counter name in a catalog",
    "C102": "sum_of references a counter not defined in the catalog",
    "C103": "co-dependency (sum_of) graph contains a cycle",
    "C104": "sum counter and its parts are in different categories",
    "C105": "sum counter and its parts have inconsistent units",
    "C106": "counter declares a negative noise level",
    "C107": "derivation output cannot match the trace's n_seconds",
    "C108": "catalog name index is out of sync with its definitions",
    "M201": "feature set references a counter absent from the catalog",
    "M202": "model registry entry has no working fit implementation",
    "A301": "np.random.default_rng() called without a seed",
    "A302": "np.random.seed() reseeds the legacy global RNG",
    "A303": "float equality (==/!=) comparison in experiment code",
    "A304": "mutable default argument",
    "A305": "star import",
    "L401": "test-split data flows into a model fit call",
    "L402": "test-split or whole-dataset data flows into feature selection",
    "L403": "fit/preprocessing consumes the unsplit dataset next to a split",
    "L404": "fold-loop data escapes its loop into a later fit/selection",
    "U501": "arithmetic or comparison mixes incompatible physical units",
    "U502": "call argument unit contradicts the API signature",
    "U503": "cumulative counter used where a rate is expected",
    "U504": "assigned value disagrees with the name's unit suffix",
    "R601": "shared attribute read-modify-written across an await without a lock",
    "R602": "blocking call reachable from an async-colored function",
    "R603": "coroutine created but never awaited, gathered, or task-wrapped",
    "R604": "asyncio primitive created outside the event loop that uses it",
    "R605": "lock/socket/loop captured by a TaskSpec or executor submit",
    "N701": "silent dtype change crossing a kernel contract boundary",
    "N702": "Python-level loop over ndarray rows where a vectorized kernel exists",
    "N703": "hidden array copy inside a @hot_path function",
    "N704": "shape/broadcast mismatch against a declared array contract",
    "N705": "array allocation inside a @hot_path function",
    "N706": "non-contiguous operand reaching an einsum/BLAS kernel",
    "W001": "inline chaos: ignore comment suppresses nothing",
    "W002": "inline chaos: ignore comment carries no justification",
}


@dataclass(frozen=True)
class Finding:
    """One rule violation, locatable either in source or in a catalog."""

    code: str
    message: str
    location: str
    """``path:line`` for AST findings, ``platform:<key>`` for semantic."""

    context: dict = field(default_factory=dict, compare=False)
    """Extra machine-readable detail (counter name, rule inputs, ...)."""

    def __post_init__(self) -> None:
        if self.code not in RULES:
            raise ValueError(f"unknown rule code {self.code!r}")

    @property
    def rule(self) -> str:
        return RULES[self.code]

    def render(self) -> str:
        return f"{self.location}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "rule": self.rule,
            "message": self.message,
            "location": self.location,
            "context": dict(self.context),
        }


def normalize_codes(raw: str | Iterable[str] | None) -> tuple[str, ...]:
    """Parse a ``--select``/``--ignore`` value into code prefixes.

    Accepts a comma-separated string or an iterable; prefixes are matched
    case-insensitively (``--select C`` keeps every catalog rule).
    """
    if raw is None:
        return ()
    if isinstance(raw, str):
        parts: Iterable[str] = raw.split(",")
    else:
        parts = raw
    return tuple(p.strip().upper() for p in parts if p.strip())


def rule_families() -> dict[str, str]:
    """Family letter -> representative description, for error messages."""
    families: dict[str, str] = {}
    for code in RULES:
        families.setdefault(code[0], code)
    return families


def validate_code_prefixes(prefixes: Iterable[str]) -> None:
    """Reject prefixes that match no registered rule.

    ``--select Z`` silently selecting nothing is indistinguishable from
    a clean run — a typo'd CI gate would pass green forever.
    """
    for prefix in prefixes:
        if not any(code.startswith(prefix) for code in RULES):
            known = ", ".join(sorted(rule_families()))
            raise ValueError(
                f"unknown rule prefix {prefix!r}: matches no registered "
                f"rule (known families: {known}; see --list-rules)"
            )


def filter_findings(
    findings: list[Finding],
    select: str | Iterable[str] | None = None,
    ignore: str | Iterable[str] | None = None,
) -> list[Finding]:
    """Apply ruff-style prefix filters: select first, then ignore.

    Unknown prefixes raise :class:`ValueError` rather than silently
    matching nothing.
    """
    selected = normalize_codes(select)
    ignored = normalize_codes(ignore)
    validate_code_prefixes(selected)
    validate_code_prefixes(ignored)
    kept = []
    for finding in findings:
        if selected and not finding.code.startswith(selected):
            continue
        if ignored and finding.code.startswith(ignored):
            continue
        kept.append(finding)
    return kept
