"""Shared AST plumbing for environment-based dataflow analyses.

Both chaos-flow analyses (taint in :mod:`repro.analysis.leakage`, units
in :mod:`repro.analysis.units`) abstract a function as an *environment*
mapping variable names to lattice values.  This module factors out what
they share so each analysis only supplies expression evaluation and the
value lattice:

* :class:`EnvAnalysis` — a :class:`~repro.analysis.dataflow.Analysis`
  over ``dict[str, V]`` implementing the transfer function for every
  binding statement form (assignments, loop targets, ``with`` targets,
  mutation-style method calls), honoring the CFG's header-only
  convention for compound statements;
* :func:`header_exprs` — the expressions a header-only statement
  actually evaluates (an ``ast.If`` contributes its test, never its
  body);
* :func:`walk_calls` — every call site inside those expressions.
"""

from __future__ import annotations

import ast
from typing import Any, Callable, Dict, Generic, Iterator, List, Optional, TypeVar

from repro.analysis.cfg import CFG, FunctionUnit
from repro.analysis.dataflow import Analysis, run_forward
from repro.analysis.findings import Finding

V = TypeVar("V")

#: Mutating method names treated as "bind the receiver to the union of
#: itself and the arguments" — models ``parts.append(fold_data)``.
MUTATING_METHODS = frozenset({
    "append", "extend", "add", "update", "insert", "setdefault",
})


def header_exprs(stmt: ast.stmt) -> List[ast.expr]:
    """The expressions evaluated by ``stmt``'s header (bodies excluded)."""
    if isinstance(stmt, ast.Assign):
        return [stmt.value]
    if isinstance(stmt, ast.AnnAssign):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, ast.AugAssign):
        return [stmt.value]
    if isinstance(stmt, ast.Expr):
        return [stmt.value]
    if isinstance(stmt, ast.Return):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Assert):
        exprs = [stmt.test]
        if stmt.msg is not None:
            exprs.append(stmt.msg)
        return exprs
    if isinstance(stmt, ast.Raise):
        return [e for e in (stmt.exc, stmt.cause) if e is not None]
    return []


def walk_calls(stmt: ast.stmt) -> Iterator[ast.Call]:
    """Every call node inside the statement's header expressions."""
    for expr in header_exprs(stmt):
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                yield node


def target_names(target: ast.expr) -> List[str]:
    """Plain names bound by an assignment target (nested tuples too)."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, ast.Starred):
        return target_names(target.value)
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            names.extend(target_names(element))
        return names
    return []


class EnvAnalysis(Analysis, Generic[V]):
    """Forward analysis over variable environments ``dict[str, V]``.

    Subclasses provide the value lattice (:meth:`join_value`,
    :meth:`default_value`) and expression evaluation (:meth:`eval`);
    the statement dispatch below is shared.
    """

    def __init__(self, unit: FunctionUnit) -> None:
        self.unit = unit
        self.cfg = unit.cfg

    # -- value lattice ---------------------------------------------------

    def default_value(self) -> V:
        raise NotImplementedError

    def join_value(self, left: V, right: V) -> V:
        raise NotImplementedError

    def eval(self, expr: ast.expr, env: Dict[str, V]) -> V:
        raise NotImplementedError

    def element_of(self, value: V, stmt: ast.stmt) -> V:
        """Value of one element when iterating ``value`` (For targets)."""
        return value

    def aug_value(self, old: V, op: ast.operator, rhs: V) -> V:
        return self.join_value(old, rhs)

    def seed_param(self, name: str) -> V:
        """Initial value of a function parameter."""
        return self.default_value()

    # -- Analysis interface ----------------------------------------------

    def bottom(self) -> Dict[str, V]:
        return {}

    def entry_state(self, cfg: CFG) -> Dict[str, V]:
        del cfg
        env: Dict[str, V] = {}
        for arg in _all_args(self.unit.args):
            env[arg.arg] = self.seed_param(arg.arg)
        return env

    def join(
        self, left: Dict[str, V], right: Dict[str, V]
    ) -> Dict[str, V]:
        if not left:
            return dict(right)
        if not right:
            return dict(left)
        merged = dict(left)
        for name, value in right.items():
            if name in merged:
                merged[name] = self.join_value(merged[name], value)
            else:
                merged[name] = value
        return merged

    def transfer(self, state: Dict[str, V], stmt: Any) -> Dict[str, V]:
        env = dict(state)
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, value, env)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind(stmt.target, self.eval(stmt.value, env), env)
        elif isinstance(stmt, ast.AugAssign):
            rhs = self.eval(stmt.value, env)
            # Store-context targets evaluate fine as reads: eval() keys
            # on node structure, not expr_context.
            read = self.eval(stmt.target, env)
            self._bind(
                stmt.target, self.aug_value(read, stmt.op, rhs), env
            )
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            element = self.element_of(self.eval(stmt.iter, env), stmt)
            self._bind(stmt.target, element, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._bind(
                        item.optional_vars,
                        self.eval(item.context_expr, env),
                        env,
                    )
        elif isinstance(stmt, ast.Expr):
            self._mutation_effect(stmt.value, env)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            env[stmt.name] = self.default_value()
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        return env

    # -- binding helpers -------------------------------------------------

    def _bind(
        self, target: ast.expr, value: V, env: Dict[str, V]
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, ast.Starred):
            self._bind(target.value, value, env)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, value, env)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            # Weak update: mutating one slot taints the whole container.
            base = target.value
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if isinstance(base, ast.Name):
                old = env.get(base.id, self.default_value())
                env[base.id] = self.join_value(old, value)

    def _mutation_effect(
        self, expr: ast.expr, env: Dict[str, V]
    ) -> None:
        """``parts.append(x)`` joins x into parts (weak update)."""
        if not (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in MUTATING_METHODS
            and isinstance(expr.func.value, ast.Name)
        ):
            return
        receiver = expr.func.value.id
        value = env.get(receiver, self.default_value())
        for arg in expr.args:
            value = self.join_value(value, self.eval(arg, env))
        for keyword in expr.keywords:
            value = self.join_value(value, self.eval(keyword.value, env))
        env[receiver] = value


def _all_args(args: Optional[ast.arguments]) -> List[ast.arg]:
    if args is None:
        return []
    collected = list(args.posonlyargs) if hasattr(args, "posonlyargs") else []
    collected += list(args.args)
    if args.vararg is not None:
        collected.append(args.vararg)
    collected += list(args.kwonlyargs)
    if args.kwarg is not None:
        collected.append(args.kwarg)
    return collected


def check_function(
    unit: FunctionUnit,
    analysis: EnvAnalysis,
    check_stmt: Callable[..., List[Finding]],
) -> List[Finding]:
    """Fixpoint + a reporting walk: ``check_stmt(stmt, pre_state, block)``
    is called for every statement with the state holding just before it,
    and returns findings."""
    result = run_forward(unit.cfg, analysis)
    findings: List[Finding] = []
    for block in unit.cfg.blocks:
        state = result.block_in[block.index]
        for stmt in block.stmts:
            findings.extend(check_stmt(stmt, state, block))
            state = analysis.transfer(state, stmt)
    return findings
