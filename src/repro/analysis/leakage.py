"""Taint analysis for train/test leakage (rule family ``L4xx``).

CHAOS's accuracy numbers (Tables III/IV) rest on the paper's Section V
protocol: models are fit on one run's subsampled data and judged on
*disjoint* runs.  Nothing enforces that at runtime — a fold that feeds
test data into ``fit`` produces beautifully small DREs and no error.
This analysis tracks, flow-sensitively and per function, which values
derive from test splits, the unsplit dataset, or a fold-loop iteration,
and reports when such a value reaches a training-side sink.

Labels
------
* ``test`` — derived from a test split (``fold.test_runs``, any
  ``test_*``/``*_test`` name, or indexing with a test index),
* ``full`` — the whole dataset, before any split (parameters named
  ``runs``/``dataset``, ``DataRepository.runs(...)``).  Any subscript
  (slice or index) *sheds* this label: taking a subset is precisely
  what splitting means,
* ``("fold", loop_id)`` — bound inside fold-loop ``loop_id``; values
  carrying it after that loop exits are stale fold data.

Rules
-----
* ``L401`` — test-split data flows into a model/preprocessing ``fit``,
* ``L402`` — test-split or whole-dataset data flows into a
  feature-selection call,
* ``L403`` — a fit/preprocessing call consumes the whole dataset inside
  a function that also splits it (scaler-before-split),
* ``L404`` — fold-loop data escapes its loop into a later fit/selection
  call.

``L402``'s and ``L403``'s whole-dataset arm only fires in functions
that *also* split data (folds, ``train_``/``test_`` names): fitting on
everything you were given is legitimate in a selection-only helper and
a bug next to a cross-validation loop.  That scoping is what an
intraprocedural analysis can honestly claim.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Tuple, Union

from repro.analysis.cfg import BasicBlock, FunctionUnit, iter_function_units
from repro.analysis.findings import Finding
from repro.analysis.flowast import EnvAnalysis, check_function, walk_calls
from repro.analysis.signatures import (
    FOLD_SOURCE_CALLS,
    FULL_PARAM_NAMES,
    FULL_SOURCE_CALLS,
    call_target,
    is_fold_iterable_name,
    is_test_name,
    sink_kind,
)

TEST = "test"
TEST_INDEX = "test-index"
FULL = "full"

Label = Union[str, Tuple[str, int]]
Taint = FrozenSet[Label]

EMPTY: Taint = frozenset()
_TEST_TAINT: Taint = frozenset({TEST, TEST_INDEX})

#: Unwrapped when looking for a fold iterable under e.g. ``enumerate``.
_ITER_WRAPPERS = frozenset({
    "enumerate", "zip", "reversed", "list", "tuple", "sorted", "iter",
})


def _is_train_name(name: str) -> bool:
    lowered = name.lower().strip("_")
    return (
        lowered.startswith("train_")
        or lowered.endswith("_train")
        or lowered == "train"
    )


class TaintAnalysis(EnvAnalysis):
    """Forward may-taint analysis over one function's CFG."""

    def default_value(self) -> Taint:
        return EMPTY

    def join_value(self, left: Taint, right: Taint) -> Taint:
        return left | right

    def seed_param(self, name: str) -> Taint:
        if name in FULL_PARAM_NAMES:
            return frozenset({FULL})
        if is_test_name(name):
            return _TEST_TAINT
        return EMPTY

    def element_of(self, value: Taint, stmt: ast.stmt) -> Taint:
        loop_id = self.cfg.loop_id_of(stmt)
        if loop_id is not None and _is_fold_iterable(stmt.iter):
            return value | frozenset({("fold", loop_id)})
        return value

    # -- expression evaluation ------------------------------------------

    def eval(self, expr: ast.expr, env: Dict[str, Taint]) -> Taint:
        if expr is None:
            return EMPTY
        if isinstance(expr, ast.Name):
            taint = env.get(expr.id, EMPTY)
            if is_test_name(expr.id):
                taint = taint | _TEST_TAINT
            return taint
        if isinstance(expr, ast.Attribute):
            base = self.eval(expr.value, env)
            if is_test_name(expr.attr):
                return base | _TEST_TAINT
            if _is_train_name(expr.attr):
                # Selecting the training side sheds the whole-dataset
                # label but keeps fold provenance.
                return base - frozenset({FULL})
            return base
        if isinstance(expr, ast.Subscript):
            base = self.eval(expr.value, env)
            index = self.eval(expr.slice, env)
            taint = base - frozenset({FULL})
            if TEST_INDEX in index or TEST in index:
                taint = taint | frozenset({TEST})
            taint = taint | frozenset(
                label for label in index
                if isinstance(label, tuple) and label[0] == "fold"
            )
            return taint
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.IfExp):
            return self.eval(expr.body, env) | self.eval(expr.orelse, env)
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._eval_comprehension(expr, [expr.elt], env)
        if isinstance(expr, ast.DictComp):
            return self._eval_comprehension(
                expr, [expr.key, expr.value], env
            )
        if isinstance(expr, ast.Lambda):
            return EMPTY
        if isinstance(expr, ast.Constant):
            return EMPTY
        if isinstance(expr, ast.Starred):
            return self.eval(expr.value, env)
        if isinstance(expr, ast.Slice):
            taint = EMPTY
            for part in (expr.lower, expr.upper, expr.step):
                if part is not None:
                    taint = taint | self.eval(part, env)
            return taint
        # Generic fallback: union over child expressions (BinOp, BoolOp,
        # Compare, Tuple, List, Set, Dict, UnaryOp, JoinedStr, Await...).
        taint = EMPTY
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                taint = taint | self.eval(child, env)
        return taint

    def _eval_call(self, call: ast.Call, env: Dict[str, Taint]) -> Taint:
        target = call_target(call.func)
        if target in FULL_SOURCE_CALLS:
            return frozenset({FULL})
        if target in FOLD_SOURCE_CALLS:
            return EMPTY
        taint = EMPTY
        if isinstance(call.func, ast.Attribute):
            taint = taint | self.eval(call.func.value, env)
        for arg in call.args:
            taint = taint | self.eval(arg, env)
        for keyword in call.keywords:
            taint = taint | self.eval(keyword.value, env)
        return taint

    def _eval_comprehension(
        self, node: ast.expr, results: List[ast.expr], env: Dict[str, Taint]
    ) -> Taint:
        scope = dict(env)
        for generator in node.generators:
            element = self.eval(generator.iter, scope)
            self._bind(generator.target, element, scope)
        taint = EMPTY
        for result in results:
            taint = taint | self.eval(result, scope)
        return taint


def _is_fold_iterable(expr: ast.expr) -> bool:
    """Does this iterable yield cross-validation folds?"""
    if isinstance(expr, ast.Call):
        target = call_target(expr.func)
        if target in FOLD_SOURCE_CALLS:
            return True
        if target in _ITER_WRAPPERS:
            return any(_is_fold_iterable(arg) for arg in expr.args)
        return False
    if isinstance(expr, ast.Name):
        return is_fold_iterable_name(expr.id)
    if isinstance(expr, ast.Attribute):
        return is_fold_iterable_name(expr.attr)
    return False


def _has_split_context(tree: ast.AST) -> bool:
    """Does this function also split data (folds / train / test names)?"""
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.arg):
            name = node.arg
        elif isinstance(node, ast.Call):
            target = call_target(node.func)
            if target in FOLD_SOURCE_CALLS or target == "Fold":
                return True
            continue
        else:
            continue
        if is_test_name(name) or _is_train_name(name):
            return True
        if name in ("fold", "folds") or is_fold_iterable_name(name):
            return True
    return False


class _LeakageChecker:
    def __init__(
        self, path: str, unit: FunctionUnit, split_context: bool
    ) -> None:
        self.path = path
        self.unit = unit
        self.split_context = split_context
        self.analysis = TaintAnalysis(unit)
        self._seen: set = set()

    def run(self) -> List[Finding]:
        return check_function(self.unit, self.analysis, self._check_stmt)

    def _check_stmt(
        self, stmt: ast.stmt, state: Dict[str, Taint], block: BasicBlock
    ) -> List[Finding]:
        findings: List[Finding] = []
        for call in walk_calls(stmt):
            kind = sink_kind(call.func)
            if kind is None:
                continue
            taint = EMPTY
            for arg in call.args:
                taint = taint | self.analysis.eval(arg, state)
            for keyword in call.keywords:
                taint = taint | self.analysis.eval(keyword.value, state)
            findings.extend(self._judge(call, kind, taint, block))
        return findings

    def _judge(
        self, call: ast.Call, kind: str, taint: Taint, block: BasicBlock
    ) -> List[Finding]:
        findings: List[Finding] = []
        target = call_target(call.func) or "<call>"
        escaped = [
            label for label in taint
            if isinstance(label, tuple)
            and label[0] == "fold"
            and label[1] not in block.loops
        ]
        if TEST in taint:
            code = "L402" if kind == "select" else "L401"
            findings.append(self._finding(
                code, call,
                f"test-split data reaches {target}() — the "
                f"{'selection' if kind == 'select' else 'training'} side "
                "must only ever see training folds",
            ))
        if FULL in taint and self.split_context:
            if kind == "select":
                findings.append(self._finding(
                    "L402", call,
                    f"feature selection ({target}()) sees the whole "
                    "dataset in a function that also splits it; select "
                    "on the training side of the split",
                ))
            else:
                findings.append(self._finding(
                    "L403", call,
                    f"{target}() is fit on the unsplit dataset in a "
                    "function that also splits it; fit after splitting, "
                    "on the training side only",
                ))
        if escaped:
            findings.append(self._finding(
                "L404", call,
                f"data bound inside a fold loop reaches {target}() "
                "after the loop exited; fold-scoped values must not be "
                "reused across folds",
            ))
        return findings

    def _finding(
        self, code: str, call: ast.Call, message: str
    ) -> Optional[Finding]:
        key = (code, call.lineno, call.col_offset)
        if key in self._seen:
            return None
        self._seen.add(key)
        return Finding(
            code,
            message,
            f"{self.path}:{call.lineno}",
            context={"function": self.unit.qualname},
        )

    # check_function extends with the list _judge returns; filter Nones.


def check_leakage_source(
    source: str, path: Union[str, Path]
) -> List[Finding]:
    """L4xx findings for one module's source text."""
    path = Path(path)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        raise ValueError(f"cannot parse {path}: {error}") from error
    findings: List[Finding] = []
    for unit in iter_function_units(tree):
        if unit.node is not None:
            split = _has_split_context(unit.node)
        else:
            # Module scope: judge only top-level statements, not the
            # bodies of the functions defined in it.
            split = any(
                _has_split_context(stmt)
                for stmt in tree.body
                if not isinstance(
                    stmt,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                )
            )
        checker = _LeakageChecker(str(path), unit, split_context=split)
        findings.extend(f for f in checker.run() if f is not None)
    return findings
