"""Rule documentation table: one source of truth for ``repro lint
--explain CODE`` and the rule tables in ``docs/static_analysis.md``.

Every entry carries the rationale and a minimal bad/good pair.  The
concurrency (R6xx) and numeric-array (N7xx) families get full entries
here; older families keep their one-line description from
:data:`repro.analysis.findings.RULES` and point at the docs section
that discusses them in prose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.findings import RULES


@dataclass(frozen=True)
class RuleDoc:
    """Documentation for one rule code."""

    code: str
    summary: str
    rationale: str
    bad: str
    good: str

    def render(self) -> str:
        lines = [
            f"{self.code}: {self.summary}",
            "",
            self.rationale,
            "",
            "Bad:",
            *(f"    {line}" for line in self.bad.splitlines()),
            "",
            "Good:",
            *(f"    {line}" for line in self.good.splitlines()),
        ]
        return "\n".join(lines)


RULE_DOCS: Dict[str, RuleDoc] = {
    doc.code: doc
    for doc in [
        RuleDoc(
            code="R601",
            summary=RULES["R601"],
            rationale=(
                "Between a read of shared state and the write that "
                "depends on it, every await/yield/executor hand-off is "
                "a point where another coroutine may run and update the "
                "same attribute; the later write then clobbers that "
                "update. The attributes that count as shared are "
                "registered in signatures.SHARED_STATE_ATTRS. Hold an "
                "asyncio.Lock across the read-modify-write, or swap the "
                "value into a local before suspending."
            ),
            bad=(
                "task = self._tick_task      # read\n"
                "await task                  # interleaving point\n"
                "self._tick_task = None      # write clobbers a restart"
            ),
            good=(
                "task, self._tick_task = self._tick_task, None\n"
                "await task                  # state settled pre-await"
            ),
        ),
        RuleDoc(
            code="R602",
            summary=RULES["R602"],
            rationale=(
                "A function is async-colored if it is an async def or "
                "is transitively called by one within the module; it "
                "may run on the event loop, where a blocking call "
                "(time.sleep, sync subprocess/socket I/O, open, "
                "Future.result()) stalls every session the loop "
                "serves. The engine's worker modules define no "
                "coroutines, so their deliberate blocking calls are "
                "out of scope by construction."
            ),
            bad=(
                "async def tick(self):\n"
                "    time.sleep(0.1)   # freezes every session"
            ),
            good=(
                "async def tick(self):\n"
                "    await asyncio.sleep(0.1)"
            ),
        ),
        RuleDoc(
            code="R603",
            summary=RULES["R603"],
            rationale=(
                "Calling an async def returns a coroutine object; "
                "nothing runs until it is awaited, gathered, or wrapped "
                "in a task. A discarded coroutine is dead code that "
                "looks alive — the call site reads as if the work "
                "happened."
            ),
            bad=(
                "self._poll_registry()        # returns a coroutine,\n"
                "                             # never runs"
            ),
            good=(
                "await self._poll_registry()\n"
                "# or: asyncio.create_task(self._poll_registry())"
            ),
        ),
        RuleDoc(
            code="R604",
            summary=RULES["R604"],
            rationale=(
                "asyncio primitives (Lock, Event, Queue, ...) bind to "
                "an event loop. Created at module scope — or in a sync "
                "function before asyncio.run() starts the loop — they "
                "bind to no loop or the wrong one, and modern Python "
                "raises once they are shared across loops. Create them "
                "inside the coroutine or server object that owns them."
            ),
            bad=(
                "STOP = asyncio.Event()       # module scope, no loop\n"
                "def main():\n"
                "    asyncio.run(serve(STOP))"
            ),
            good=(
                "async def serve():\n"
                "    stop = asyncio.Event()   # bound to running loop"
            ),
        ),
        RuleDoc(
            code="R605",
            summary=RULES["R605"],
            rationale=(
                "Engine TaskSpec payloads and executor submissions "
                "cross a process boundary by pickling (or fork). "
                "Locks, sockets, stream reader/writer halves, open "
                "handles, and event loops do not survive that "
                "boundary — they fail to pickle or arrive broken. "
                "Pass plain data and re-open resources in the worker."
            ),
            bad=(
                "lock = threading.Lock()\n"
                "pool.submit(work, lock)      # unpicklable capture"
            ),
            good=(
                "pool.submit(work, key)       # plain data; the worker\n"
                "                             # makes its own lock"
            ),
        ),
        RuleDoc(
            code="N701",
            summary=RULES["N701"],
            rationale=(
                "Every kernel in the scoring path is contracted to "
                "float64 (signatures.ARRAY_CONTRACTS). A float32 "
                "operand crossing that boundary is silently upcast — "
                "no error, same watts to three decimals — but the "
                "rounding of every reduction changes, which breaks the "
                "bit-for-bit online == offline replay gate. Keep "
                "arrays float64 end to end; cast at ingest, not at the "
                "kernel."
            ),
            bad=(
                "row = np.asarray(values, dtype=np.float32)\n"
                "power = matvec(design, row)   # silent upcast"
            ),
            good=(
                "row = np.asarray(values, dtype=np.float64)\n"
                "power = matvec(design, row)"
            ),
        ),
        RuleDoc(
            code="N702",
            summary=RULES["N702"],
            rationale=(
                "Looping over the rows of a matrix and calling a "
                "vectorized kernel per row computes the same values as "
                "one whole-matrix call (the kernels are partition-"
                "invariant by design) at tens to hundreds of times the "
                "cost — per-call Python overhead, per-row dispatch, no "
                "cache reuse. Call the kernel once on the full matrix."
            ),
            bad=(
                "for row in design:\n"
                "    out.append(matvec(bases, row))"
            ),
            good="out = matvec(design, coefficients)",
        ),
        RuleDoc(
            code="N703",
            summary=RULES["N703"],
            rationale=(
                "A @hot_path function runs per tick for every "
                "connected machine. Fancy indexing, concatenate, "
                "vstack, and ascontiguousarray each materialize a "
                "fresh array, so a hidden copy there turns the hot "
                "path into an allocator: per-tick garbage, memory "
                "bandwidth spent on moving unchanged data, and jitter "
                "from the collector. Restructure so the hot path works "
                "in preallocated storage."
            ),
            bad=(
                "@hot_path\n"
                "def tick(buf, new):\n"
                "    buf = np.concatenate([buf, new])  # copy per tick"
            ),
            good=(
                "@hot_path\n"
                "def tick(ring, new):\n"
                "    ring[head] = new                  # write in place"
            ),
        ),
        RuleDoc(
            code="N704",
            summary=RULES["N704"],
            rationale=(
                "Shape errors in numpy rarely fail loudly: a wrong "
                "rank against a declared contract, two arguments "
                "disagreeing on a shared symbolic dim like (n, k) vs "
                "(k,), or a lucky broadcast can all produce a result "
                "of plausible shape and silently wrong values. The "
                "contract in signatures.ARRAY_CONTRACTS names each "
                "dim; the analysis unifies them across a call's "
                "arguments and flags any concrete conflict."
            ),
            bad=(
                "matvec(design,            # (n, 4)\n"
                "       np.zeros(3))       # k=4 vs k=3 conflict"
            ),
            good=(
                "matvec(design,            # (n, 4)\n"
                "       np.zeros(4))"
            ),
        ),
        RuleDoc(
            code="N705",
            summary=RULES["N705"],
            rationale=(
                "np.zeros/empty/arange/... inside a @hot_path function "
                "allocates a fresh buffer on every tick. Allocation "
                "cost scales with connected machines, fragments the "
                "heap, and is the single most common source of "
                "latency jitter in per-tick scoring. Allocate once "
                "outside the hot path and fill in place."
            ),
            bad=(
                "@hot_path\n"
                "def tick(rows):\n"
                "    scratch = np.zeros(len(rows))  # per-tick alloc"
            ),
            good=(
                "scratch = np.zeros(capacity)  # once, at setup\n"
                "@hot_path\n"
                "def tick(rows):\n"
                "    scratch[:len(rows)] = 0.0"
            ),
        ),
        RuleDoc(
            code="N706",
            summary=RULES["N706"],
            rationale=(
                "einsum/BLAS kernels assume C-contiguous operands; "
                "handed a transposed or strided view they either "
                "stride (slow, and in BLAS's case with a different "
                "reduction order, breaking batch invariance) or "
                "silently copy (a hidden allocation). A .T, a step "
                "slice, or a transpose() upstream is enough. Make the "
                "operand contiguous once, outside the kernel call."
            ),
            bad="power = matvec(design.T, weights)  # strided view",
            good=(
                "design_t = np.ascontiguousarray(design.T)  # once\n"
                "power = matvec(design_t, weights)"
            ),
        ),
        RuleDoc(
            code="W001",
            summary=RULES["W001"],
            rationale=(
                "An inline '# chaos: ignore[CODE]' that no longer "
                "matches any finding on its line is stale: either the "
                "defect was fixed (delete the comment) or the code "
                "moved (the suppression now hides nothing and will "
                "silently swallow a future finding)."
            ),
            bad="x = f()  # chaos: ignore[R601]  (line no longer races)",
            good="x = f()",
        ),
        RuleDoc(
            code="W002",
            summary=RULES["W002"],
            rationale=(
                "Suppressions are audit records. One without a '-- "
                "reason' tail tells the next reader nothing about why "
                "the finding is acceptable, so it cannot be reviewed "
                "or retired."
            ),
            bad="await q.put(x)  # chaos: ignore[R601]",
            good=(
                "await q.put(x)  # chaos: ignore[R601] -- single "
                "producer, no concurrent writer"
            ),
        ),
    ]
}


def explain(code: str) -> Optional[str]:
    """Render the documentation for ``code``; ``None`` if unknown.

    Codes without a full :class:`RuleDoc` entry fall back to their
    one-line description plus a docs pointer.
    """
    normalized = code.strip().upper()
    doc = RULE_DOCS.get(normalized)
    if doc is not None:
        return doc.render()
    if normalized in RULES:
        return (
            f"{normalized}: {RULES[normalized]}\n\n"
            "See docs/static_analysis.md for the full discussion of "
            "this rule family."
        )
    return None
