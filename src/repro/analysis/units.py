"""Physical-unit dataflow analysis (rule family ``U5xx``).

DRE = rMSE / (P_max − P_idle) is only the paper's Eq. 6 if every term
is in watts; feed the denominator joules (an energy total) or a
cumulative counter where a rate belongs and the number still computes,
just means nothing.  This analysis assigns abstract physical units to
values — from the tree's naming convention (``power_w``, ``duration_s``,
``pages_per_sec``) and from the API contracts in
:mod:`repro.analysis.signatures` — propagates them through assignments
and arithmetic, and reports dimensional nonsense.

The value lattice is flat: unknown-yet (bottom, absent from the
environment), one concrete unit, or ``top`` (conflicting paths).
Nothing is reported unless *both* sides of an operation carry concrete
units, so an unannotated value can never create a false positive.

Rules
-----
* ``U501`` — ``+``/``-``/comparison mixes incompatible units
  (watts + joules, seconds < hertz),
* ``U502`` — a call argument's unit contradicts the API signature (or a
  unit-suffixed keyword): joules passed to ``dynamic_range_error``'s
  watts-typed ``idle_power``,
* ``U503`` — a cumulative counter used where a rate is expected,
* ``U504`` — a value assigned to a name whose unit suffix disagrees
  (``energy_j = power_w`` without integrating over time).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.analysis.cfg import BasicBlock, FunctionUnit, iter_function_units
from repro.analysis.findings import Finding
from repro.analysis.flowast import EnvAnalysis, check_function, header_exprs
from repro.analysis.signatures import (
    BYTES_RATE,
    CUMULATIVE,
    DIMENSIONLESS,
    DIV_TABLE,
    MUL_TABLE,
    RATE,
    SQRT_CALLS,
    UNIT_PRESERVING_CALLS,
    UNIT_PRESERVING_METHODS,
    WATTS,
    WATTS_SQ,
    call_target,
    unit_from_name,
    unit_signature,
)

#: Top of the flat lattice: reachable with conflicting/unknown units.
TOP = "?"

Unit = str
_RATES = frozenset({RATE, BYTES_RATE})


def join_unit(left: Unit, right: Unit) -> Unit:
    if left == right:
        return left
    return TOP


def is_concrete(unit: Optional[Unit]) -> bool:
    return unit is not None and unit != TOP


class UnitAnalysis(EnvAnalysis):
    """Forward unit inference over one function's CFG."""

    def default_value(self) -> Unit:
        return TOP

    def join_value(self, left: Unit, right: Unit) -> Unit:
        return join_unit(left, right)

    def seed_param(self, name: str) -> Unit:
        return unit_from_name(name) or TOP

    def aug_value(self, old: Unit, op: ast.operator, rhs: Unit) -> Unit:
        return _binop_unit(old, op, rhs)

    # -- expression evaluation ------------------------------------------

    def eval(self, expr: ast.expr, env: Dict[str, Unit]) -> Unit:
        if expr is None:
            return TOP
        if isinstance(expr, ast.Name):
            if expr.id in env:
                return env[expr.id]
            return unit_from_name(expr.id) or TOP
        if isinstance(expr, ast.Attribute):
            return unit_from_name(expr.attr) or TOP
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.BinOp):
            return _binop_unit(
                self.eval(expr.left, env),
                expr.op,
                self.eval(expr.right, env),
            )
        if isinstance(expr, ast.UnaryOp):
            return self.eval(expr.operand, env)
        if isinstance(expr, ast.IfExp):
            return join_unit(
                self.eval(expr.body, env), self.eval(expr.orelse, env)
            )
        if isinstance(expr, ast.Subscript):
            # One element of a homogeneous container keeps its unit.
            return self.eval(expr.value, env)
        if isinstance(expr, ast.Starred):
            return self.eval(expr.value, env)
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
            units = [self.eval(element, env) for element in expr.elts]
            concrete = [unit for unit in units if is_concrete(unit)]
            if concrete and all(u == concrete[0] for u in concrete) and (
                len(concrete) == len(units)
            ):
                return concrete[0]
            return TOP
        return TOP

    def _eval_call(self, call: ast.Call, env: Dict[str, Unit]) -> Unit:
        signature = unit_signature(call.func)
        if signature is not None and signature.returns is not None:
            return signature.returns
        target = call_target(call.func)
        if target in SQRT_CALLS and call.args:
            inner = self.eval(call.args[0], env)
            return WATTS if inner == WATTS_SQ else TOP
        if target in UNIT_PRESERVING_CALLS and call.args:
            return self.eval(call.args[0], env)
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in UNIT_PRESERVING_METHODS
        ):
            return self.eval(call.func.value, env)
        return TOP


def _binop_unit(left: Unit, op: ast.operator, right: Unit) -> Unit:
    if not (is_concrete(left) and is_concrete(right)):
        return TOP
    if isinstance(op, (ast.Add, ast.Sub)):
        return left if left == right else TOP
    if isinstance(op, ast.Mult):
        if left == DIMENSIONLESS:
            return right
        if right == DIMENSIONLESS:
            return left
        return MUL_TABLE.get((left, right), TOP)
    if isinstance(op, (ast.Div, ast.FloorDiv)):
        if left == right:
            return DIMENSIONLESS
        if right == DIMENSIONLESS:
            return left
        return DIV_TABLE.get((left, right), TOP)
    if isinstance(op, ast.Mod):
        return left if left == right else TOP
    if isinstance(op, ast.Pow):
        return WATTS_SQ if left == WATTS else TOP
    return TOP


def _mismatch_code(expected: Unit, actual: Unit) -> str:
    """U503 for the cumulative-vs-rate confusion, U501/U502 otherwise."""
    pair = {expected, actual}
    if CUMULATIVE in pair and pair & _RATES:
        return "U503"
    return ""


class _UnitChecker:
    def __init__(self, path: str, unit: FunctionUnit) -> None:
        self.path = path
        self.unit = unit
        self.analysis = UnitAnalysis(unit)
        self._seen: set = set()

    def run(self) -> List[Finding]:
        return check_function(self.unit, self.analysis, self._check_stmt)

    def _check_stmt(
        self, stmt: ast.stmt, state: Dict[str, Unit], block: BasicBlock
    ) -> List[Finding]:
        del block
        findings: List[Finding] = []
        for expr in header_exprs(stmt):
            for node in ast.walk(expr):
                if isinstance(node, ast.BinOp) and isinstance(
                    node.op, (ast.Add, ast.Sub)
                ):
                    findings.extend(self._check_arith(node, state))
                elif isinstance(node, ast.Compare):
                    findings.extend(self._check_compare(node, state))
                elif isinstance(node, ast.Call):
                    findings.extend(self._check_call(node, state))
        findings.extend(self._check_assignment(stmt, state))
        return findings

    # -- U501: incompatible arithmetic ----------------------------------

    def _check_arith(
        self, node: ast.BinOp, state: Dict[str, Unit]
    ) -> List[Finding]:
        left = self.analysis.eval(node.left, state)
        right = self.analysis.eval(node.right, state)
        if is_concrete(left) and is_concrete(right) and left != right:
            op = "+" if isinstance(node.op, ast.Add) else "-"
            code = _mismatch_code(left, right) or "U501"
            return self._emit(
                code, node,
                f"'{op}' mixes {left} and {right}; convert one side "
                "before combining",
            )
        return []

    def _check_compare(
        self, node: ast.Compare, state: Dict[str, Unit]
    ) -> List[Finding]:
        findings: List[Finding] = []
        operands = [node.left, *node.comparators]
        units = [self.analysis.eval(o, state) for o in operands]
        for (a_unit, b_unit) in zip(units, units[1:]):
            if (
                is_concrete(a_unit)
                and is_concrete(b_unit)
                and a_unit != b_unit
            ):
                code = _mismatch_code(a_unit, b_unit) or "U501"
                findings.extend(self._emit(
                    code, node,
                    f"comparison mixes {a_unit} and {b_unit}",
                ))
        return findings

    # -- U502/U503: call arguments vs signature -------------------------

    def _check_call(
        self, call: ast.Call, state: Dict[str, Unit]
    ) -> List[Finding]:
        findings: List[Finding] = []
        signature = unit_signature(call.func)
        target = call_target(call.func) or "<call>"
        for position, arg in enumerate(call.args):
            expected = (
                signature.expected_for(position, None)
                if signature is not None
                else None
            )
            findings.extend(self._check_arg(
                call, target, arg, expected, f"argument {position + 1}",
                state,
            ))
        for keyword in call.keywords:
            if keyword.arg is None:
                continue
            expected = None
            if signature is not None:
                expected = signature.expected_for(-1, keyword.arg)
            if expected is None:
                # Unit-suffixed keywords are contracts even without a
                # registry entry: `sample_period_s=` expects seconds.
                expected = unit_from_name(keyword.arg)
            findings.extend(self._check_arg(
                call, target, keyword.value, expected,
                f"keyword '{keyword.arg}'", state,
            ))
        return findings

    def _check_arg(
        self,
        call: ast.Call,
        target: str,
        arg: ast.expr,
        expected: Optional[Unit],
        where: str,
        state: Dict[str, Unit],
    ) -> List[Finding]:
        if expected is None:
            return []
        actual = self.analysis.eval(arg, state)
        if not is_concrete(actual) or actual == expected:
            return []
        code = _mismatch_code(expected, actual) or "U502"
        return self._emit(
            code, call,
            f"{target}() expects {expected} for {where}, got {actual}",
        )

    # -- U504: assignment vs name suffix --------------------------------

    def _check_assignment(
        self, stmt: ast.stmt, state: Dict[str, Unit]
    ) -> List[Finding]:
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            return []
        actual = self.analysis.eval(value, state)
        if not is_concrete(actual):
            return []
        findings: List[Finding] = []
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            declared = unit_from_name(target.id)
            if declared is None or declared == actual:
                continue
            code = _mismatch_code(declared, actual) or "U504"
            findings.extend(self._emit(
                code, target,
                f"'{target.id}' declares {declared} by its suffix but "
                f"is assigned {actual}",
            ))
        return findings

    def _emit(
        self, code: str, node: ast.AST, message: str
    ) -> List[Finding]:
        key = (code, node.lineno, node.col_offset)
        if key in self._seen:
            return []
        self._seen.add(key)
        return [Finding(
            code,
            message,
            f"{self.path}:{node.lineno}",
            context={"function": self.unit.qualname},
        )]


def check_units_source(
    source: str, path: Union[str, Path]
) -> List[Finding]:
    """U5xx findings for one module's source text."""
    path = Path(path)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        raise ValueError(f"cannot parse {path}: {error}") from error
    findings: List[Finding] = []
    for unit in iter_function_units(tree):
        findings.extend(_UnitChecker(str(path), unit).run())
    return findings
