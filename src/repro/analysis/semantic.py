"""Semantic checks over counter catalogs and the model pipeline.

Step 2 of Algorithm 1 eliminates co-dependent counters purely from the
catalog's ``sum_of`` documentation, so a wrong catalog silently corrupts
feature selection without failing any numeric test.  These checks make
the documented invariants machine-verified:

* every ``sum_of`` reference resolves, the implied dependency graph is
  acyclic, and a sum agrees with its parts on category and unit;
* noise levels are nonnegative and every derivation produces one value
  per second of the probe trace;
* the feature-set builders and the technique registry stay consistent
  with what the catalogs actually expose.
"""

from __future__ import annotations

import numpy as np

from repro.activity import idle_activity
from repro.analysis.findings import Finding
from repro.counters.definitions import (
    CounterCatalog,
    CounterDefinition,
    DerivationContext,
)
from repro.platforms.specs import ALL_PLATFORMS, PlatformSpec

#: Seconds in the tiny probe trace used to exercise derivations.
PROBE_SECONDS = 8


def unit_of(counter_name: str) -> str:
    """Unit class inferred from a Perfmon-style counter name.

    Perfmon encodes units in the counter leaf name (``% ...``, ``.../sec``,
    ``... Bytes``); a definitional sum must agree with its parts on this
    class or the documented identity is dimensionally impossible.
    """
    leaf = counter_name.rsplit("\\", 1)[-1]
    if "%" in leaf:
        return "percent"
    kind = "bytes" if "byte" in leaf.lower() else "count"
    if "/sec" in leaf.lower():
        return f"{kind}/sec"
    return kind


def _location(spec: PlatformSpec, definition: CounterDefinition | None) -> str:
    if definition is None:
        return f"catalog[{spec.key}]"
    return f"catalog[{spec.key}]:{definition.name}"


def _check_names(catalog: CounterCatalog) -> list[Finding]:
    """C101 duplicates + C108 index desync, from the raw definitions list."""
    findings = []
    seen: dict[str, int] = {}
    for position, definition in enumerate(catalog.definitions):
        if definition.name in seen:
            findings.append(Finding(
                "C101",
                f"counter {definition.name!r} defined at positions "
                f"{seen[definition.name]} and {position}",
                _location(catalog.spec, definition),
                context={"counter": definition.name},
            ))
        else:
            seen[definition.name] = position
    for name, position in catalog._index.items():
        if (
            position >= len(catalog.definitions)
            or catalog.definitions[position].name != name
        ):
            findings.append(Finding(
                "C108",
                f"index entry {name!r} -> {position} does not match the "
                "definitions list",
                _location(catalog.spec, None),
                context={"counter": name},
            ))
    return findings


def _check_codependencies(catalog: CounterCatalog) -> list[Finding]:
    """C102 dangling refs, C103 cycles, C104/C105 category/unit mismatch."""
    findings = []
    by_name = {d.name: d for d in catalog.definitions}

    edges: dict[str, tuple[str, ...]] = {}
    for definition in catalog.definitions:
        if definition.sum_of is None:
            continue
        resolved = []
        for component in definition.sum_of:
            if component not in by_name:
                findings.append(Finding(
                    "C102",
                    f"declared as sum of undefined counter {component!r}",
                    _location(catalog.spec, definition),
                    context={
                        "counter": definition.name, "missing": component,
                    },
                ))
                continue
            resolved.append(component)
            part = by_name[component]
            if part.category is not definition.category:
                findings.append(Finding(
                    "C104",
                    f"category {definition.category.value!r} but part "
                    f"{component!r} is {part.category.value!r}",
                    _location(catalog.spec, definition),
                    context={
                        "counter": definition.name, "part": component,
                    },
                ))
            if unit_of(part.name) != unit_of(definition.name):
                findings.append(Finding(
                    "C105",
                    f"unit {unit_of(definition.name)!r} but part "
                    f"{component!r} is {unit_of(part.name)!r}",
                    _location(catalog.spec, definition),
                    context={
                        "counter": definition.name, "part": component,
                    },
                ))
        edges[definition.name] = tuple(resolved)

    # Cycle detection over the resolved sum_of graph (iterative DFS with
    # colouring; a counter that is, transitively, a component of itself
    # makes the step 2 elimination order undefined).
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {name: WHITE for name in edges}
    reported: set[frozenset] = set()
    for root in edges:
        if colour[root] is not WHITE:
            continue
        stack: list[tuple[str, int]] = [(root, 0)]
        colour[root] = GREY
        path = [root]
        while stack:
            name, child_index = stack[-1]
            children = edges.get(name, ())
            if child_index < len(children):
                stack[-1] = (name, child_index + 1)
                child = children[child_index]
                if child not in edges:
                    continue  # leaf counter: not itself a sum
                if colour[child] is GREY:
                    cycle = path[path.index(child):] + [child]
                    key = frozenset(cycle)
                    if key not in reported:
                        reported.add(key)
                        findings.append(Finding(
                            "C103",
                            "co-dependency cycle: " + " -> ".join(cycle),
                            _location(catalog.spec, by_name[child]),
                            context={"cycle": cycle},
                        ))
                elif colour[child] is WHITE:
                    colour[child] = GREY
                    stack.append((child, 0))
                    path.append(child)
            else:
                colour[name] = BLACK
                stack.pop()
                path.pop()
    return findings


def _check_noise(catalog: CounterCatalog) -> list[Finding]:
    """C106: negative noise levels (bypass of the dataclass validator)."""
    findings = []
    for definition in catalog.definitions:
        if definition.noise_sigma < 0 or definition.additive_sigma < 0:
            findings.append(Finding(
                "C106",
                f"noise_sigma={definition.noise_sigma}, "
                f"additive_sigma={definition.additive_sigma}",
                _location(catalog.spec, definition),
                context={"counter": definition.name},
            ))
    return findings


def _check_derivations(
    catalog: CounterCatalog, probe_seconds: int = PROBE_SECONDS
) -> list[Finding]:
    """C107: run every derivation on a probe trace and check its shape."""
    findings = []
    activity = idle_activity(catalog.spec.n_cores, probe_seconds)
    for index, definition in enumerate(catalog.definitions):
        context = DerivationContext(
            activity=activity,
            spec=catalog.spec,
            rng=np.random.default_rng([7, index]),
        )
        try:
            values = np.asarray(definition.derive(context), dtype=float)
        except Exception as error:  # any failure is a finding
            findings.append(Finding(
                "C107",
                f"derivation raised {type(error).__name__}: {error}",
                _location(catalog.spec, definition),
                context={"counter": definition.name},
            ))
            continue
        if values.shape != (probe_seconds,):
            findings.append(Finding(
                "C107",
                f"derivation returned shape {values.shape}, expected "
                f"({probe_seconds},)",
                _location(catalog.spec, definition),
                context={
                    "counter": definition.name,
                    "shape": list(values.shape),
                },
            ))
    return findings


def check_catalog(
    catalog: CounterCatalog, run_derivations: bool = True
) -> list[Finding]:
    """All C1xx semantic findings for one platform catalog."""
    findings = _check_names(catalog)
    findings += _check_codependencies(catalog)
    findings += _check_noise(catalog)
    if run_derivations:
        findings += _check_derivations(catalog)
    return findings


# ----------------------------------------------------------------------
# Model-pipeline invariants (M2xx)
# ----------------------------------------------------------------------

def check_feature_sets(catalog: CounterCatalog) -> list[Finding]:
    """M201: the named feature-set builders must resolve on this catalog."""
    from repro.models.featuresets import (
        CPU_UTILIZATION_COUNTER,
        FREQUENCY_COUNTER,
        cluster_plus_lagged_frequency,
        cpu_only_set,
    )

    findings = []
    probes = [
        cpu_only_set(),
        cluster_plus_lagged_frequency((CPU_UTILIZATION_COUNTER,)),
    ]
    for feature_set in probes:
        referenced = tuple(feature_set.counters) + tuple(
            feature_set.lagged_counters
        )
        for name in referenced:
            if name not in catalog:
                findings.append(Finding(
                    "M201",
                    f"feature set {feature_set.name!r} references "
                    f"{name!r}, absent from this catalog",
                    _location(catalog.spec, None),
                    context={
                        "feature_set": feature_set.name, "counter": name,
                    },
                ))
    # The switching model keys on the frequency counter by name.
    if FREQUENCY_COUNTER not in catalog:
        findings.append(Finding(
            "M201",
            f"switching indicator {FREQUENCY_COUNTER!r} absent from "
            "this catalog",
            _location(catalog.spec, None),
            context={"counter": FREQUENCY_COUNTER},
        ))
    return findings


def check_model_registry() -> list[Finding]:
    """M202: every registered technique builds, fits, and predicts."""
    from repro.models.featuresets import (
        CPU_UTILIZATION_COUNTER,
        FREQUENCY_COUNTER,
        FeatureSet,
    )
    from repro.models.registry import MODEL_CODES, MODEL_NAMES, build_model

    findings = []
    probe = FeatureSet(
        name="probe",
        counters=(CPU_UTILIZATION_COUNTER, FREQUENCY_COUNTER),
    )
    rng = np.random.default_rng(20260806)
    design = rng.uniform(0.0, 100.0, size=(32, probe.n_features))
    power = 50.0 + 0.4 * design[:, 0] + rng.normal(0.0, 1.0, 32)
    for code in MODEL_CODES:
        if code not in MODEL_NAMES:
            findings.append(Finding(
                "M202",
                f"technique {code!r} has no entry in MODEL_NAMES",
                "registry",
                context={"code": code},
            ))
        try:
            model = build_model(code, probe)
            model.fit(design, power)
            predicted = model.predict(design)
        except Exception as error:  # any failure is a finding
            findings.append(Finding(
                "M202",
                f"technique {code!r} failed to fit/predict: "
                f"{type(error).__name__}: {error}",
                "registry",
                context={"code": code},
            ))
            continue
        if predicted.shape != (design.shape[0],):
            findings.append(Finding(
                "M202",
                f"technique {code!r} predicted shape {predicted.shape} "
                f"for {design.shape[0]} samples",
                "registry",
                context={"code": code},
            ))
        if model.code != code:
            findings.append(Finding(
                "M202",
                f"registry code {code!r} built a model reporting "
                f"code {model.code!r}",
                "registry",
                context={"code": code},
            ))
    return findings


def check_all_platforms(run_derivations: bool = True) -> list[Finding]:
    """Semantic findings across every simulated platform + the registry."""
    from repro.counters.catalog import build_catalog

    findings = []
    for spec in ALL_PLATFORMS:
        catalog = build_catalog(spec)
        findings += check_catalog(catalog, run_derivations=run_derivations)
        findings += check_feature_sets(catalog)
    findings += check_model_registry()
    return findings
