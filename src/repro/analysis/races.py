"""Concurrency-safety rules for async code (rule family ``R6xx``).

chaos-serve made the reproduction a long-running cooperative system: a
single asyncio loop multiplexes reader coroutines, a tick loop, and
registry hot-swaps over shared session/registry/stats state.  pytest
cannot reliably catch interleaving bugs — they need the wrong two
coroutines to alternate at the wrong await — but most of them are
*statically visible* given three ingredients the analysis layer already
has: CFGs (with interleaving points), a module call graph with async
coloring, and a registry of which attributes are shared mutable state.

Rules
-----
* ``R601`` — a registered shared-state attribute is read, an
  interleaving point (``await``/``yield``/executor hand-off) passes,
  and the attribute is written — a read-modify-write another coroutine
  can split — without an ``asyncio.Lock`` held,
* ``R602`` — a blocking call (``time.sleep``, sync subprocess/socket
  I/O, ``open``, ``Future.result()``) reachable from an async-colored
  function: it stalls the event loop for every session it serves,
* ``R603`` — a coroutine object created (a call to a module-local
  ``async def``) but never awaited, gathered, or task-wrapped,
* ``R604`` — an asyncio primitive (``Lock``/``Event``/``Queue``/...)
  created where no event loop runs: at module scope, or in a sync
  function that later calls ``asyncio.run`` — the primitive binds to
  the wrong loop (or, on 3.10+, raises once shared across loops),
* ``R605`` — a fork/pickle hazard: a lock, socket, open file handle,
  stream half, or event loop captured by an engine ``TaskSpec`` (or an
  executor ``submit``) — such objects do not survive the process
  boundary.

The analyses are intraprocedural over one module (the call graph does
not cross files); that boundary is what keeps the engine's deliberate
blocking calls — which run on worker processes, in modules with no
coroutines — out of scope without any suppression.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple, Union

from repro.analysis.callgraph import (
    MODULE_UNIT,
    CallGraph,
    build_callgraph,
)
from repro.analysis.cfg import (
    CFG,
    FunctionUnit,
    interleaving_points,
    iter_function_units,
    unit_has_interleaving,
)
from repro.analysis.dataflow import Analysis, run_forward
from repro.analysis.findings import Finding
from repro.analysis.signatures import (
    ASYNC_PRIMITIVE_NAMES,
    BLOCKING_BARE_IMPORTS,
    BLOCKING_CALL_DOTTED,
    EXECUTOR_HANDOFF_CALLS,
    FORK_HAZARD_CALLS,
    FORK_HAZARD_PARAM_HINTS,
    SHARED_STATE_ATTRS,
    dotted_call_name,
    is_lock_name,
    matches_dotted,
)

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)

#: Mutating method names that count as a *write* to their receiver.
_MUTATOR_METHODS = frozenset({
    "append", "extend", "add", "update", "insert", "setdefault",
    "pop", "popitem", "clear", "remove", "discard", "appendleft",
    "popleft", "cancel",
})

# R601 phase lattice per shared attribute:
#   0 = untouched, 1 = read, 2 = read then an interleaving point passed.
_UNTOUCHED, _READ, _READ_THEN_WAIT = 0, 1, 2

Phase = int
RaceState = Dict[str, Phase]


def _own_scope(body: List[ast.stmt]) -> Iterator[ast.AST]:
    """Every AST node in this body, nested def/class bodies excluded.

    Nested scopes are skipped whether they appear directly in ``body``
    or deeper inside a compound statement; only their decorators and
    argument defaults (which evaluate in this scope) are walked.
    """
    stack: List[ast.AST] = []

    def push(node: ast.AST) -> None:
        if isinstance(node, _SCOPE_NODES):
            stack.extend(getattr(node, "decorator_list", []))
            args = getattr(node, "args", None)
            if args is not None:
                stack.extend(args.defaults)
                stack.extend(
                    default
                    for default in args.kw_defaults
                    if default is not None
                )
            return
        stack.append(node)

    for stmt in body:
        push(stmt)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            push(child)


def _header_exprs(stmt: ast.stmt) -> List[ast.expr]:
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, _SCOPE_NODES):
        return []
    return [
        node for node in ast.iter_child_nodes(stmt)
        if isinstance(node, ast.expr)
    ]


# ----------------------------------------------------------------------
# R601 — shared-state read-modify-write across an interleaving point
# ----------------------------------------------------------------------

def _attr_of_store_target(target: ast.expr) -> Optional[str]:
    """Shared attribute written by one assignment target, if any.

    ``x.attr = v`` writes ``attr``; ``x.attr[k] = v`` mutates ``attr``
    (weak update, same as chaos-flow's store convention).
    """
    node = target
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        if node.attr in SHARED_STATE_ATTRS:
            return node.attr
    return None


def _stmt_writes(stmt: ast.stmt) -> List[Tuple[str, ast.stmt]]:
    """Shared attributes this (header-only) statement writes."""
    writes: List[Tuple[str, ast.stmt]] = []
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            targets = (
                target.elts
                if isinstance(target, (ast.Tuple, ast.List))
                else [target]
            )
            for element in targets:
                attr = _attr_of_store_target(element)
                if attr is not None:
                    writes.append((attr, stmt))
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        attr = _attr_of_store_target(stmt.target)
        if attr is not None:
            writes.append((attr, stmt))
    elif isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            attr = _attr_of_store_target(target)
            if attr is not None:
                writes.append((attr, stmt))
    # Mutator method calls anywhere in the header expressions:
    # ``self._pending.pop(t)`` writes ``_pending``.
    for expr in _header_exprs(stmt):
        for node in ast.walk(expr):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS
            ):
                receiver = node.func.value
                while isinstance(receiver, ast.Subscript):
                    receiver = receiver.value
                if (
                    isinstance(receiver, ast.Attribute)
                    and receiver.attr in SHARED_STATE_ATTRS
                ):
                    writes.append((receiver.attr, stmt))
    return writes


def _stmt_reads(stmt: ast.stmt) -> Set[str]:
    """Shared attributes this statement reads (load context)."""
    reads: Set[str] = set()
    for expr in _header_exprs(stmt):
        for node in ast.walk(expr):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and node.attr in SHARED_STATE_ATTRS
            ):
                reads.add(node.attr)
    if isinstance(stmt, ast.AugAssign):
        # ``x.attr += v``: the store target is also read.
        node = stmt.target
        while isinstance(node, ast.Subscript):
            node = node.value
        if (
            isinstance(node, ast.Attribute)
            and node.attr in SHARED_STATE_ATTRS
        ):
            reads.add(node.attr)
    return reads


def _lock_protected_stmts(node: ast.AST) -> Set[int]:
    """ids of statements lexically inside ``async with <lock>`` bodies."""
    protected: Set[int] = set()

    def expr_is_lock(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Attribute):
            return is_lock_name(expr.attr)
        if isinstance(expr, ast.Name):
            return is_lock_name(expr.id)
        if isinstance(expr, ast.Call):
            return expr_is_lock(expr.func)
        return False

    def mark(body: List[ast.stmt]) -> None:
        for stmt in body:
            protected.add(id(stmt))
            # Recurse into compound bodies of protected statements.
            for field_name in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, field_name, None)
                if inner:
                    mark(list(inner))
            for handler in getattr(stmt, "handlers", ()):
                mark(list(handler.body))

    for current in _own_scope(getattr(node, "body", [])):
        if isinstance(current, ast.AsyncWith) and any(
            expr_is_lock(item.context_expr) for item in current.items
        ):
            mark(list(current.body))
    return protected


class _RmwAnalysis(Analysis):
    """Forward phase analysis: per shared attribute, has it been read,
    and has an interleaving point passed since?"""

    def __init__(self, protected: Set[int]) -> None:
        self.protected = protected

    def entry_state(self, cfg: CFG) -> RaceState:
        del cfg
        return {}

    def bottom(self) -> RaceState:
        return {}

    def join(self, left: RaceState, right: RaceState) -> RaceState:
        if not left:
            return dict(right)
        if not right:
            return dict(left)
        merged = dict(left)
        for attr, phase in right.items():
            merged[attr] = max(merged.get(attr, _UNTOUCHED), phase)
        return merged

    def step(
        self,
        state: RaceState,
        stmt: ast.stmt,
        report: Optional[List[Tuple[str, ast.stmt]]] = None,
    ) -> RaceState:
        """One statement's effect; intra-statement order is
        reads -> suspension -> writes, matching Python evaluation."""
        env = dict(state)
        protected = id(stmt) in self.protected
        if not protected:
            for attr in _stmt_reads(stmt):
                env[attr] = max(env.get(attr, _UNTOUCHED), _READ)
        if interleaving_points(stmt, EXECUTOR_HANDOFF_CALLS):
            for attr, phase in env.items():
                if phase == _READ:
                    env[attr] = _READ_THEN_WAIT
        for attr, _ in _stmt_writes(stmt):
            if (
                not protected
                and report is not None
                and env.get(attr, _UNTOUCHED) == _READ_THEN_WAIT
            ):
                report.append((attr, stmt))
            # The write resolves the pending read-modify-write.
            env[attr] = _UNTOUCHED
        return env

    def transfer(self, state: RaceState, stmt: ast.stmt) -> RaceState:
        return self.step(state, stmt)


def _check_rmw(
    unit: FunctionUnit, path: str
) -> List[Finding]:
    if unit.node is None or not unit_has_interleaving(
        unit, EXECUTOR_HANDOFF_CALLS
    ):
        return []
    analysis = _RmwAnalysis(_lock_protected_stmts(unit.node))
    result = run_forward(unit.cfg, analysis)
    findings: List[Finding] = []
    seen: Set[Tuple[str, int]] = set()
    for block in unit.cfg.blocks:
        state = result.block_in[block.index]
        for stmt in block.stmts:
            hits: List[Tuple[str, ast.stmt]] = []
            state = analysis.step(state, stmt, report=hits)
            for attr, where in hits:
                key = (attr, where.lineno)
                if key in seen:
                    continue
                seen.add(key)
                findings.append(Finding(
                    "R601",
                    f"shared attribute {attr!r} is read, an await/yield "
                    "passes, then it is written — another coroutine can "
                    "interleave and the write clobbers its update; hold "
                    "an asyncio.Lock across the read-modify-write or "
                    "re-read after the suspension",
                    f"{path}:{where.lineno}",
                    context={
                        "function": unit.qualname,
                        "attribute": attr,
                    },
                ))
    return findings


# ----------------------------------------------------------------------
# R602 — blocking call reachable from async-colored code
# ----------------------------------------------------------------------

def _blocking_bare_names(tree: ast.Module) -> Set[str]:
    """Local names that alias a registered blocking callable."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module is not None:
            for alias in node.names:
                if BLOCKING_BARE_IMPORTS.get(alias.name) == node.module:
                    names.add(alias.asname or alias.name)
    return names


def _future_result_call(call: ast.Call) -> bool:
    """``submit(...).result()`` chains and ``*future*.result()``."""
    if not (
        isinstance(call.func, ast.Attribute)
        and call.func.attr == "result"
        and not call.args
        and not call.keywords
    ):
        return False
    receiver = call.func.value
    for node in ast.walk(receiver):
        if isinstance(node, ast.Call):
            target = dotted_call_name(node.func)
            tail = (target or "").rpartition(".")[2]
            if tail in EXECUTOR_HANDOFF_CALLS:
                return True
        if isinstance(node, (ast.Name, ast.Attribute)):
            name = node.id if isinstance(node, ast.Name) else node.attr
            lowered = name.lower()
            if lowered.endswith("future") or lowered.endswith("fut"):
                return True
    return False


def _check_blocking(
    tree: ast.Module,
    graph: CallGraph,
    colored: FrozenSet[str],
    path: str,
) -> List[Finding]:
    bare = _blocking_bare_names(tree)
    findings: List[Finding] = []
    for qualname in sorted(colored):
        fn = graph.functions.get(qualname)
        if fn is None or qualname == MODULE_UNIT:
            continue
        for call in fn.calls:
            message: Optional[str] = None
            dotted = call.target if call.target != "<dynamic>" else None
            if matches_dotted(dotted, BLOCKING_CALL_DOTTED):
                message = (
                    f"blocking call {call.target}() runs on the event "
                    "loop"
                )
            elif dotted == "open" or (
                dotted is not None and dotted in bare
            ):
                shown = "open" if dotted == "open" else call.target
                message = (
                    f"blocking call {shown}() runs on the event loop"
                )
            elif _future_result_call(call.node):
                message = (
                    "Future.result() blocks the event loop until the "
                    "executor finishes"
                )
            if message is not None:
                findings.append(Finding(
                    "R602",
                    message + (
                        f" ({qualname} is async-colored); await an "
                        "async equivalent or hand the work to "
                        "run_in_executor"
                    ),
                    f"{path}:{call.lineno}",
                    context={"function": qualname, "call": call.target},
                ))
    return findings


# ----------------------------------------------------------------------
# R603 — coroutine created but never awaited
# ----------------------------------------------------------------------

def _parent_map(body: List[ast.stmt]) -> Dict[int, ast.AST]:
    parents: Dict[int, ast.AST] = {}
    for node in _own_scope(body):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SCOPE_NODES):
                continue
            parents[id(child)] = node
    return parents


def _name_loads(body: List[ast.stmt], name: str) -> int:
    return sum(
        1
        for node in _own_scope(body)
        if isinstance(node, ast.Name)
        and node.id == name
        and isinstance(node.ctx, ast.Load)
    )


def _check_unawaited(
    tree: ast.Module, graph: CallGraph, path: str
) -> List[Finding]:
    async_names = {
        graph.functions[q].name for q in graph.async_functions()
    }
    findings: List[Finding] = []
    for qualname, fn in graph.functions.items():
        if fn.node is None:
            continue
        body = list(getattr(fn.node, "body", []))
        parents = _parent_map(body)
        for call in fn.calls:
            if call.name not in async_names:
                continue
            node = call.node
            parent = parents.get(id(node))
            if isinstance(parent, ast.Await):
                continue
            if isinstance(parent, ast.Expr):
                findings.append(Finding(
                    "R603",
                    f"coroutine {call.name}() is created and discarded "
                    "without being awaited; it will never run — await "
                    "it, or wrap it in asyncio.create_task/gather",
                    f"{path}:{call.lineno}",
                    context={"function": qualname, "coroutine": call.name},
                ))
                continue
            if isinstance(parent, ast.Call):
                # Passed somewhere (gather, ensure_future, a helper):
                # consumed as far as an intraprocedural view can tell.
                continue
            if isinstance(parent, ast.Assign) and len(
                parent.targets
            ) == 1 and isinstance(parent.targets[0], ast.Name):
                bound = parent.targets[0].id
                if _name_loads(body, bound) == 0:
                    findings.append(Finding(
                        "R603",
                        f"coroutine {call.name}() is bound to "
                        f"{bound!r} but {bound!r} is never awaited, "
                        "gathered, or task-wrapped in this function",
                        f"{path}:{call.lineno}",
                        context={
                            "function": qualname,
                            "coroutine": call.name,
                        },
                    ))
    return findings


# ----------------------------------------------------------------------
# R604 — asyncio primitive created outside the loop that uses it
# ----------------------------------------------------------------------

def _asyncio_primitive_aliases(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "asyncio":
            for alias in node.names:
                if alias.name in ASYNC_PRIMITIVE_NAMES:
                    names.add(alias.asname or alias.name)
    return names


def _primitive_creations(
    nodes: Iterator[ast.AST], aliases: Set[str]
) -> List[Tuple[str, ast.Call]]:
    created: List[Tuple[str, ast.Call]] = []
    for node in nodes:
        if not isinstance(node, ast.Call):
            continue
        dotted = dotted_call_name(node.func)
        if dotted is None:
            continue
        head, _, tail = dotted.rpartition(".")
        if tail in ASYNC_PRIMITIVE_NAMES and (
            head == "asyncio" or head.endswith(".asyncio")
        ):
            created.append((tail, node))
        elif not head and dotted in aliases:
            created.append((dotted, node))
    return created


def _module_scope_nodes(tree: ast.Module) -> Iterator[ast.AST]:
    """Module body including class bodies (also pre-loop), not defs."""
    def is_def(node: ast.AST) -> bool:
        return isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))

    stack: List[ast.AST] = [n for n in tree.body if not is_def(n)]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if is_def(child):
                continue
            stack.append(child)


def _check_primitives(
    tree: ast.Module, graph: CallGraph, path: str
) -> List[Finding]:
    aliases = _asyncio_primitive_aliases(tree)
    findings: List[Finding] = []
    for kind, call in _primitive_creations(
        _module_scope_nodes(tree), aliases
    ):
        findings.append(Finding(
            "R604",
            f"asyncio.{kind}() created at module scope, before any "
            "event loop exists; it binds to no loop (and raises when "
            "shared across loops) — create it inside the coroutine or "
            "server that owns it",
            f"{path}:{call.lineno}",
            context={"function": MODULE_UNIT, "primitive": kind},
        ))
    for qualname, fn in graph.functions.items():
        if fn.node is None or fn.is_async or qualname == MODULE_UNIT:
            continue
        calls_run = any(
            (site.target or "").rpartition(".")[2] == "run"
            and (site.target or "").rpartition(".")[0].endswith("asyncio")
            for site in fn.calls
        )
        if not calls_run:
            continue
        body = list(getattr(fn.node, "body", []))
        for kind, call in _primitive_creations(_own_scope(body), aliases):
            findings.append(Finding(
                "R604",
                f"asyncio.{kind}() created in sync function "
                f"{qualname}() before asyncio.run() starts the loop; "
                "the primitive binds to the wrong loop — create it "
                "inside the coroutine asyncio.run() executes",
                f"{path}:{call.lineno}",
                context={"function": qualname, "primitive": kind},
            ))
    return findings


# ----------------------------------------------------------------------
# R605 — fork/pickle hazard captured by a TaskSpec / submit
# ----------------------------------------------------------------------

def _hazard_names(fn_node: ast.AST) -> Set[str]:
    """Names in this function bound to fork-unsafe objects."""
    hazards: Set[str] = set()
    args = getattr(fn_node, "args", None)
    if args is not None:
        for arg in (
            list(getattr(args, "posonlyargs", []))
            + list(args.args)
            + list(args.kwonlyargs)
        ):
            lowered = arg.arg.lower()
            if lowered in FORK_HAZARD_PARAM_HINTS or any(
                lowered.endswith("_" + hint)
                for hint in FORK_HAZARD_PARAM_HINTS
            ):
                hazards.add(arg.arg)
    body = list(getattr(fn_node, "body", []))
    for node in _own_scope(body):
        value: Optional[ast.expr] = None
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, list(node.targets)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None and isinstance(
                    item.context_expr, ast.Call
                ) and matches_dotted(
                    dotted_call_name(item.context_expr.func),
                    FORK_HAZARD_CALLS,
                ):
                    targets.append(item.optional_vars)
            value = None
        if isinstance(value, ast.Await):
            value = value.value
        if (
            value is not None
            and isinstance(value, ast.Call)
            and matches_dotted(dotted_call_name(value.func), FORK_HAZARD_CALLS)
        ):
            pass
        elif value is not None:
            targets = []
        for target in targets:
            elements = (
                target.elts
                if isinstance(target, (ast.Tuple, ast.List))
                else [target]
            )
            for element in elements:
                if isinstance(element, ast.Name):
                    hazards.add(element.id)
    return hazards


def _check_taskspec_captures(
    graph: CallGraph, path: str
) -> List[Finding]:
    findings: List[Finding] = []
    for qualname, fn in graph.functions.items():
        if fn.node is None:
            continue
        hazards = _hazard_names(fn.node)
        if not hazards:
            continue
        for call in fn.calls:
            tail = call.name
            if tail != "TaskSpec" and tail not in ("submit",):
                continue
            captured: Set[str] = set()
            for arg in list(call.node.args) + [
                kw.value for kw in call.node.keywords
            ]:
                for node in ast.walk(arg):
                    if (
                        isinstance(node, ast.Name)
                        and isinstance(node.ctx, ast.Load)
                        and node.id in hazards
                    ):
                        captured.add(node.id)
            for name in sorted(captured):
                findings.append(Finding(
                    "R605",
                    f"{name!r} holds a lock, socket, open handle, or "
                    f"event loop and is captured by {tail}(); such "
                    "objects do not survive the fork/pickle boundary — "
                    "pass plain data and re-open resources in the "
                    "worker",
                    f"{path}:{call.lineno}",
                    context={"function": qualname, "capture": name},
                ))
    return findings


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

def check_races_source(
    source: str, path: Union[str, Path]
) -> List[Finding]:
    """R6xx findings for one module's source text."""
    path = Path(path)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        raise ValueError(f"cannot parse {path}: {error}") from error
    graph = build_callgraph(tree, module=str(path))
    colored = frozenset(graph.async_colored())
    findings: List[Finding] = []
    for unit in iter_function_units(tree):
        findings.extend(_check_rmw(unit, str(path)))
    findings.extend(_check_blocking(tree, graph, colored, str(path)))
    findings.extend(_check_unawaited(tree, graph, str(path)))
    findings.extend(_check_primitives(tree, graph, str(path)))
    findings.extend(_check_taskspec_captures(graph, str(path)))
    findings.sort(key=lambda f: f.location)
    return findings
