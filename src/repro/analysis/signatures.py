"""API contracts driving chaos-flow: unit signatures and taint roles.

This registry is the single place where ``repro``'s public entry points
are annotated for the dataflow analyses:

* :data:`FUNCTION_UNITS` — physical-unit contracts (return unit and
  per-parameter expected units) for ``repro.metrics``, ``repro.framework``
  and friends.  ``units.py`` checks call arguments against these (U502)
  and propagates return units through expressions.
* :data:`NAME_UNIT_SUFFIXES` — the naming convention the tree already
  follows (``power_w``, ``duration_s``, ``freq_ghz`` ...), used to seed
  units for variables, attributes, and parameters.
* Taint roles — which callables *produce* whole-dataset values
  (:data:`FULL_SOURCE_CALLS`), which parameter names denote the whole
  dataset (:data:`FULL_PARAM_NAMES`), and which calls are *sinks* that
  must never consume test-fold or unsplit data
  (:func:`sink_kind`): model fits, feature selection, preprocessing.

To annotate a new API, add one entry here — both analyses pick it up;
``docs/static_analysis.md`` ("Annotating new APIs") walks through it.

Matching is by the *last dotted segment* of the call target, with
leading underscores ignored, so ``repro.metrics.errors.dynamic_range``,
``errors.dynamic_range`` and a bare ``dynamic_range`` all match the same
contract.  That keeps the registry import-style-agnostic at the cost of
treating same-named functions alike — acceptable for a lint.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

# ----------------------------------------------------------------------
# Units
# ----------------------------------------------------------------------

WATTS = "watts"
WATTS_SQ = "watts^2"
JOULES = "joules"
SECONDS = "seconds"
HERTZ = "hertz"
PERCENT = "percent"
BYTES = "bytes"
COUNT = "count"
RATE = "count/sec"
BYTES_RATE = "bytes/sec"
CUMULATIVE = "cumulative-count"
DIMENSIONLESS = "dimensionless"

#: Name suffix -> unit, longest suffix checked first.  Applied to
#: variable names, attribute names, and function parameters.
NAME_UNIT_SUFFIXES: Dict[str, str] = {
    "_watts": WATTS,
    "_w": WATTS,
    "power": WATTS,
    "_joules": JOULES,
    "_j": JOULES,
    "_seconds": SECONDS,
    "_sec": SECONDS,
    "_s": SECONDS,
    "_hz": HERTZ,
    "_ghz": HERTZ,
    "_mhz": HERTZ,
    "_percent": PERCENT,
    "_pct": PERCENT,
    "_bytes": BYTES,
    "_per_sec": RATE,
    "_cumulative": CUMULATIVE,
    "_cum_total": CUMULATIVE,
}

_SUFFIXES_BY_LENGTH = sorted(
    NAME_UNIT_SUFFIXES, key=len, reverse=True
)


def unit_from_name(name: str) -> Optional[str]:
    """Unit implied by an identifier's suffix, or None.

    ``power_w`` -> watts, ``sample_period_s`` -> seconds,
    ``mem_pages_per_sec`` -> count/sec (the longer suffix wins over
    ``_sec``), ``design`` -> None.
    """
    lowered = name.lower()
    for suffix in _SUFFIXES_BY_LENGTH:
        if lowered == suffix.lstrip("_") or lowered.endswith(suffix):
            return NAME_UNIT_SUFFIXES[suffix]
    return None


@dataclass(frozen=True)
class UnitSignature:
    """Unit contract of one callable."""

    returns: Optional[str] = None
    params: Dict[str, str] = field(default_factory=dict)
    """Positional index (as str) or keyword name -> expected unit."""

    def expected_for(
        self, position: int, keyword: Optional[str]
    ) -> Optional[str]:
        if keyword is not None:
            return self.params.get(keyword)
        return self.params.get(str(position))


def _sig(returns: Optional[str] = None, **params: str) -> UnitSignature:
    return UnitSignature(
        returns=returns,
        params={str(k)[1:] if str(k).startswith("p") and str(k)[1:].isdigit()
                else k: v for k, v in params.items()},
    )


#: Callable (last dotted segment) -> unit contract.  Positional
#: parameters are keyed ``p0``, ``p1``, ... in ``_sig``.
FUNCTION_UNITS: Dict[str, UnitSignature] = {
    # repro.metrics.errors — everything takes power series in watts.
    "mean_squared_error": _sig(WATTS_SQ, p0=WATTS, p1=WATTS),
    "root_mean_squared_error": _sig(WATTS, p0=WATTS, p1=WATTS),
    "percent_error": _sig(DIMENSIONLESS, p0=WATTS, p1=WATTS),
    "mean_absolute_error": _sig(WATTS, p0=WATTS, p1=WATTS),
    "median_absolute_error": _sig(WATTS, p0=WATTS, p1=WATTS),
    "median_relative_error": _sig(DIMENSIONLESS, p0=WATTS, p1=WATTS),
    "dynamic_range": _sig(WATTS, p0=WATTS, idle_power=WATTS),
    "dynamic_range_error": _sig(
        DIMENSIONLESS, p0=WATTS, p1=WATTS, idle_power=WATTS
    ),
    # repro.metrics.energy — the one deliberate watts/joules boundary.
    "energy_joules": _sig(
        JOULES, p0=WATTS, power_w=WATTS, sample_period_s=SECONDS
    ),
    "energy_relative_error": _sig(
        DIMENSIONLESS, p0=WATTS, p1=WATTS, sample_period_s=SECONDS
    ),
    # repro.metrics.summary / repro.framework — report constructors
    # consume measured/predicted power in watts.
    "from_predictions": _sig(None, p0=WATTS, p1=WATTS),
    "cluster_power": _sig(WATTS),
    # repro.activity probes.
    "idle_activity": _sig(None, n_seconds=SECONDS),
    # repro.serving — the online scoring surface.  Predictions, meter
    # readings and idle floors are watts; batch latencies are seconds.
    "make_bundle": _sig(None, idle_power_w=WATTS),
    "offline_reference": _sig(WATTS),
    "max_deviation_w": _sig(WATTS),
    "rolling_mean_w": _sig(WATTS, window_seconds=SECONDS),
    "peak_w": _sig(WATTS),
    "commit": _sig(WATTS, p0=WATTS, prediction_w=WATTS),
    "record_batch": _sig(None, latency_s=SECONDS),
    # repro.dse — campaign objectives.  Serving latency is seconds per
    # scored sample; fit cost and MCDM scores are dimensionless proxies.
    "modeled_serving_p99": _sig(SECONDS),
    "modeled_fit_cost": _sig(DIMENSIONLESS),
    "mcdm_scores": _sig(DIMENSIONLESS),
    "crowding_distance": _sig(DIMENSIONLESS),
}

#: Calls that preserve the unit of their first argument (reductions,
#: conversions, elementwise shims).  Matched like FUNCTION_UNITS.
UNIT_PRESERVING_CALLS = frozenset({
    "mean", "median", "sum", "min", "max", "abs", "absolute",
    "asarray", "array", "ravel", "sort", "sorted", "copy", "float",
    "quantile", "percentile", "average_windows",
})

#: Calls preserving the unit of the *receiver* (ndarray methods).
UNIT_PRESERVING_METHODS = frozenset({
    "mean", "sum", "min", "max", "ravel", "copy", "astype", "clip",
})

#: sqrt maps squared units back (watts^2 -> watts); anything else is
#: unknown.
SQRT_CALLS = frozenset({"sqrt"})

#: BinOp unit algebra: (left, op, right) -> result.  Only listed
#: combinations produce a concrete unit; everything else is unknown.
MUL_TABLE: Dict[Tuple[str, str], str] = {
    (WATTS, SECONDS): JOULES,
    (SECONDS, WATTS): JOULES,
    (WATTS, WATTS): WATTS_SQ,
    (RATE, SECONDS): COUNT,
    (SECONDS, RATE): COUNT,
    (BYTES_RATE, SECONDS): BYTES,
    (SECONDS, BYTES_RATE): BYTES,
    (HERTZ, SECONDS): COUNT,
    (SECONDS, HERTZ): COUNT,
}

DIV_TABLE: Dict[Tuple[str, str], str] = {
    (JOULES, SECONDS): WATTS,
    (JOULES, WATTS): SECONDS,
    (COUNT, SECONDS): RATE,
    (BYTES, SECONDS): BYTES_RATE,
    (WATTS_SQ, WATTS): WATTS,
}


# ----------------------------------------------------------------------
# Taint roles
# ----------------------------------------------------------------------

#: Call targets (last dotted segment) returning the *whole dataset*:
#: every run of a workload, before any split.
FULL_SOURCE_CALLS = frozenset({"runs", "runs_by_workload"})

#: Parameter names seeded as whole-dataset at function entry.
FULL_PARAM_NAMES = frozenset({"runs", "all_runs", "dataset"})

#: Feature-selection entry points (repro.selection + Algorithm 1).
SELECT_SINKS = frozenset({
    "prune_correlated",
    "eliminate_codependent",
    "select_machine_features",
    "pool_and_refine",
    "run_algorithm1",
    "select_features",
    "select_general_features",
})

#: Preprocessing fits: anything learning statistics from data that must
#: therefore only ever see the training split.  ``make_bundle`` belongs
#: here because the serving drift envelope is per-feature quantiles
#: learned from its ``training_design`` argument.
PREPROCESS_SINKS = frozenset({
    "standardize", "fit_scaler", "fit_transform", "scale_features",
    "make_bundle",
})

#: Method names treated as model-fit sinks.
FIT_METHODS = frozenset({"fit"})


def call_target(func: ast.AST) -> Optional[str]:
    """Last dotted segment of a call target, leading underscores
    stripped: ``repro.metrics.errors._dre`` -> ``dre``."""
    if isinstance(func, ast.Attribute):
        tail = func.attr
    elif isinstance(func, ast.Name):
        tail = func.id
    else:
        return None
    return tail.lstrip("_") or tail


def is_method_call(func: ast.AST) -> bool:
    return isinstance(func, ast.Attribute)


def sink_kind(func: ast.AST) -> Optional[str]:
    """'fit' | 'select' | 'preprocess' if the call is a leakage sink."""
    target = call_target(func)
    if target is None:
        return None
    if is_method_call(func) and func.attr.lstrip("_") in FIT_METHODS:
        return "fit"
    if target in SELECT_SINKS:
        return "select"
    if target in PREPROCESS_SINKS:
        return "preprocess"
    return None


def unit_signature(func: ast.AST) -> Optional[UnitSignature]:
    target = call_target(func)
    if target is None:
        return None
    return FUNCTION_UNITS.get(target)


# ----------------------------------------------------------------------
# Concurrency roles (chaos-race, R6xx)
# ----------------------------------------------------------------------

#: Attribute names that are *mutable shared state* in the serving and
#: engine stacks: registry/session/server bookkeeping that multiple
#: coroutines may touch.  R601 reports a read-modify-write of one of
#: these attributes that spans an interleaving point (``await``/
#: ``yield``/executor hand-off) without an ``asyncio.Lock`` held.
SHARED_STATE_ATTRS = frozenset({
    # PowerServer / ShardedPowerServer
    "_clients", "_tick_task", "_server", "_registry_generation",
    "last_estimate",
    # ShardedPowerServer (router-only: ingest buffers swapped to locals
    # before any await, shard host table mutated only at start/stop)
    "_pending_submits", "_pending_drains", "_hosts", "_host_locks",
    # _Client / _RouterClient
    "closed", "bye_pending",
    # MachineSession
    "_pending", "_next_t", "_started", "_draining", "_n_dispatched",
    "_meter_window", "_last_power_w",
    # ModelRegistry
    "_manifest", "generation",
})

#: Attribute-name substrings that look like asyncio locks; ``async
#: with`` on one of these marks its body as lock-protected for R601.
LOCK_NAME_HINTS = ("lock", "mutex", "sem", "semaphore")

#: Fully-dotted call targets (suffix-matched) that block the event
#: loop: running one from async-colored code stalls every session the
#: loop serves (R602).
BLOCKING_CALL_DOTTED = frozenset({
    "time.sleep",
    "os.system",
    "os.wait",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "socket.create_connection",
    "urllib.request.urlopen",
    "requests.get",
    "requests.post",
})

#: Bare names that are blocking when imported from these modules
#: (``from time import sleep`` makes a bare ``sleep(...)`` blocking).
BLOCKING_BARE_IMPORTS: Dict[str, str] = {
    "sleep": "time",
    "urlopen": "urllib.request",
}

#: Calls that hand work to an executor or another thread; treated as
#: interleaving points by R601 and as sync-result hazards by R602 when
#: their future's ``.result()`` is taken on the loop.
EXECUTOR_HANDOFF_CALLS = frozenset({
    "run_in_executor", "to_thread", "submit",
})

#: Call targets that *consume* a coroutine object: passing a coroutine
#: here counts as awaiting it for R603.
COROUTINE_CONSUMERS = frozenset({
    "gather", "wait", "wait_for", "create_task", "ensure_future",
    "as_completed", "run", "run_until_complete", "shield",
    "run_coroutine_threadsafe",
})

#: asyncio synchronization/queue primitives that bind to the running
#: event loop; creating one where no loop is running (module scope, or
#: a sync function that later calls ``asyncio.run``) is R604.
ASYNC_PRIMITIVE_NAMES = frozenset({
    "Lock", "Event", "Condition", "Semaphore", "BoundedSemaphore",
    "Queue", "LifoQueue", "PriorityQueue",
})

#: Constructors (suffix-matched dotted targets) whose results must not
#: cross a fork/pickle boundary: locks, sockets, event loops, open file
#: handles, live stream halves.  R605 reports one captured by an engine
#: ``TaskSpec`` (or an executor ``submit``) closure/payload.
FORK_HAZARD_CALLS = frozenset({
    "asyncio.Lock", "asyncio.Event", "asyncio.Condition",
    "asyncio.Semaphore", "asyncio.Queue",
    "threading.Lock", "threading.RLock", "threading.Event",
    "threading.Condition", "threading.Semaphore",
    "multiprocessing.Lock",
    "socket.socket", "socket.create_connection",
    "asyncio.get_event_loop", "asyncio.new_event_loop",
    "asyncio.get_running_loop",
    "asyncio.open_connection", "asyncio.start_server",
    "open",
})

#: Parameter names assumed to hold fork-unsafe objects (stream halves,
#: sockets, locks, loops) when judging TaskSpec captures.
FORK_HAZARD_PARAM_HINTS = frozenset({
    "lock", "sock", "socket", "writer", "reader", "loop", "conn",
    "connection",
})


def dotted_call_name(func: ast.AST) -> Optional[str]:
    """Full dotted name of a call target (``a.b.c``), or None."""
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def matches_dotted(dotted: Optional[str], registry: frozenset) -> bool:
    """Suffix match: ``pkg.time.sleep`` matches ``time.sleep``."""
    if dotted is None:
        return False
    for entry in registry:
        if dotted == entry or dotted.endswith("." + entry):
            return True
    return False


def is_lock_name(name: str) -> bool:
    lowered = name.lower()
    return any(hint in lowered for hint in LOCK_NAME_HINTS)


#: Identifier patterns marking test-split data by naming convention.
def is_test_name(name: str) -> bool:
    lowered = name.lower().strip("_")
    return (
        lowered == "test"
        or lowered.startswith("test_")
        or lowered.endswith("_test")
        or "_test_" in lowered
    )


def is_fold_iterable_name(name: str) -> bool:
    lowered = name.lower().strip("_")
    return lowered == "folds" or lowered.endswith("_folds")


#: Calls producing the fold list a cross-validation loop iterates.
FOLD_SOURCE_CALLS = frozenset({"runwise_folds", "kfold", "make_folds"})


# ----------------------------------------------------------------------
# Array contracts (chaos-shape, N7xx)
# ----------------------------------------------------------------------

#: The numeric anchor of the whole stack: every kernel, feature row and
#: power series is float64, because the bit-for-bit online == offline
#: replay gate depends on one reduction order over one dtype.
KERNEL_DTYPE = "float64"

Dim = Union[int, str]
"""One array dimension: a concrete size or a symbolic name (``"n"``).
The same symbolic name unifies across every parameter of one call."""


@dataclass(frozen=True)
class ArraySpec:
    """Declared shape/dtype/contiguity of one array parameter or return.

    ``shape=None`` accepts any rank; a tuple fixes the rank, with each
    entry either a concrete size or a symbolic dim that must agree with
    every other use of the same name in the contract.
    """

    shape: Optional[Tuple[Dim, ...]] = None
    dtype: Optional[str] = KERNEL_DTYPE
    contiguous: Optional[bool] = None

    @property
    def rank(self) -> Optional[int]:
        return None if self.shape is None else len(self.shape)


@dataclass(frozen=True)
class ArrayContract:
    """Array contract of one kernel/serving/metrics entry point.

    ``params`` is ordered: positional argument ``i`` matches entry ``i``
    (``self`` receivers never appear in AST call args, so methods and
    functions line up the same way); keywords match by name.  A ``None``
    spec means "no array expectation for this parameter".
    """

    name: str
    params: Tuple[Tuple[str, Optional[ArraySpec]], ...] = ()
    returns: Optional[ArraySpec] = None
    hot_path: bool = False

    def spec_for(
        self, position: int, keyword: Optional[str]
    ) -> Optional[ArraySpec]:
        if keyword is not None:
            for name, spec in self.params:
                if name == keyword:
                    return spec
            return None
        if 0 <= position < len(self.params):
            return self.params[position][1]
        return None


def _vec(*dims: Dim, contiguous: Optional[bool] = None) -> ArraySpec:
    return ArraySpec(shape=tuple(dims), contiguous=contiguous)


#: Callable (last dotted segment) -> array contract.  The registry is
#: shared by the static N7xx checker (argument shapes/dtypes at call
#: sites, parameter seeding inside the contracted function) and the
#: runtime ArraySanitizer (observed-vs-declared cross-check during
#: ``repro replay --sanitize``).
ARRAY_CONTRACTS: Dict[str, ArrayContract] = {
    # regression.kernels — the batch-size-invariant predict kernel.
    "matvec": ArrayContract(
        "matvec",
        params=(
            ("matrix", _vec("n", "k", contiguous=True)),
            ("vector", _vec("k")),
        ),
        returns=_vec("n"),
        hot_path=True,
    ),
    # Model predict surfaces: one design matrix in, one power series out.
    "predict": ArrayContract(
        "predict",
        params=(("design", _vec("n", "k")),),
        returns=_vec("n"),
    ),
    "predict_log": ArrayContract("predict_log", returns=_vec("n")),
    "evaluate_bases": ArrayContract(
        "evaluate_bases",
        params=(("bases", None), ("design", _vec("n", "k"))),
        returns=_vec("n", "m"),
    ),
    # regression fits.
    "fit_ols": ArrayContract(
        "fit_ols",
        params=(("design", _vec("n", "k")), ("response", _vec("n"))),
    ),
    "fit_lasso": ArrayContract(
        "fit_lasso",
        params=(("design", _vec("n", "k")), ("response", _vec("n"))),
    ),
    "fit_mars": ArrayContract(
        "fit_mars",
        params=(("design", _vec("n", "k")), ("response", _vec("n"))),
    ),
    "add_intercept": ArrayContract(
        "add_intercept",
        params=(("design", _vec("n", "k")),),
        returns=_vec("n", "m"),
    ),
    # metrics.errors — paired power series in watts, float64.
    "mean_squared_error": ArrayContract(
        "mean_squared_error",
        params=(("actual", _vec("n")), ("predicted", _vec("n"))),
    ),
    "root_mean_squared_error": ArrayContract(
        "root_mean_squared_error",
        params=(("actual", _vec("n")), ("predicted", _vec("n"))),
    ),
    "dynamic_range_error": ArrayContract(
        "dynamic_range_error",
        params=(("actual", _vec("n")), ("predicted", _vec("n"))),
    ),
    "dynamic_range": ArrayContract(
        "dynamic_range", params=(("actual", _vec("n")),),
    ),
    # serving — feature rows and the drift envelope's training design.
    "make_bundle": ArrayContract(
        "make_bundle",
        params=(
            ("platform_model", None),
            ("training_design", _vec("n", "k")),
        ),
    ),
    "prepare_row": ArrayContract("prepare_row", returns=_vec("k")),
    "observe": ArrayContract(
        "observe", params=(("sample", _vec("k")),),
    ),
    "offline_reference": ArrayContract(
        "offline_reference", returns=_vec("n"),
    ),
    # dse — the campaign ranking core operates on dense float64
    # (n_candidates, n_objectives) matrices; every entry point is also
    # @contracted so `repro replay --sanitize`-style runtime checks can
    # observe a campaign (the same one-registry rule as the kernels).
    "pareto_frontier": ArrayContract(
        "pareto_frontier",
        params=(("objectives", _vec("n", "m")),),
    ),
    "nondominated_sort": ArrayContract(
        "nondominated_sort",
        params=(("objectives", _vec("n", "m")),),
        returns=ArraySpec(shape=("n",), dtype="int64"),
    ),
    "crowding_distance": ArrayContract(
        "crowding_distance",
        params=(("objectives", _vec("n", "m")),),
        returns=_vec("n"),
    ),
    "minmax_normalize": ArrayContract(
        "minmax_normalize",
        params=(("objectives", _vec("n", "m")),),
        returns=_vec("n", "m"),
    ),
    "mcdm_scores": ArrayContract(
        "mcdm_scores",
        params=(("objectives", _vec("n", "m")), ("weights", _vec("m"))),
        returns=_vec("n"),
    ),
    "main_effects": ArrayContract(
        "main_effects",
        params=(("design", _vec("n", "k")), ("objectives", _vec("n", "m"))),
        returns=_vec("k", "m"),
    ),
}


def array_contract(func: ast.AST) -> Optional[ArrayContract]:
    """Contract of a call target, matched like :func:`unit_signature`."""
    target = call_target(func)
    if target is None:
        return None
    return ARRAY_CONTRACTS.get(target)


#: Decorator names (last dotted segment) marking a function as a
#: per-tick hot path: no allocation (N705) or hidden copy (N703)
#: belongs inside one.
HOT_PATH_DECORATORS = frozenset({"hot_path"})

#: numpy allocators: every call returns a fresh buffer (N705 inside a
#: hot path).  Disjoint from COPY_CALLS so one call maps to one rule.
ALLOCATOR_CALLS = frozenset({
    "zeros", "ones", "empty", "full", "zeros_like", "ones_like",
    "empty_like", "full_like", "arange", "linspace", "eye", "tile",
    "repeat", "meshgrid",
})

#: Operations that materialize a copy of an existing array — the
#: "hidden" allocations N703 reports inside a hot path.
COPY_CALLS = frozenset({
    "concatenate", "vstack", "hstack", "stack", "column_stack",
    "ascontiguousarray", "asfortranarray", "flatten",
})

#: Kernels whose operands feed einsum/BLAS inner loops: a known
#: non-contiguous operand reaching one is N706 (the library strides or
#: silently copies, both of which a hot path cannot afford).
BLAS_KERNEL_CALLS = frozenset({
    "matvec", "einsum", "dot", "matmul", "inner", "solve", "lstsq",
})
