"""Module-level call graphs with async/sync coloring (chaos-race).

The R6xx concurrency rules need to answer one question the CFG cannot:
*can this function run on the event loop?*  A blocking ``time.sleep``
is harmless in a worker process and a defect inside a coroutine — or
inside a sync helper that a coroutine calls.  This builder lifts the
intraprocedural units of :mod:`repro.analysis.cfg` to a per-module call
graph:

* one :class:`FunctionNode` per function/method (and one for the module
  body), carrying its async/generator flavor and every call site in its
  own scope (nested ``def`` bodies belong to the nested node);
* edges resolved *within the module* by the same last-dotted-segment
  convention the rest of chaos-lint uses.  A bare ``helper()`` and a
  method ``self.helper()`` both resolve to every module function whose
  final name segment is ``helper`` — an over-approximation, which is
  the safe direction: the soundness property tests assert every call
  observed at runtime is present in the static graph, never the
  converse.

**Async coloring.**  ``async_colored()`` is the set of functions that
may execute on the event loop: every ``async def``, plus everything
transitively reachable from one through resolved call edges.  Cross-
module calls are out of scope by design — a module with no coroutines
has no async-colored functions, so the engine's (all-sync,
process-pool) blocking calls are never misattributed to the loop.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)

MODULE_UNIT = "<module>"


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function's own scope."""

    target: str
    """Full dotted target (``asyncio.gather``) when resolvable, else
    the last segment; ``<dynamic>`` for computed callees."""

    name: str
    """Last dotted segment, leading underscores kept."""

    lineno: int
    node: ast.Call = field(compare=False, hash=False, repr=False)


@dataclass
class FunctionNode:
    """One function (or the module body) in the call graph."""

    qualname: str
    name: str
    lineno: int
    is_async: bool
    is_generator: bool
    calls: List[CallSite] = field(default_factory=list)
    node: Optional[ast.AST] = field(default=None, repr=False)


@dataclass
class CallGraph:
    """Functions and resolved intra-module call edges."""

    module: str
    functions: Dict[str, FunctionNode]
    edges: Dict[str, Set[str]]
    """caller qualname -> callee qualnames resolved in this module."""

    def node(self, qualname: str) -> FunctionNode:
        return self.functions[qualname]

    def callees(self, qualname: str) -> Set[str]:
        return self.edges.get(qualname, set())

    def async_functions(self) -> Set[str]:
        return {
            qualname
            for qualname, fn in self.functions.items()
            if fn.is_async
        }

    def reachable_from(self, roots: Set[str]) -> Set[str]:
        """Roots plus everything transitively called from them."""
        seen = set(roots)
        frontier = list(roots)
        while frontier:
            current = frontier.pop()
            for callee in self.edges.get(current, ()):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return seen

    def async_colored(self) -> Set[str]:
        """Functions that may run on the event loop: every ``async
        def`` plus all functions they transitively call."""
        return self.reachable_from(self.async_functions())


def _dotted(func: ast.AST) -> Optional[str]:
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _own_scope_nodes(body: List[ast.stmt]) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested scopes.

    A nested ``def``/``class`` is its own unit; only the parts of it
    that evaluate in *this* scope — decorators and argument defaults —
    stay visible to the walk.
    """
    stack: List[ast.AST] = []

    def push(node: ast.AST) -> None:
        if isinstance(node, _SCOPE_NODES):
            stack.extend(getattr(node, "decorator_list", []))
            args = getattr(node, "args", None)
            if args is not None:
                stack.extend(args.defaults)
                stack.extend(
                    default
                    for default in args.kw_defaults
                    if default is not None
                )
            return
        stack.append(node)

    for stmt in body:
        push(stmt)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            push(child)


def own_scope_statements(
    node: ast.AST,
) -> Iterator[ast.AST]:
    """Public wrapper: every AST node in a function's own scope."""
    body = getattr(node, "body", None)
    if body is None:
        return iter(())
    return _own_scope_nodes(list(body))


def _collect_calls(body: List[ast.stmt]) -> List[CallSite]:
    calls: List[CallSite] = []
    for node in _own_scope_nodes(body):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted is None:
            calls.append(
                CallSite("<dynamic>", "<dynamic>", node.lineno, node)
            )
            continue
        name = dotted.rpartition(".")[2]
        calls.append(CallSite(dotted, name, node.lineno, node))
    return calls


def _is_generator(body: List[ast.stmt]) -> bool:
    return any(
        isinstance(node, (ast.Yield, ast.YieldFrom))
        for node in _own_scope_nodes(body)
    )


def _iter_defs(
    node: ast.AST, prefix: str
) -> Iterator[Tuple[str, ast.AST]]:
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{prefix}{child.name}"
            yield qualname, child
            yield from _iter_defs(child, f"{qualname}.")
        elif isinstance(child, ast.ClassDef):
            yield from _iter_defs(child, f"{prefix}{child.name}.")
        else:
            yield from _iter_defs(child, prefix)


def build_callgraph(
    tree: ast.Module, module: str = MODULE_UNIT
) -> CallGraph:
    """Build the call graph of one parsed module.

    Every function gets a node; edges link a caller to *every* module
    function whose final name segment matches the call target's — the
    deliberate over-approximation documented above.
    """
    functions: Dict[str, FunctionNode] = {
        MODULE_UNIT: FunctionNode(
            qualname=MODULE_UNIT,
            name=MODULE_UNIT,
            lineno=0,
            is_async=False,
            is_generator=False,
            calls=_collect_calls(tree.body),
            node=tree,
        )
    }
    for qualname, node in _iter_defs(tree, ""):
        functions[qualname] = FunctionNode(
            qualname=qualname,
            name=node.name,
            lineno=node.lineno,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            is_generator=_is_generator(node.body),
            calls=_collect_calls(node.body),
            node=node,
        )

    by_name: Dict[str, List[str]] = {}
    for qualname, fn in functions.items():
        by_name.setdefault(fn.name, []).append(qualname)

    edges: Dict[str, Set[str]] = {}
    for qualname, fn in functions.items():
        targets: Set[str] = set()
        for call in fn.calls:
            for callee in by_name.get(call.name, ()):
                targets.add(callee)
        edges[qualname] = targets
    return CallGraph(module=module, functions=functions, edges=edges)


def build_callgraph_source(
    source: str, module: str = MODULE_UNIT
) -> CallGraph:
    """Parse ``source`` and build its call graph."""
    return build_callgraph(ast.parse(source), module=module)


def async_colored_units(
    graph: CallGraph,
) -> FrozenSet[str]:
    """Frozen view of :meth:`CallGraph.async_colored` for rule passes."""
    return frozenset(graph.async_colored())
