"""Latent machine activity: the shared truth between workloads and sensors.

A workload run produces, for every machine and every second, an
``ActivityTrace`` describing what the hardware was actually doing — per-core
utilization and clock frequency, memory traffic, disk and network I/O.  Two
independent observers consume it:

* the platform power synthesizer (``repro.platforms.power``), which turns
  activity into ground-truth wall power, and
* the OS counter derivations (``repro.counters``), which turn activity into
  the ~250 noisy Perfmon-style counters the models are trained on.

Keeping the latent activity separate from both guarantees the models never
see the true power inputs directly, mirroring the paper's setting where OS
counters are an imperfect view of the hardware the power meter measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def _as_2d_float(values, name: str) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.ndim != 2:
        raise ValueError(f"{name} must be 2-D (n_cores, n_seconds)")
    return array


def _as_1d_float(values, name: str) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise ValueError(f"{name} must be 1-D (n_seconds)")
    return array


@dataclass
class ActivityTrace:
    """Per-second latent activity of one machine over one workload run.

    All rates are per-second values sampled at 1 Hz; utilization and busy
    fractions are in [0, 1]; frequencies are in GHz (0.0 encodes the C1
    "clock stopped" state on server platforms).
    """

    core_util: np.ndarray
    """(n_cores, T) per-core utilization in [0, 1]."""

    core_freq_ghz: np.ndarray
    """(n_cores, T) per-core operating frequency."""

    mem_pages_per_sec: np.ndarray
    """(T,) hard page traffic (Memory\\Pages/sec ground truth)."""

    page_faults_per_sec: np.ndarray
    """(T,) total page faults, soft + hard."""

    cache_faults_per_sec: np.ndarray
    """(T,) file-system cache misses."""

    committed_bytes: np.ndarray
    """(T,) committed virtual memory."""

    disk_read_bytes: np.ndarray
    """(T,) bytes read from all disks."""

    disk_write_bytes: np.ndarray
    """(T,) bytes written to all disks."""

    disk_busy_frac: np.ndarray
    """(T,) fraction of the second any disk was servicing requests."""

    net_sent_bytes: np.ndarray
    """(T,) bytes sent over all NICs."""

    net_recv_bytes: np.ndarray
    """(T,) bytes received over all NICs."""

    interrupts_per_sec: np.ndarray
    """(T,) hardware interrupt rate."""

    dpc_time_frac: np.ndarray
    """(T,) fraction of CPU time in deferred procedure calls."""

    extras: dict = field(default_factory=dict)
    """Workload-specific named series (e.g. task phase indicators)."""

    def __post_init__(self):
        self.core_util = _as_2d_float(self.core_util, "core_util")
        self.core_freq_ghz = _as_2d_float(self.core_freq_ghz, "core_freq_ghz")
        one_d_fields = (
            "mem_pages_per_sec",
            "page_faults_per_sec",
            "cache_faults_per_sec",
            "committed_bytes",
            "disk_read_bytes",
            "disk_write_bytes",
            "disk_busy_frac",
            "net_sent_bytes",
            "net_recv_bytes",
            "interrupts_per_sec",
            "dpc_time_frac",
        )
        length = self.core_util.shape[1]
        for field_name in one_d_fields:
            array = _as_1d_float(getattr(self, field_name), field_name)
            if array.shape[0] != length:
                raise ValueError(
                    f"{field_name} has length {array.shape[0]}, expected {length}"
                )
            setattr(self, field_name, array)
        if self.core_freq_ghz.shape != self.core_util.shape:
            raise ValueError("core_freq_ghz and core_util shapes differ")
        if np.any(self.core_util < -1e-9) or np.any(self.core_util > 1 + 1e-9):
            raise ValueError("core_util must lie in [0, 1]")
        if np.any(self.core_freq_ghz < 0):
            raise ValueError("core_freq_ghz must be nonnegative")

    @property
    def n_cores(self) -> int:
        return self.core_util.shape[0]

    @property
    def n_seconds(self) -> int:
        return self.core_util.shape[1]

    @property
    def cpu_util(self) -> np.ndarray:
        """(T,) machine-level utilization: mean across cores."""
        return self.core_util.mean(axis=0)

    @property
    def disk_total_bytes(self) -> np.ndarray:
        return self.disk_read_bytes + self.disk_write_bytes

    @property
    def net_total_bytes(self) -> np.ndarray:
        return self.net_sent_bytes + self.net_recv_bytes

    def slice_seconds(self, start: int, stop: int) -> "ActivityTrace":
        """A view-free copy restricted to seconds [start, stop)."""
        return ActivityTrace(
            core_util=self.core_util[:, start:stop].copy(),
            core_freq_ghz=self.core_freq_ghz[:, start:stop].copy(),
            mem_pages_per_sec=self.mem_pages_per_sec[start:stop].copy(),
            page_faults_per_sec=self.page_faults_per_sec[start:stop].copy(),
            cache_faults_per_sec=self.cache_faults_per_sec[start:stop].copy(),
            committed_bytes=self.committed_bytes[start:stop].copy(),
            disk_read_bytes=self.disk_read_bytes[start:stop].copy(),
            disk_write_bytes=self.disk_write_bytes[start:stop].copy(),
            disk_busy_frac=self.disk_busy_frac[start:stop].copy(),
            net_sent_bytes=self.net_sent_bytes[start:stop].copy(),
            net_recv_bytes=self.net_recv_bytes[start:stop].copy(),
            interrupts_per_sec=self.interrupts_per_sec[start:stop].copy(),
            dpc_time_frac=self.dpc_time_frac[start:stop].copy(),
            extras={
                key: np.asarray(value)[start:stop].copy()
                for key, value in self.extras.items()
            },
        )


def idle_activity(
    n_cores: int, n_seconds: int, idle_freq_ghz: float = 0.0
) -> ActivityTrace:
    """A fully idle trace: background OS housekeeping only.

    ``idle_freq_ghz`` should be the platform's lowest P-state (or 0.0 for
    server platforms that park idle processors in C1).
    """
    zeros = np.zeros(n_seconds)
    return ActivityTrace(
        core_util=np.full((n_cores, n_seconds), 0.01),
        core_freq_ghz=np.full((n_cores, n_seconds), float(idle_freq_ghz)),
        mem_pages_per_sec=zeros.copy(),
        page_faults_per_sec=np.full(n_seconds, 50.0),
        cache_faults_per_sec=np.full(n_seconds, 10.0),
        committed_bytes=np.full(n_seconds, 1.5e9),
        disk_read_bytes=zeros.copy(),
        disk_write_bytes=zeros.copy(),
        disk_busy_frac=zeros.copy(),
        net_sent_bytes=np.full(n_seconds, 1e3),
        net_recv_bytes=np.full(n_seconds, 1e3),
        interrupts_per_sec=np.full(n_seconds, 120.0),
        dpc_time_frac=np.full(n_seconds, 0.001),
    )
