"""Table II: significant counters per cluster, plus the general set.

Runs Algorithm 1 on every platform and renders the feature x platform
selection matrix with the cross-platform general column.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.counters.definitions import CounterCategory
from repro.experiments.data import (
    ALL_PLATFORM_KEYS,
    DataRepository,
    get_repository,
)
from repro.framework.reports import render_table


@dataclass
class Table2Result:
    """Selected features per platform and the general set."""

    selections: dict[str, tuple[str, ...]]
    general: tuple[str, ...]
    categories: dict[str, CounterCategory]

    @property
    def all_features(self) -> list[str]:
        """Union of selected features, grouped by category."""
        seen: dict[str, None] = {}
        for selected in self.selections.values():
            for name in selected:
                seen.setdefault(name)
        for name in self.general:
            seen.setdefault(name)
        return sorted(seen, key=lambda n: (self.categories[n].value, n))

    def rows(self) -> list[list[str]]:
        rows = []
        for feature in self.all_features:
            row = [self.categories[feature].value, feature]
            for platform in self.selections:
                row.append(
                    "X" if feature in self.selections[platform] else ""
                )
            row.append("X" if feature in self.general else "")
            rows.append(row)
        return rows

    def render(self) -> str:
        headers = ["category", "performance counter"]
        headers += list(self.selections)
        headers += ["General"]
        return render_table(
            headers,
            self.rows(),
            title="Table II: significant counters per cluster power model",
        )


def run_table2(repository: DataRepository | None = None) -> Table2Result:
    repo = repository if repository is not None else get_repository()
    selections: dict[str, tuple[str, ...]] = {}
    categories: dict[str, CounterCategory] = {}
    for platform in ALL_PLATFORM_KEYS:
        result = repo.selection(platform)
        selections[platform] = result.selected
        catalog = repo.cluster(platform).catalogs[platform]
        for name in result.selected:
            categories[name] = catalog.definition(name).category
    general = repo.general_features().features
    reference = repo.cluster(ALL_PLATFORM_KEYS[0]).catalogs[
        ALL_PLATFORM_KEYS[0]
    ]
    for name in general:
        categories.setdefault(name, reference.definition(name).category)
    return Table2Result(
        selections=selections, general=general, categories=categories
    )
