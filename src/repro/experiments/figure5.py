"""Figure 5: worst-case cluster power prediction on the desktop (Athlon).

Compares two cluster models on the worst test run:

* the prior-work strawman — a linear, CPU-utilization-only model built
  from a SINGLE machine and scaled to the cluster — which cannot predict
  the upper ~20% of the cluster power range, and
* the CHAOS quadratic model with the general feature set, fit on pooled
  cluster data, which tracks the entire dynamic range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.data import DataRepository, get_repository
from repro.framework.reports import format_percent, render_series
from repro.metrics.errors import dynamic_range_error
from repro.models.featuresets import cpu_only_set, general_set, pool_features
from repro.models.linear import LinearPowerModel
from repro.models.quadratic import QuadraticPowerModel

PLATFORM = "athlon"
WORKLOAD = "sort"


@dataclass
class Figure5Result:
    """Worst-run traces and accuracy for strawman vs CHAOS."""

    measured: np.ndarray
    strawman_prediction: np.ndarray
    chaos_prediction: np.ndarray
    strawman_dre: float
    chaos_dre: float
    strawman_top_shortfall_w: float
    chaos_top_shortfall_w: float

    def render(self) -> str:
        series = render_series(
            {
                "measured": self.measured,
                "strawman (scaled 1-machine linear, CPU only)":
                    self.strawman_prediction,
                "CHAOS (cluster quadratic, general features)":
                    self.chaos_prediction,
            },
            title=(
                "Figure 5: worst-case cluster power prediction, Athlon "
                "cluster"
            ),
        )
        summary = (
            f"strawman DRE {format_percent(self.strawman_dre)} "
            f"(mean shortfall in top-20% power region: "
            f"{self.strawman_top_shortfall_w:.1f} W) vs CHAOS DRE "
            f"{format_percent(self.chaos_dre)} (shortfall "
            f"{self.chaos_top_shortfall_w:.1f} W)"
        )
        return series + "\n" + summary


def _top_region_shortfall(
    measured: np.ndarray, predicted: np.ndarray
) -> float:
    """Mean (measured - predicted) over the top 20% of measured power."""
    threshold = np.quantile(measured, 0.8)
    mask = measured >= threshold
    return float(np.mean(measured[mask] - predicted[mask]))


def run_figure5(repository: DataRepository | None = None) -> Figure5Result:
    repo = repository if repository is not None else get_repository()
    runs = repo.runs(PLATFORM, WORKLOAD)
    train_run, test_runs = runs[0], runs[1:]
    cluster = repo.cluster(PLATFORM)
    catalog = cluster.catalogs[PLATFORM]

    # Strawman: linear CPU-utilization model of machine 0, applied to
    # every machine (i.e. "scaled" to the cluster by summation with no
    # per-machine or feature-selection treatment).
    cpu_set = cpu_only_set()
    first_machine = train_run.machine_ids[0]
    design, power = pool_features(
        [train_run], cpu_set, machine_ids=[first_machine]
    )
    strawman = LinearPowerModel(cpu_set.feature_names).fit(design, power)

    # CHAOS: quadratic on the general feature set, pooled over the cluster.
    general = general_set(
        tuple(
            name
            for name in repo.general_features().features
            if name in catalog
        )
    )
    design, power = pool_features([train_run], general)
    chaos = QuadraticPowerModel(general.feature_names).fit(design, power)

    # Pick the test run where the strawman misses the top of the range
    # hardest — the paper shows the worst case.
    worst = None
    for run in test_runs:
        measured = run.cluster_power()
        strawman_prediction = np.sum(
            [
                strawman.predict(cpu_set.extract(run.logs[machine_id]))
                for machine_id in run.machine_ids
            ],
            axis=0,
        )
        chaos_prediction = np.sum(
            [
                chaos.predict(general.extract(run.logs[machine_id]))
                for machine_id in run.machine_ids
            ],
            axis=0,
        )
        shortfall = _top_region_shortfall(measured, strawman_prediction)
        if worst is None or shortfall > worst[0]:
            worst = (shortfall, measured, strawman_prediction, chaos_prediction)

    shortfall, measured, strawman_prediction, chaos_prediction = worst
    return Figure5Result(
        measured=measured,
        strawman_prediction=strawman_prediction,
        chaos_prediction=chaos_prediction,
        strawman_dre=dynamic_range_error(measured, strawman_prediction),
        chaos_dre=dynamic_range_error(measured, chaos_prediction),
        strawman_top_shortfall_w=shortfall,
        chaos_top_shortfall_w=_top_region_shortfall(
            measured, chaos_prediction
        ),
    )
