"""Sampling-rate study: 1 Hz vs coarse averaging windows.

Section II places CHAOS's 1 Hz sampling between two extremes: OS-scheduler
-rate models (which catch PSU spikes CHAOS cannot) and 10-minute-interval
or whole-workload-energy models, which "miss application-level behavior
patterns".  This experiment quantifies the coarse end on our substrate:
counters and power are averaged over increasingly long windows before
training and evaluation, and we track

* how much of the cluster's dynamic power range survives averaging (the
  behavior patterns themselves), and
* how badly a peak-power consumer (capping!) is misled by the averaged
  model's view.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.data import DataRepository, get_repository
from repro.framework.reports import format_percent, render_table
from repro.models.featuresets import cluster_set, pool_features
from repro.models.quadratic import QuadraticPowerModel

PLATFORM = "core2"
WORKLOAD = "pagerank"
WINDOWS_S = (1, 10, 60, 300)


def average_windows(values: np.ndarray, window: int) -> np.ndarray:
    """Non-overlapping window means along axis 0 (trailing partial kept)."""
    values = np.asarray(values, dtype=float)
    if window <= 1:
        return values.copy()
    n_full = values.shape[0] // window
    if n_full == 0:
        return values.mean(axis=0, keepdims=True)
    head = values[: n_full * window]
    shape = (n_full, window) + values.shape[1:]
    averaged = head.reshape(shape).mean(axis=1)
    if values.shape[0] % window:
        tail = values[n_full * window:].mean(axis=0, keepdims=True)
        averaged = np.concatenate([averaged, tail], axis=0)
    return averaged


@dataclass
class SamplingRateRow:
    window_s: int
    retained_range_frac: float
    """Dynamic range of the averaged power / the 1 Hz dynamic range."""

    peak_underestimate_w: float
    """True 1 Hz peak minus the averaged-model's predicted peak."""

    samples_per_run: int


@dataclass
class SamplingRateResult:
    rows: list[SamplingRateRow]

    def render(self) -> str:
        table = render_table(
            ["window", "retained dynamic range", "peak underestimate",
             "samples/run"],
            [
                [
                    f"{row.window_s} s",
                    format_percent(row.retained_range_frac),
                    f"{row.peak_underestimate_w:.1f} W",
                    row.samples_per_run,
                ]
                for row in self.rows
            ],
            title=(
                "Sampling-rate study (Core 2, PageRank): averaging windows "
                "erase the application behavior 1 Hz models capture"
            ),
        )
        return table

    def row(self, window_s: int) -> SamplingRateRow:
        for row in self.rows:
            if row.window_s == window_s:
                return row
        raise KeyError(f"no row for window {window_s}")


def run_sampling_rate(
    repository: DataRepository | None = None,
) -> SamplingRateResult:
    repo = repository if repository is not None else get_repository()
    runs = repo.runs(PLATFORM, WORKLOAD)
    feature_set = cluster_set(repo.selection(PLATFORM).selected)
    train_runs, test_run = runs[:-1], runs[-1]

    design_1hz, power_1hz = pool_features(train_runs, feature_set)
    test_design = feature_set.extract(
        test_run.logs[test_run.machine_ids[0]]
    )
    test_power = test_run.logs[test_run.machine_ids[0]].power_w
    true_range = float(test_power.max() - test_power.min())
    true_peak = float(test_power.max())

    rows = []
    for window in WINDOWS_S:
        design = average_windows(design_1hz, window)
        power = average_windows(power_1hz, window)
        model = QuadraticPowerModel(feature_set.feature_names).fit(
            design, power
        )
        averaged_test_design = average_windows(test_design, window)
        averaged_test_power = average_windows(test_power, window)
        prediction = model.predict(averaged_test_design)
        retained = (
            float(averaged_test_power.max() - averaged_test_power.min())
            / true_range
        )
        rows.append(SamplingRateRow(
            window_s=window,
            retained_range_frac=retained,
            peak_underestimate_w=true_peak - float(prediction.max()),
            samples_per_run=int(averaged_test_power.shape[0]),
        ))
    return SamplingRateResult(rows=rows)
