"""Shared, cached experiment data.

Every table and figure draws on the same measurement campaign: six
5-machine clusters, four workloads, five runs each, plus each cluster's
Algorithm 1 feature selection and the cross-platform general set.  The
``DataRepository`` generates each artifact once per process and caches it,
so the benchmark suite does not redo identical work per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.cluster import DEFAULT_SEED, Cluster
from repro.cluster.runner import ClusterRun, execute_runs
from repro.models.featuresets import (
    FeatureSet,
    cluster_plus_lagged_frequency,
    cluster_set,
    cpu_only_set,
    general_set,
)
from repro.platforms.specs import ALL_PLATFORMS, get_platform
from repro.selection.algorithm1 import (
    Algorithm1Result,
    SelectionConfig,
    run_algorithm1,
)
from repro.selection.general import GeneralFeatureSet, derive_general_set
from repro.workloads.suite import WORKLOAD_NAMES, default_suite

ALL_PLATFORM_KEYS: tuple[str, ...] = tuple(p.key for p in ALL_PLATFORMS)


@dataclass
class DataRepository:
    """Process-wide cache of clusters, runs and feature selections."""

    seed: int = DEFAULT_SEED
    n_runs: int = 5
    n_machines: int = 5
    selection_config: SelectionConfig = field(default_factory=SelectionConfig)

    _clusters: dict[str, Cluster] = field(default_factory=dict, repr=False)
    _runs: dict[tuple[str, str], list[ClusterRun]] = field(
        default_factory=dict, repr=False
    )
    _selections: dict[str, Algorithm1Result] = field(
        default_factory=dict, repr=False
    )
    _general: GeneralFeatureSet | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    def cluster(self, platform_key: str) -> Cluster:
        if platform_key not in self._clusters:
            self._clusters[platform_key] = Cluster.homogeneous(
                get_platform(platform_key),
                n_machines=self.n_machines,
                seed=self.seed,
            )
        return self._clusters[platform_key]

    def runs(self, platform_key: str, workload_name: str) -> list[ClusterRun]:
        key = (platform_key, workload_name)
        if key not in self._runs:
            workload = default_suite()[workload_name]
            self._runs[key] = execute_runs(
                self.cluster(platform_key), workload, n_runs=self.n_runs
            )
        return self._runs[key]

    def runs_by_workload(self, platform_key: str) -> dict[str, list[ClusterRun]]:
        return {
            name: self.runs(platform_key, name) for name in WORKLOAD_NAMES
        }

    def selection(self, platform_key: str) -> Algorithm1Result:
        if platform_key not in self._selections:
            self._selections[platform_key] = run_algorithm1(
                self.cluster(platform_key),
                self.runs_by_workload(platform_key),
                config=self.selection_config,
            )
        return self._selections[platform_key]

    def general_features(self) -> GeneralFeatureSet:
        """The cross-platform general set (requires all six selections)."""
        if self._general is None:
            results = [self.selection(key) for key in ALL_PLATFORM_KEYS]
            catalogs = [
                self.cluster(key).catalogs[key] for key in ALL_PLATFORM_KEYS
            ]
            self._general = derive_general_set(results, catalogs)
        return self._general

    # ------------------------------------------------------------------
    def feature_sets(
        self,
        platform_key: str,
        include_general: bool = True,
        include_lagged: bool = True,
    ) -> list[FeatureSet]:
        """The evaluation feature sets for one platform (U, C, CP, G)."""
        selected = self.selection(platform_key).selected
        sets = [cpu_only_set(), cluster_set(selected)]
        if include_lagged:
            sets.append(cluster_plus_lagged_frequency(selected))
        if include_general:
            sets.append(general_set(self.general_features().features))
        return sets

    def clear(self) -> None:
        """Drop every cached artifact (tests use this for isolation)."""
        self._clusters.clear()
        self._runs.clear()
        self._selections.clear()
        self._general = None


_repository: DataRepository | None = None


def get_repository() -> DataRepository:
    """The process-wide shared repository (created on first use)."""
    global _repository
    if _repository is None:
        _repository = DataRepository()
    return _repository
