"""Section V-B: heterogeneous cluster composition.

A 10-machine cluster of Core 2 Duo and Opteron machines.  Each machine is
predicted with its *own platform's* machine model (trained on that
platform's homogeneous cluster) and cluster power is the Eq. 5 sum; the
paper reports the same worst-case ~12% DRE as the homogeneous clusters —
composition is essentially free.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.cluster.runner import execute_runs
from repro.experiments.data import DataRepository, get_repository
from repro.framework.chaos import fit_platform_model
from repro.framework.reports import format_percent, render_table
from repro.metrics.summary import AccuracyReport, ReportCollection
from repro.models.composition import compose_cluster_model
from repro.models.featuresets import cluster_set
from repro.platforms.specs import get_platform
from repro.workloads.suite import WORKLOAD_NAMES, default_suite

PLATFORMS = ("core2", "opteron")


@dataclass
class HeteroResult:
    """Cluster-level accuracy of the composed heterogeneous model."""

    per_workload: dict[str, ReportCollection]

    @property
    def worst_dre(self) -> float:
        return max(
            max(report.dre for report in collection.reports)
            for collection in self.per_workload.values()
        )

    def rows(self) -> list[list[str]]:
        return [
            [
                workload,
                format_percent(collection.mean_dre),
                format_percent(max(r.dre for r in collection.reports)),
                format_percent(collection.mean_percent_error),
            ]
            for workload, collection in self.per_workload.items()
        ]

    def render(self) -> str:
        table = render_table(
            ["workload", "mean cluster DRE", "worst DRE", "mean %err"],
            self.rows(),
            title=(
                "Heterogeneous 10-machine cluster (5x Core 2 + 5x Opteron), "
                "composed per-platform models (Eq. 5)"
            ),
        )
        footer = (
            f"worst-case DRE {format_percent(self.worst_dre)} "
            "(paper: same ~12% worst case as homogeneous clusters)"
        )
        return table + "\n" + footer


def run_hetero(
    repository: DataRepository | None = None, n_runs: int = 3
) -> HeteroResult:
    repo = repository if repository is not None else get_repository()

    # Per-platform machine models, trained on the homogeneous clusters.
    platform_models = []
    for platform in PLATFORMS:
        feature_set = cluster_set(repo.selection(platform).selected)
        platform_models.append(
            fit_platform_model(
                repo.runs_by_workload(platform),
                feature_set,
                platform_key=platform,
                model_code="Q",
                train_fraction=0.3,
                seed=11,
            )
        )

    # The mixed cluster reuses the same physical machines (same variation
    # streams), so the models genuinely carry over.
    hetero = Cluster.heterogeneous(
        [(get_platform(platform), 5) for platform in PLATFORMS],
        seed=repo.seed,
    )
    machine_platforms = {
        machine.machine_id: machine.spec.key for machine in hetero.machines
    }
    model = compose_cluster_model(platform_models, machine_platforms)

    suite = default_suite()
    per_workload: dict[str, ReportCollection] = {}
    for workload_name in WORKLOAD_NAMES:
        collection = ReportCollection()
        runs = execute_runs(hetero, suite[workload_name], n_runs=n_runs)
        for run in runs:
            measured = run.cluster_power()
            predicted = model.predict_cluster(run)
            collection.add(
                AccuracyReport.from_predictions(measured, predicted)
            )
        per_workload[workload_name] = collection
    return HeteroResult(per_workload=per_workload)
