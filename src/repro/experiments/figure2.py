"""Figure 2: feature weighted-occurrence histogram for the Opteron cluster.

Step 5 of Algorithm 1 stacks each feature's weighted occurrences across
all machines and workloads; the horizontal threshold line separates the
selected features from the discarded ones.  Processor utilization should
be the most commonly identified feature.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.data import DataRepository, get_repository
from repro.framework.reports import render_histogram
from repro.models.featuresets import CPU_UTILIZATION_COUNTER

PLATFORM = "opteron"


@dataclass
class Figure2Result:
    """The Opteron feature histogram and selection threshold."""

    histogram: dict[str, float]
    initial_threshold: float
    effective_threshold: float
    selected: tuple[str, ...]

    @property
    def top_feature(self) -> str:
        return max(self.histogram, key=self.histogram.get)

    def render(self) -> str:
        chart = render_histogram(
            # Only show features that were at least occasionally selected;
            # the full catalog tail is all zeros.
            {k: v for k, v in self.histogram.items() if v >= 1.0},
            threshold=self.effective_threshold,
            title=(
                "Figure 2: weighted feature occurrences, Opteron cluster "
                "(all machines x all workloads)"
            ),
        )
        summary = (
            f"initial threshold {self.initial_threshold:.0f} -> effective "
            f"threshold {self.effective_threshold:.1f} after step 6; "
            f"{len(self.selected)} features selected; most common: "
            f"{self.top_feature}"
        )
        return chart + "\n" + summary


def run_figure2(repository: DataRepository | None = None) -> Figure2Result:
    repo = repository if repository is not None else get_repository()
    selection = repo.selection(PLATFORM)
    return Figure2Result(
        histogram=selection.histogram,
        initial_threshold=selection.pooled.initial_threshold,
        effective_threshold=selection.pooled.effective_threshold,
        selected=selection.selected,
    )


def cpu_utilization_is_top(result: Figure2Result) -> bool:
    """The paper's observation: utilization tops the histogram."""
    return result.top_feature == CPU_UTILIZATION_COUNTER
