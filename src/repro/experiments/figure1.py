"""Figure 1: cluster power signatures on the mobile (Core 2 Duo) cluster.

Five runs of each workload; each workload shows a dramatically different
power profile, with cluster dynamic power between ~120 W and ~220 W
(5 machines x 25-46 W each).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.data import DataRepository, get_repository
from repro.framework.reports import render_series, render_table
from repro.workloads.suite import WORKLOAD_NAMES

PLATFORM = "core2"


@dataclass
class Figure1Result:
    """Cluster power traces per workload per run, plus summary stats."""

    traces: dict[str, list[np.ndarray]]
    n_machines: int = 5

    def summary_rows(self) -> list[list[str]]:
        rows = []
        for workload, runs in self.traces.items():
            low = min(float(np.min(t)) for t in runs)
            high = max(float(np.max(t)) for t in runs)
            durations = [t.size for t in runs]
            rows.append([
                workload,
                f"{len(runs)}",
                f"{min(durations)}-{max(durations)} s",
                f"{low:.0f} W",
                f"{high:.0f} W",
            ])
        return rows

    @property
    def global_min_w(self) -> float:
        return min(
            float(np.min(t)) for runs in self.traces.values() for t in runs
        )

    @property
    def global_max_w(self) -> float:
        return max(
            float(np.max(t)) for runs in self.traces.values() for t in runs
        )

    def render(self) -> str:
        n_runs = max(len(runs) for runs in self.traces.values())
        table = render_table(
            ["workload", "runs", "duration", "min power", "max power"],
            self.summary_rows(),
            title=(
                f"Figure 1: full-system cluster power, "
                f"{self.n_machines}x Core 2 Duo, {n_runs} runs per workload"
            ),
        )
        preview = render_series(
            {name: runs[0] for name, runs in self.traces.items()},
            title="run 0 trace previews (W):",
        )
        band = (
            f"cluster dynamic power band: {self.global_min_w:.0f}-"
            f"{self.global_max_w:.0f} W (paper: ~120-220 W)"
        )
        return "\n\n".join([table, preview, band])


def run_figure1(repository: DataRepository | None = None) -> Figure1Result:
    repo = repository if repository is not None else get_repository()
    traces: dict[str, list[np.ndarray]] = {}
    for workload in WORKLOAD_NAMES:
        runs = repo.runs(PLATFORM, workload)
        traces[workload] = [run.cluster_power() for run in runs]
    return Figure1Result(traces=traces, n_machines=repo.n_machines)
