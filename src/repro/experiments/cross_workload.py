"""Cross-workload generalization (Section V-C's caveat).

"We do not claim that these general models are applicable for any and
all workloads that run on this hardware.  This is the main motivation
for the automated model generation framework."

This experiment measures exactly that: for each workload, train the
quadratic cluster model on the OTHER three workloads and evaluate on the
held-out one, against the multi-workload model trained on all four.  The
gap is the price of encountering a workload the model never saw — and
the reason the framework makes regeneration cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.data import DataRepository, get_repository
from repro.framework.reports import format_percent, render_table
from repro.metrics.summary import AccuracyReport
from repro.models.featuresets import cluster_set, pool_features
from repro.models.quadratic import QuadraticPowerModel
from repro.workloads.suite import WORKLOAD_NAMES

PLATFORM = "opteron"


@dataclass
class CrossWorkloadResult:
    """Held-out-workload DRE vs multi-workload DRE, per workload."""

    unseen_dre: dict[str, float]
    multiworkload_dre: dict[str, float]

    def gap(self, workload: str) -> float:
        return self.unseen_dre[workload] - self.multiworkload_dre[workload]

    @property
    def worst_unseen_dre(self) -> float:
        return max(self.unseen_dre.values())

    @property
    def mean_gap(self) -> float:
        return float(np.mean([self.gap(w) for w in self.unseen_dre]))

    def render(self) -> str:
        table = render_table(
            ["held-out workload", "trained on other 3", "trained on all 4",
             "gap"],
            [
                [
                    workload,
                    format_percent(self.unseen_dre[workload]),
                    format_percent(self.multiworkload_dre[workload]),
                    format_percent(self.gap(workload), decimals=2),
                ]
                for workload in self.unseen_dre
            ],
            title=(
                "Cross-workload generalization (Opteron, quadratic on "
                "cluster features)"
            ),
        )
        footer = (
            f"mean generalization gap {format_percent(self.mean_gap, 2)}; "
            "regenerating the model with the new workload's data (one "
            "framework run) closes it"
        )
        return table + "\n" + footer


def _evaluate(model, feature_set, runs) -> float:
    dres = []
    for run in runs:
        for machine_id in run.machine_ids:
            log = run.logs[machine_id]
            prediction = model.predict(feature_set.extract(log))
            dres.append(
                AccuracyReport.from_predictions(log.power_w, prediction).dre
            )
    return float(np.mean(dres))


def run_cross_workload(
    repository: DataRepository | None = None,
    platform_key: str = PLATFORM,
) -> CrossWorkloadResult:
    repo = repository if repository is not None else get_repository()
    feature_set = cluster_set(repo.selection(platform_key).selected)
    runs_by_workload = repo.runs_by_workload(platform_key)

    unseen: dict[str, float] = {}
    multi: dict[str, float] = {}
    for held_out in WORKLOAD_NAMES:
        test_runs = runs_by_workload[held_out][-2:]

        other_runs = [
            run
            for name in WORKLOAD_NAMES
            if name != held_out
            for run in runs_by_workload[name][:3]
        ]
        design, power = pool_features(other_runs, feature_set)
        unseen_model = QuadraticPowerModel(
            feature_set.feature_names
        ).fit(design, power)
        unseen[held_out] = _evaluate(unseen_model, feature_set, test_runs)

        all_runs = other_runs + runs_by_workload[held_out][:3]
        design, power = pool_features(all_runs, feature_set)
        multi_model = QuadraticPowerModel(
            feature_set.feature_names
        ).fit(design, power)
        multi[held_out] = _evaluate(multi_model, feature_set, test_runs)

    return CrossWorkloadResult(unseen_dre=unseen, multiworkload_dre=multi)
