"""The paper's reported numbers, as data.

Transcribed from the IISWC 2012 text so that comparisons in
`EXPERIMENTS.md` can be produced programmatically (and audited): Table I
power ranges, Table III error metrics, Table IV best DREs with their
winning-model labels, and the headline scalar claims.

``compare_table4`` renders a measured `Table4Result` side by side with
the paper and summarizes the fidelity: how many cells stay within the
paper's <12% bound, and whether the winning-technique mix matches the
paper's quadratic-dominant story.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.framework.reports import format_percent, render_table

# Table I: (idle W, max W) per platform.
PAPER_TABLE1_RANGES: dict[str, tuple[float, float]] = {
    "atom": (22.0, 26.0),
    "core2": (25.0, 46.0),
    "athlon": (54.0, 104.0),
    "opteron": (135.0, 190.0),
    "xeon_sata": (250.0, 375.0),
    "xeon_sas": (260.0, 380.0),
}

# Table III: (rMSE W, %err, DRE) per workload, for Core 2 and Atom.
PAPER_TABLE3: dict[str, dict[str, tuple[float, float, float]]] = {
    "core2": {
        "prime": (2.69, 0.087, 0.147),
        "pagerank": (2.74, 0.081, 0.147),
        "sort": (2.19, 0.067, 0.128),
        "wordcount": (2.22, 0.068, 0.125),
    },
    "atom": {
        "prime": (0.57, 0.024, 0.308),
        "pagerank": (0.64, 0.026, 0.194),
        "sort": (0.69, 0.028, 0.115),
        "wordcount": (0.64, 0.026, 0.227),
    },
}

# Table IV: (best DRE, winning label) per (workload, platform).
PAPER_TABLE4: dict[tuple[str, str], tuple[float, str]] = {
    ("pagerank", "atom"): (0.092, "PU"),
    ("pagerank", "core2"): (0.074, "QC"),
    ("pagerank", "athlon"): (0.089, "QC"),
    ("pagerank", "opteron"): (0.077, "QCP"),
    ("pagerank", "xeon_sata"): (0.096, "QCP"),
    ("pagerank", "xeon_sas"): (0.081, "QCP"),
    ("prime", "atom"): (0.107, "QC"),
    ("prime", "core2"): (0.049, "QC"),
    ("prime", "athlon"): (0.036, "QC"),
    ("prime", "opteron"): (0.025, "QC"),
    ("prime", "xeon_sata"): (0.086, "QC"),
    ("prime", "xeon_sas"): (0.099, "QC"),
    ("sort", "atom"): (0.102, "QC"),
    ("sort", "core2"): (0.074, "QC"),
    ("sort", "athlon"): (0.061, "QC"),
    ("sort", "opteron"): (0.079, "QC"),
    ("sort", "xeon_sata"): (0.110, "QG"),
    ("sort", "xeon_sas"): (0.105, "QC"),
    ("wordcount", "atom"): (0.114, "LC"),
    ("wordcount", "core2"): (0.098, "SC"),
    ("wordcount", "athlon"): (0.060, "QG"),
    ("wordcount", "opteron"): (0.076, "QC"),
    ("wordcount", "xeon_sata"): (0.098, "QC"),
    ("wordcount", "xeon_sas"): (0.092, "QC"),
}

# Headline scalar claims.
PAPER_CLAIMS = {
    "worst_best_dre": 0.12,
    "median_relative_error_band": (0.005, 0.025),
    "general_set_worst_penalty": 0.01,
    "general_set_penalty_excluding_outlier": 0.0025,
    "overhead_cpu_fraction": 0.01,
    "opteron_core0_divergence": 0.12,
    "xeon_core0_divergence": 0.20,
    "machine_power_variation_max": 0.10,
    "meter_accuracy": 0.015,
}


def paper_table4_worst_best_dre() -> float:
    """The worst best-case DRE the paper reports (Atom/WordCount, 11.4%)."""
    return max(dre for dre, _ in PAPER_TABLE4.values())


def paper_table4_winner_counts() -> dict[str, int]:
    counts: dict[str, int] = {}
    for _, label in PAPER_TABLE4.values():
        counts[label] = counts.get(label, 0) + 1
    return counts


@dataclass
class Table4Comparison:
    """Side-by-side of measured vs paper Table IV."""

    rows: list[list[str]]
    n_cells: int
    n_within_bound: int
    measured_quadratic_wins: int
    paper_quadratic_wins: int

    def render(self) -> str:
        table = render_table(
            ["workload", "platform", "paper", "measured"],
            self.rows,
            title="Table IV, paper vs measured (best DRE, winning model)",
        )
        footer = (
            f"{self.n_within_bound}/{self.n_cells} measured cells within "
            f"the paper's 12% bound; quadratic-family winners: paper "
            f"{self.paper_quadratic_wins}/{self.n_cells}, measured "
            f"{self.measured_quadratic_wins}/{self.n_cells}"
        )
        return table + "\n" + footer


def compare_table4(measured) -> Table4Comparison:
    """Build the side-by-side from a measured ``Table4Result``."""
    rows = []
    within = 0
    measured_q = 0
    paper_q = 0
    n_cells = 0
    for (workload, platform), (paper_dre, paper_label) in PAPER_TABLE4.items():
        cell = measured.cells.get((platform, workload))
        if cell is None:
            continue
        n_cells += 1
        if cell.best_dre < PAPER_CLAIMS["worst_best_dre"]:
            within += 1
        if cell.best_label.startswith("Q"):
            measured_q += 1
        if paper_label.startswith("Q"):
            paper_q += 1
        rows.append([
            workload,
            platform,
            f"{format_percent(paper_dre)}, {paper_label}",
            f"{format_percent(cell.best_dre)}, {cell.best_label}",
        ])
    return Table4Comparison(
        rows=rows,
        n_cells=n_cells,
        n_within_bound=within,
        measured_quadratic_wins=measured_q,
        paper_quadratic_wins=paper_q,
    )
