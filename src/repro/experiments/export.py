"""CSV export of figure/table data.

The benchmark harness renders ASCII; anyone wanting to *plot* the
reproduced figures (Figure 1's traces, Figure 5's three curves, the
Figure 3/4 DRE grids) needs the underlying numbers.  These helpers write
them as plain CSV, one file per artifact, via ``export_result``.
"""

from __future__ import annotations

import io
import pathlib

import numpy as np

from repro.experiments.figure1 import Figure1Result
from repro.experiments.figure5 import Figure5Result
from repro.experiments.model_grid import ModelGridResult
from repro.experiments.table3 import Table3Result
from repro.experiments.table4 import Table4Result


def series_csv(series: dict[str, np.ndarray]) -> str:
    """Columns = series names; rows = seconds.  Ragged series are padded
    with empty cells (runs have different durations)."""
    if not series:
        raise ValueError("nothing to export")
    names = list(series)
    length = max(len(values) for values in series.values())
    buffer = io.StringIO()
    buffer.write(",".join(["t"] + names) + "\n")
    for t in range(length):
        cells = [str(t)]
        for name in names:
            values = series[name]
            cells.append(f"{values[t]:.3f}" if t < len(values) else "")
        buffer.write(",".join(cells) + "\n")
    return buffer.getvalue()


def figure1_csv(result: Figure1Result) -> str:
    """All workloads x runs as columns (``sort/run0`` etc.)."""
    series = {
        f"{workload}/run{index}": trace
        for workload, runs in result.traces.items()
        for index, trace in enumerate(runs)
    }
    return series_csv(series)


def figure5_csv(result: Figure5Result) -> str:
    return series_csv({
        "measured": result.measured,
        "strawman": result.strawman_prediction,
        "chaos": result.chaos_prediction,
    })


def grid_csv(result: ModelGridResult) -> str:
    buffer = io.StringIO()
    buffer.write("model,feature_set,machine_dre\n")
    for evaluation in result.sweep.evaluations:
        buffer.write(
            f"{evaluation.model_code},{evaluation.feature_set_name},"
            f"{evaluation.mean_machine_dre:.6f}\n"
        )
    return buffer.getvalue()


def table3_csv(result: Table3Result) -> str:
    buffer = io.StringIO()
    buffer.write("workload,platform,rmse_w,percent_error,dre\n")
    for row in result.rows:
        for platform in row.rmse:
            buffer.write(
                f"{row.workload_name},{platform},{row.rmse[platform]:.4f},"
                f"{row.percent_error[platform]:.6f},"
                f"{row.dre[platform]:.6f}\n"
            )
    return buffer.getvalue()


def table4_csv(result: Table4Result) -> str:
    buffer = io.StringIO()
    buffer.write("workload,platform,best_dre,best_label\n")
    for (platform, workload), cell in result.cells.items():
        buffer.write(
            f"{workload},{platform},{cell.best_dre:.6f},{cell.best_label}\n"
        )
    return buffer.getvalue()


_EXPORTERS = {
    Figure1Result: figure1_csv,
    Figure5Result: figure5_csv,
    ModelGridResult: grid_csv,
    Table3Result: table3_csv,
    Table4Result: table4_csv,
}


def export_result(name: str, result, directory) -> pathlib.Path | None:
    """Write an artifact's data CSV if an exporter exists.

    Returns the written path, or None for artifacts without tabular data.
    """
    exporter = _EXPORTERS.get(type(result))
    if exporter is None:
        return None
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.csv"
    path.write_text(exporter(result))
    return path
