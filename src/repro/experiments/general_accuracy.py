"""Section V-C: the general feature set costs at most ~1% DRE.

For every (platform, workload) cell, compare the best modeling technique
on cluster-specific features against the best technique on the general
set.  The paper's claim: worst-case penalty < 1% DRE, and < 0.25%
excluding the single worst outlier.

(The comparison is per the platform's own best technique on each side —
the Atom's adequate model is linear, the DVFS platforms' quadratic —
matching how the paper deploys "the general feature set model".)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.data import (
    ALL_PLATFORM_KEYS,
    DataRepository,
    get_repository,
)
from repro.framework.crossval import cross_validate
from repro.framework.reports import format_percent, render_table
from repro.models.featuresets import FeatureSet, cluster_set, general_set
from repro.models.registry import supports_feature_set
from repro.workloads.suite import WORKLOAD_NAMES

_TECHNIQUES = ("L", "P", "Q")


@dataclass
class GeneralAccuracyResult:
    """Best-technique DRE on cluster vs general features, per cell."""

    cluster_dre: dict[tuple[str, str], float]
    general_dre: dict[tuple[str, str], float]

    def penalty(self, platform: str, workload: str) -> float:
        key = (platform, workload)
        return self.general_dre[key] - self.cluster_dre[key]

    @property
    def penalties(self) -> list[float]:
        return [
            self.penalty(platform, workload)
            for platform, workload in self.cluster_dre
        ]

    @property
    def worst_penalty(self) -> float:
        return max(self.penalties)

    @property
    def worst_penalty_excluding_outlier(self) -> float:
        ordered = sorted(self.penalties)
        return ordered[-2] if len(ordered) > 1 else ordered[-1]

    def rows(self) -> list[list[str]]:
        rows = []
        for platform, workload in self.cluster_dre:
            rows.append([
                platform,
                workload,
                format_percent(self.cluster_dre[(platform, workload)]),
                format_percent(self.general_dre[(platform, workload)]),
                format_percent(self.penalty(platform, workload), decimals=2),
            ])
        return rows

    def render(self) -> str:
        table = render_table(
            ["platform", "workload", "cluster-set DRE", "general-set DRE",
             "penalty"],
            self.rows(),
            title=(
                "General vs cluster-specific feature set "
                "(best technique per side)"
            ),
        )
        footer = (
            f"worst penalty {format_percent(self.worst_penalty, 2)} "
            f"(paper: <1%); excluding worst outlier "
            f"{format_percent(self.worst_penalty_excluding_outlier, 2)} "
            "(paper: <=0.25%)"
        )
        return table + "\n" + footer


def _best_dre(runs, feature_set: FeatureSet, seed: int) -> float:
    best = None
    for code in _TECHNIQUES:
        if not supports_feature_set(code, feature_set):
            continue
        evaluation = cross_validate(
            runs, model_code=code, feature_set=feature_set, seed=seed
        )
        dre = evaluation.mean_machine_dre
        if best is None or dre < best:
            best = dre
    if best is None:
        raise ValueError("no technique supports this feature set")
    return best


def run_general_accuracy(
    repository: DataRepository | None = None,
    platform_keys: tuple[str, ...] = ALL_PLATFORM_KEYS,
) -> GeneralAccuracyResult:
    repo = repository if repository is not None else get_repository()
    general_features = repo.general_features().features

    cluster_dre: dict[tuple[str, str], float] = {}
    general_dre: dict[tuple[str, str], float] = {}
    for platform in platform_keys:
        catalog = repo.cluster(platform).catalogs[platform]
        c_set = cluster_set(repo.selection(platform).selected)
        g_set = general_set(
            tuple(name for name in general_features if name in catalog)
        )
        for workload in WORKLOAD_NAMES:
            runs = repo.runs(platform, workload)
            cluster_dre[(platform, workload)] = _best_dre(runs, c_set, seed=5)
            general_dre[(platform, workload)] = _best_dre(runs, g_set, seed=5)
    return GeneralAccuracyResult(
        cluster_dre=cluster_dre, general_dre=general_dre
    )
