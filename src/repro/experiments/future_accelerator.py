"""Future work (Section V-D): accelerators with hidden system state.

"...GPU and accelerator activity with hidden system state will require
performance counters that can capture this activity, areas of future
work."

We build that future machine: an Opteron variant carrying an accelerator
card whose power draw is real but invisible to every OS counter in the
catalog.  A workload offloads compute bursts to the card; the standard
CHAOS model's accuracy degrades by exactly the unexplained accelerator
power, and adding a hypothetical accelerator-utilization counter (the
counter the paper says future OSes must expose) restores it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.runner import execute_runs
from repro.framework.reports import format_percent, render_table
from repro.metrics.summary import AccuracyReport
from repro.models.featuresets import (
    CPU_UTILIZATION_COUNTER,
    FREQUENCY_COUNTER,
)
from repro.models.quadratic import QuadraticPowerModel
from repro.platforms.specs import OPTERON
from repro.workloads.base import ar1_series
from repro.workloads.prime import PrimeWorkload

ACCELERATOR_PEAK_W = 35.0
"""Card TDP-scale draw at full utilization (a mid-range 2012 GPU)."""

ACCELERATOR_COUNTER = r"\Accelerator(0)\% Utilization"
"""The counter a future OS would expose; today it does not exist."""


class OffloadingPrime(PrimeWorkload):
    """Prime that offloads bursts of candidate-checking to the card.

    Accelerator utilization lives in ``extras`` — latent machine state
    that no catalog counter derives from, i.e. hidden from the models.
    """

    name = "prime-offload"

    def generate_run(self, machines, run_index, seed):
        traces = super().generate_run(machines, run_index, seed)
        for machine_index, (machine_id, trace) in enumerate(traces.items()):
            rng = np.random.default_rng(
                [seed, run_index, 4242, machine_index]
            )
            n = trace.n_seconds
            # Bursty offload: on/off episodes a few tens of seconds long,
            # active only while the CPU is also working.
            episodes = (
                ar1_series(rng, n, sigma=1.0, rho=0.95) > 0.35
            ).astype(float)
            level = np.clip(
                0.6 + ar1_series(rng, n, sigma=0.25, rho=0.9), 0.0, 1.0
            )
            busy = trace.cpu_util > 0.1
            trace.extras["accelerator_util"] = episodes * level * busy
        return traces


def _true_power_with_accelerator(machine, trace, rng) -> np.ndarray:
    """Host power plus the card's draw (idle draw folded into the host)."""
    host = machine.true_power(trace, rng=rng)
    accel = trace.extras["accelerator_util"] * ACCELERATOR_PEAK_W
    return host + accel


@dataclass
class FutureAcceleratorResult:
    dre_hidden: float
    """DRE with the accelerator invisible to the model."""

    dre_with_counter: float
    """DRE once the accelerator-utilization counter exists."""

    accel_mean_w: float

    @property
    def recovered(self) -> float:
        return self.dre_hidden - self.dre_with_counter

    def render(self) -> str:
        table = render_table(
            ["configuration", "machine DRE"],
            [
                ["accelerator hidden (today's counters)",
                 format_percent(self.dre_hidden)],
                [f"with {ACCELERATOR_COUNTER}",
                 format_percent(self.dre_with_counter)],
            ],
            title=(
                "Future work: accelerator with hidden state "
                "(offloading Prime, quadratic models)"
            ),
        )
        footer = (
            f"card draws {self.accel_mean_w:.1f} W on average; exposing "
            f"its utilization counter recovers "
            f"{format_percent(self.recovered, 2)} DRE"
        )
        return table + "\n" + footer


def run_future_accelerator(seed: int = 808) -> FutureAcceleratorResult:
    cluster = Cluster.homogeneous(OPTERON, seed=seed)
    workload = OffloadingPrime()
    runs = execute_runs(cluster, workload, n_runs=4)

    # Rebuild the latent traces (with accelerator state) and the
    # accelerator-inclusive power for every machine-run.
    base_counters = [CPU_UTILIZATION_COUNTER, FREQUENCY_COUNTER,
                     r"\Memory\Page Faults/sec"]
    datasets = []  # (run_index, machine_id, X_base, accel_col, power)
    for run in runs:
        traces = workload.generate_run(
            cluster.machines, run_index=run.run_index, seed=cluster.seed
        )
        for machine_index, machine in enumerate(cluster.machines):
            log = run.logs[machine.machine_id]
            trace = traces[machine.machine_id]
            rng = np.random.default_rng(
                [seed, run.run_index, machine_index, 999]
            )
            power = _true_power_with_accelerator(machine, trace, rng)
            base = log.select(base_counters)
            accel = (trace.extras["accelerator_util"] * 100.0)[:, None]
            datasets.append((run.run_index, base, accel, power))

    def evaluate(with_counter: bool) -> float:
        train = [d for d in datasets if d[0] < 2]
        test = [d for d in datasets if d[0] >= 2]

        def design_of(entry):
            _, base, accel, _ = entry
            return np.hstack([base, accel]) if with_counter else base

        X = np.vstack([design_of(d) for d in train])
        y = np.concatenate([d[3] for d in train])
        names = base_counters + (
            [ACCELERATOR_COUNTER] if with_counter else []
        )
        model = QuadraticPowerModel(names).fit(X, y)
        dres = []
        for entry in test:
            prediction = model.predict(design_of(entry))
            dres.append(
                AccuracyReport.from_predictions(entry[3], prediction).dre
            )
        return float(np.mean(dres))

    accel_mean = float(np.mean(
        [np.mean(d[2]) / 100.0 * ACCELERATOR_PEAK_W for d in datasets]
    ))
    return FutureAcceleratorResult(
        dre_hidden=evaluate(with_counter=False),
        dre_with_counter=evaluate(with_counter=True),
        accel_mean_w=accel_mean,
    )
