"""Table III: DRE versus conventional error metrics (Core 2 and Atom).

The point of the table: a small rMSE-relative-to-total-power can hide a
large error relative to the *dynamic range*.  The Atom, with its 4 W
dynamic range atop a 22 W idle floor, shows ~2-3% conventional error but
double-digit DRE; the mobile Core 2 has a large dynamic range yet the
conventional metrics still flatter the model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.data import DataRepository, get_repository
from repro.framework.crossval import EvaluationResult, cross_validate
from repro.framework.reports import format_percent, render_table
from repro.models.featuresets import cluster_set
from repro.workloads.suite import WORKLOAD_NAMES

PLATFORMS = ("core2", "atom")


@dataclass
class Table3Row:
    workload_name: str
    rmse: dict[str, float]
    percent_error: dict[str, float]
    dre: dict[str, float]


@dataclass
class Table3Result:
    rows: list[Table3Row]

    def render(self) -> str:
        headers = ["workload"]
        for platform in PLATFORMS:
            headers += [
                f"{platform} rMSE (W)",
                f"{platform} %err",
                f"{platform} DRE",
            ]
        body = []
        for row in self.rows:
            cells = [row.workload_name]
            for platform in PLATFORMS:
                cells += [
                    f"{row.rmse[platform]:.2f}",
                    format_percent(row.percent_error[platform]),
                    format_percent(row.dre[platform]),
                ]
            body.append(cells)
        return render_table(
            headers,
            body,
            title=(
                "Table III: machine-level DRE vs rMSE vs %err "
                "(Core 2 Duo mobile, Atom embedded)"
            ),
        )

    def dre_exceeds_percent_error(self) -> bool:
        """DRE is the stricter metric on every row and platform."""
        return all(
            row.dre[platform] > row.percent_error[platform]
            for row in self.rows
            for platform in PLATFORMS
        )


def _evaluate(
    repo: DataRepository, platform: str, workload: str
) -> EvaluationResult:
    feature_set = cluster_set(repo.selection(platform).selected)
    # Atom (no DVFS) uses a linear model; Core 2 the quadratic — matching
    # the techniques Table IV finds adequate for each platform class.
    model_code = "L" if platform == "atom" else "Q"
    return cross_validate(
        repo.runs(platform, workload),
        model_code=model_code,
        feature_set=feature_set,
        seed=3,
    )


def run_table3(repository: DataRepository | None = None) -> Table3Result:
    repo = repository if repository is not None else get_repository()
    rows = []
    for workload in WORKLOAD_NAMES:
        rmse: dict[str, float] = {}
        percent_error: dict[str, float] = {}
        dre: dict[str, float] = {}
        for platform in PLATFORMS:
            evaluation = _evaluate(repo, platform, workload)
            rmse[platform] = evaluation.machine_reports.mean_rmse
            percent_error[platform] = (
                evaluation.machine_reports.mean_percent_error
            )
            dre[platform] = evaluation.machine_reports.mean_dre
        rows.append(
            Table3Row(
                workload_name=workload,
                rmse=rmse,
                percent_error=percent_error,
                dre=dre,
            )
        )
    return Table3Result(rows=rows)
