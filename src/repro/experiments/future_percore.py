"""Future work (Section V-D): fully independent per-core DVFS.

"Future systems with the ability to operate cores fully independently
will have less-correlated core frequencies (less than 80%) and will
require individual core frequencies as features."

We build that future system: an Opteron variant whose governor scales and
parks every core independently, running a thread-imbalanced Prime.  The
experiment then verifies both halves of the prediction:

* core-frequency correlation drops below the paper's 0.8 threshold, and
* a quadratic model using only core 0's frequency degrades, while adding
  every core's frequency as a feature recovers the accuracy.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.runner import execute_runs
from repro.framework.crossval import cross_validate
from repro.framework.reports import format_percent, render_table
from repro.models.featuresets import (
    CPU_UTILIZATION_COUNTER,
    FREQUENCY_COUNTER,
    FeatureSet,
)
from repro.platforms.specs import OPTERON, DVFSMode
from repro.workloads.prime import PrimeWorkload


class ImbalancedPrime(PrimeWorkload):
    """Prime with heavy thread imbalance: cores see unequal demand."""

    name = "prime-imbalanced"
    core_imbalance_sigma = 0.55


FUTURE_OPTERON = dataclasses.replace(
    OPTERON,
    key="opteron_future",
    display_name="AMD Opteron (independent per-core DVFS)",
    dvfs_mode=DVFSMode.PER_CORE_INDEPENDENT,
)


@dataclass
class FuturePerCoreResult:
    """Accuracy with one vs all core-frequency features."""

    freq_correlation: float
    """Mean pairwise correlation between core frequencies."""

    dre_single_frequency: float
    dre_all_frequencies: float

    @property
    def improvement(self) -> float:
        return self.dre_single_frequency - self.dre_all_frequencies

    def render(self) -> str:
        table = render_table(
            ["configuration", "machine DRE"],
            [
                ["core-0 frequency only",
                 format_percent(self.dre_single_frequency)],
                ["all core frequencies",
                 format_percent(self.dre_all_frequencies)],
            ],
            title=(
                "Future work: independent per-core DVFS "
                "(imbalanced Prime, quadratic models)"
            ),
        )
        footer = (
            f"core-frequency correlation: {self.freq_correlation:.2f} "
            "(paper's threshold for needing per-core features: <0.80); "
            f"per-core features recover "
            f"{format_percent(self.improvement, 2)} DRE"
        )
        return table + "\n" + footer


def _core_frequency_correlation(runs) -> float:
    """Mean pairwise correlation of core frequency counters."""
    correlations = []
    log = runs[0].logs[runs[0].machine_ids[0]]
    n_cores = FUTURE_OPTERON.n_cores
    columns = [
        log.column(rf"\Processor Performance({core})\Frequency MHz")
        for core in range(n_cores)
    ]
    for i in range(n_cores):
        for j in range(i + 1, n_cores):
            correlation = np.corrcoef(columns[i], columns[j])[0, 1]
            if np.isfinite(correlation):
                correlations.append(correlation)
    return float(np.mean(correlations))


def run_future_percore(seed: int = 777) -> FuturePerCoreResult:
    cluster = Cluster.homogeneous(FUTURE_OPTERON, seed=seed)
    runs = execute_runs(cluster, ImbalancedPrime(), n_runs=4)

    base_counters = (
        CPU_UTILIZATION_COUNTER,
        r"\Memory\Page Faults/sec",
    )
    single = FeatureSet(
        name="C", counters=base_counters + (FREQUENCY_COUNTER,)
    )
    all_freqs = FeatureSet(
        name="C",
        counters=base_counters + tuple(
            rf"\Processor Performance({core})\Frequency MHz"
            for core in range(FUTURE_OPTERON.n_cores)
        ),
    )

    dre_single = cross_validate(
        runs, "Q", single, seed=seed
    ).mean_machine_dre
    dre_all = cross_validate(
        runs, "Q", all_freqs, seed=seed
    ).mean_machine_dre

    return FuturePerCoreResult(
        freq_correlation=_core_frequency_correlation(runs),
        dre_single_frequency=dre_single,
        dre_all_frequencies=dre_all,
    )
