"""Shared engine for Figures 3-4: the model x feature-set DRE grid.

Both figures sweep every modeling technique against the CPU-only,
cluster-specific and general feature sets on the Opteron cluster; they
differ only in workload (PageRank for Figure 3, Prime for Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.data import DataRepository, get_repository
from repro.framework.reports import format_percent, render_table
from repro.framework.sweep import SweepResult, sweep_models
from repro.models.featuresets import general_set


@dataclass
class ModelGridResult:
    """DRE for every technique x feature-set cell on one workload."""

    platform_key: str
    workload_name: str
    sweep: SweepResult
    title: str

    def cell_dre(self, model_code: str, feature_set_name: str) -> float:
        return self.sweep.cell(model_code, feature_set_name).mean_machine_dre

    def rows(self) -> list[list[str]]:
        feature_names = sorted(
            {e.feature_set_name for e in self.sweep.evaluations},
            key=lambda n: ("U", "C", "CP", "G").index(n),
        )
        rows = []
        for code in ("L", "P", "Q", "S"):
            row = [code]
            for fs_name in feature_names:
                try:
                    row.append(format_percent(self.cell_dre(code, fs_name)))
                except KeyError:
                    # Q/S cannot use CPU-only features; under
                    # failure_policy="continue" a cell may also have
                    # been dropped because a fold failed.
                    label = f"{code}{fs_name}"
                    if label in self.sweep.incomplete_cells:
                        row.append("failed")
                    else:
                        row.append("n/a")
            rows.append(row)
        self._feature_names = feature_names
        return rows

    def render(self) -> str:
        rows = self.rows()
        return render_table(
            ["model"] + [f"features={n}" for n in self._feature_names],
            rows,
            title=self.title,
        )

    # -- the two claims the figures make ------------------------------
    def feature_selection_gain(self) -> float:
        """DRE drop from CPU-only to cluster features (linear models)."""
        return self.cell_dre("L", "U") - self.cell_dre("L", "C")

    def technique_gain(self) -> float:
        """DRE drop from linear to the best nonlinear model (cluster
        features) — the paper's "more complex models are required"."""
        best_nonlinear = min(
            self.cell_dre("P", "C"),
            self.cell_dre("Q", "C"),
            self.cell_dre("S", "C"),
        )
        return self.cell_dre("L", "C") - best_nonlinear

    def general_penalty(self) -> float:
        """DRE cost of the general set vs cluster-specific (best of the
        nonlinear techniques on each side)."""
        general = min(
            self.cell_dre("P", "G"),
            self.cell_dre("Q", "G"),
            self.cell_dre("S", "G"),
        )
        cluster = min(
            self.cell_dre("P", "C"),
            self.cell_dre("Q", "C"),
            self.cell_dre("S", "C"),
        )
        return general - cluster


def run_model_grid(
    platform_key: str,
    workload_name: str,
    title: str,
    repository: DataRepository | None = None,
    seed: int = 1,
    jobs: int | None = None,
    cache=None,
    telemetry=None,
    failure_policy: str | None = None,
) -> ModelGridResult:
    """Sweep the full grid for one workload through the experiment engine.

    ``jobs``/``cache``/``telemetry``/``failure_policy`` pass straight to
    :func:`repro.framework.sweep.sweep_models`; ``None`` follows the
    process-wide engine options (the CLI's ``--jobs``/``--cache-dir``/
    ``--failure-policy``).  Under ``"continue"`` a failed cell renders
    as ``failed`` instead of aborting the whole grid.
    """
    repo = repository if repository is not None else get_repository()
    selected = repo.selection(platform_key).selected
    feature_sets = repo.feature_sets(platform_key, include_lagged=False)
    # Ensure the general set resolves to counters this platform logs.
    catalog = repo.cluster(platform_key).catalogs[platform_key]
    feature_sets = [
        fs if fs.name != "G" else general_set(
            tuple(n for n in fs.counters if n in catalog)
        )
        for fs in feature_sets
    ]
    del selected  # cluster set already included via repo.feature_sets
    runs = repo.runs(platform_key, workload_name)
    sweep = sweep_models(
        runs,
        feature_sets,
        seed=seed,
        jobs=jobs,
        cache=cache,
        telemetry=telemetry,
        failure_policy=failure_policy,
    )
    return ModelGridResult(
        platform_key=platform_key,
        workload_name=workload_name,
        sweep=sweep,
        title=title,
    )


def run_figure3(repository: DataRepository | None = None) -> ModelGridResult:
    """Figure 3: Opteron/PageRank — feature selection matters most."""
    return run_model_grid(
        "opteron",
        "pagerank",
        title=(
            "Figure 3: Opteron average DRE, PageRank "
            "(feature selection is required)"
        ),
        repository=repository,
    )


def run_figure4(repository: DataRepository | None = None) -> ModelGridResult:
    """Figure 4: Opteron/Prime — modeling technique matters most."""
    return run_model_grid(
        "opteron",
        "prime",
        title=(
            "Figure 4: Opteron average DRE, Prime "
            "(complex models are required)"
        ),
        repository=repository,
    )
