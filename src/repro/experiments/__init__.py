"""Per-table / per-figure experiment drivers (shared by benches and examples)."""

from repro.experiments.cross_workload import (
    CrossWorkloadResult,
    run_cross_workload,
)
from repro.experiments.export import export_result
from repro.experiments.data import (
    ALL_PLATFORM_KEYS,
    DataRepository,
    get_repository,
)
from repro.experiments.figure1 import Figure1Result, run_figure1
from repro.experiments.figure2 import Figure2Result, run_figure2
from repro.experiments.figure5 import Figure5Result, run_figure5
from repro.experiments.future_accelerator import (
    FutureAcceleratorResult,
    run_future_accelerator,
)
from repro.experiments.future_percore import (
    FuturePerCoreResult,
    run_future_percore,
)
from repro.experiments.general_accuracy import (
    GeneralAccuracyResult,
    run_general_accuracy,
)
from repro.experiments.hetero import HeteroResult, run_hetero
from repro.experiments.model_grid import (
    ModelGridResult,
    run_figure3,
    run_figure4,
    run_model_grid,
)
from repro.experiments.overhead_exp import OverheadResult, run_overhead
from repro.experiments.paper_reference import (
    PAPER_CLAIMS,
    PAPER_TABLE1_RANGES,
    PAPER_TABLE3,
    PAPER_TABLE4,
    Table4Comparison,
    compare_table4,
    paper_table4_winner_counts,
    paper_table4_worst_best_dre,
)
from repro.experiments.sampling import SamplingResult, run_sampling
from repro.experiments.sampling_rate import (
    SamplingRateResult,
    run_sampling_rate,
)
from repro.experiments.table2 import Table2Result, run_table2
from repro.experiments.table3 import Table3Result, run_table3
from repro.experiments.table4 import Table4Result, run_table4

__all__ = [
    "ALL_PLATFORM_KEYS",
    "PAPER_CLAIMS",
    "PAPER_TABLE1_RANGES",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "Table4Comparison",
    "compare_table4",
    "export_result",
    "paper_table4_winner_counts",
    "paper_table4_worst_best_dre",
    "CrossWorkloadResult",
    "DataRepository",
    "Figure1Result",
    "Figure2Result",
    "Figure5Result",
    "FutureAcceleratorResult",
    "FuturePerCoreResult",
    "GeneralAccuracyResult",
    "HeteroResult",
    "ModelGridResult",
    "OverheadResult",
    "SamplingRateResult",
    "SamplingResult",
    "Table2Result",
    "Table3Result",
    "Table4Result",
    "get_repository",
    "run_cross_workload",
    "run_figure1",
    "run_figure2",
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_future_accelerator",
    "run_future_percore",
    "run_general_accuracy",
    "run_hetero",
    "run_model_grid",
    "run_overhead",
    "run_sampling",
    "run_sampling_rate",
    "run_table2",
    "run_table3",
    "run_table4",
]
