"""Table IV: best average DRE per workload and cluster.

The full model-exploration sweep: every technique x feature-set cell for
every (cluster, workload), reporting the winning combination per cell
with its Table IV-style label (e.g. 'QC' = quadratic on cluster
features).  Headline claims validated here: best DRE stays under ~12%
everywhere, and quadratic models with cluster-specific features win most
cells.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.data import (
    ALL_PLATFORM_KEYS,
    DataRepository,
    get_repository,
)
from repro.framework.reports import format_percent, render_table
from repro.framework.sweep import SweepResult, sweep_models
from repro.models.featuresets import general_set
from repro.workloads.suite import WORKLOAD_NAMES


@dataclass
class Table4Cell:
    platform_key: str
    workload_name: str
    best_label: str
    best_dre: float
    sweep: SweepResult

    @property
    def entry(self) -> str:
        return f"{format_percent(self.best_dre)}, {self.best_label}"


@dataclass
class Table4Result:
    cells: dict[tuple[str, str], Table4Cell]

    @property
    def n_models_built(self) -> int:
        return sum(cell.sweep.n_models_built for cell in self.cells.values())

    @property
    def worst_best_dre(self) -> float:
        """The worst cell's best DRE — the paper's '<12%' headline."""
        return max(cell.best_dre for cell in self.cells.values())

    def winner_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for cell in self.cells.values():
            counts[cell.best_label] = counts.get(cell.best_label, 0) + 1
        return counts

    def rows(self) -> list[list[str]]:
        rows = []
        for workload in WORKLOAD_NAMES:
            row = [workload]
            for platform in ALL_PLATFORM_KEYS:
                row.append(self.cells[(platform, workload)].entry)
            rows.append(row)
        return rows

    def render(self) -> str:
        table = render_table(
            ["workload"] + list(ALL_PLATFORM_KEYS),
            self.rows(),
            title=(
                "Table IV: best average machine DRE per workload and "
                "cluster (DRE, technique+features)"
            ),
        )
        winners = ", ".join(
            f"{label}:{count}"
            for label, count in sorted(
                self.winner_counts().items(), key=lambda kv: -kv[1]
            )
        )
        footer = (
            f"worst best-case DRE: {format_percent(self.worst_best_dre)} "
            f"(paper: <12%); winners: {winners}; "
            f"{self.n_models_built} models fitted in this sweep"
        )
        return table + "\n" + footer


def run_table4(
    repository: DataRepository | None = None,
    platform_keys: tuple[str, ...] = ALL_PLATFORM_KEYS,
    workload_names: tuple[str, ...] = WORKLOAD_NAMES,
) -> Table4Result:
    repo = repository if repository is not None else get_repository()
    cells: dict[tuple[str, str], Table4Cell] = {}
    for platform in platform_keys:
        feature_sets = repo.feature_sets(platform)
        catalog = repo.cluster(platform).catalogs[platform]
        feature_sets = [
            fs if fs.name != "G" else general_set(
                tuple(n for n in fs.counters if n in catalog)
            )
            for fs in feature_sets
        ]
        for workload in workload_names:
            runs = repo.runs(platform, workload)
            sweep = sweep_models(runs, feature_sets, seed=4)
            best = sweep.best()
            cells[(platform, workload)] = Table4Cell(
                platform_key=platform,
                workload_name=workload,
                best_label=best.label,
                best_dre=best.mean_machine_dre,
                sweep=sweep,
            )
    return Table4Result(cells=cells)
