"""Scalability: machines sampled vs achieved error bound.

The abstract claims CHAOS models "account for server-level power
variability ... in the number of machines sampled to achieve a given
error bound": because nominally identical machines differ, a model
trained on telemetry from k machines generalizes better to the rest of
the fleet as k grows.  This experiment trains the quadratic cluster model
on 1..N-1 machines and evaluates on machines the model never saw,
reporting the DRE curve and the smallest k that achieves the paper's 12%
bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.data import DataRepository, get_repository
from repro.framework.reports import format_percent, render_table
from repro.metrics.summary import AccuracyReport
from repro.models.featuresets import cluster_set, pool_features
from repro.models.quadratic import QuadraticPowerModel

PLATFORM = "opteron"
WORKLOAD = "sort"
ERROR_BOUND = 0.12


@dataclass
class SamplingResult:
    """Held-out machine DRE as a function of machines sampled."""

    dre_by_k: dict[int, float]
    spread_by_k: dict[int, float]
    """Max-min DRE across the held-out machines, per k."""

    error_bound: float = ERROR_BOUND

    @property
    def machines_needed(self) -> int | None:
        """Smallest k meeting the error bound (None if never met)."""
        for k in sorted(self.dre_by_k):
            if self.dre_by_k[k] <= self.error_bound:
                return k
        return None

    def rows(self) -> list[list[str]]:
        return [
            [
                str(k),
                format_percent(self.dre_by_k[k]),
                format_percent(self.spread_by_k[k]),
                "yes" if self.dre_by_k[k] <= self.error_bound else "no",
            ]
            for k in sorted(self.dre_by_k)
        ]

    def render(self) -> str:
        table = render_table(
            ["machines sampled", "held-out machine DRE", "DRE spread",
             f"meets {format_percent(self.error_bound, 0)} bound"],
            self.rows(),
            title=(
                "Machines sampled vs error bound "
                "(Opteron, Sort, quadratic on cluster features; "
                "evaluated on never-sampled machines)"
            ),
        )
        needed = self.machines_needed
        footer = (
            f"machines needed for the {format_percent(self.error_bound, 0)} "
            f"bound: {needed if needed is not None else 'not reached'}"
        )
        return table + "\n" + footer


def run_sampling(
    repository: DataRepository | None = None,
    platform_key: str = PLATFORM,
    workload_name: str = WORKLOAD,
) -> SamplingResult:
    repo = repository if repository is not None else get_repository()
    runs = repo.runs(platform_key, workload_name)
    feature_set = cluster_set(repo.selection(platform_key).selected)
    machine_ids = runs[0].machine_ids
    n_machines = len(machine_ids)
    if n_machines < 3:
        raise ValueError("sampling study needs at least 3 machines")

    train_runs = runs[: len(runs) // 2 + 1]
    test_runs = runs[len(runs) // 2 + 1:]

    # Rotate the held-out machine so one unlucky individual cannot skew
    # the curve; for each rotation, sample k machines from the rest.
    dres_by_k: dict[int, list[float]] = {
        k: [] for k in range(1, n_machines)
    }
    for held_out in machine_ids:
        candidates = [m for m in machine_ids if m != held_out]
        for k in range(1, n_machines):
            sampled = candidates[:k]
            design, power = pool_features(
                train_runs, feature_set, machine_ids=sampled
            )
            model = QuadraticPowerModel(feature_set.feature_names).fit(
                design, power
            )
            for run in test_runs:
                log = run.logs[held_out]
                prediction = model.predict(feature_set.extract(log))
                dres_by_k[k].append(
                    AccuracyReport.from_predictions(
                        log.power_w, prediction
                    ).dre
                )
    dre_by_k = {k: float(np.mean(v)) for k, v in dres_by_k.items()}
    spread_by_k = {
        k: float(np.max(v) - np.min(v)) for k, v in dres_by_k.items()
    }
    return SamplingResult(dre_by_k=dre_by_k, spread_by_k=spread_by_k)
