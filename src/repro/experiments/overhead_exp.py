"""The <1% CPU overhead claim (abstract / Section I).

Once per second, the deployed framework must read the selected counters
and evaluate the model.  We measure that per-sample cost for the mobile
(Core 2) platform's quadratic model and report it as a fraction of the
1 Hz sampling budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.data import DataRepository, get_repository
from repro.framework.overhead import OverheadReport, measure_overhead
from repro.models.featuresets import cluster_set, pool_features
from repro.models.quadratic import QuadraticPowerModel

PLATFORM = "core2"


@dataclass
class OverheadResult:
    report: OverheadReport
    full_catalog_size: int
    selected_size: int

    @property
    def meets_paper_claim(self) -> bool:
        return self.report.cpu_fraction < 0.01

    def render(self) -> str:
        return "\n".join([
            "Online modeling overhead (Core 2 Duo, quadratic model):",
            f"  {self.report.describe()}",
            f"  feature selection reduced collection from "
            f"{self.full_catalog_size} to {self.selected_size} counters",
            f"  paper claim <1% CPU: "
            f"{'met' if self.meets_paper_claim else 'NOT met'}",
        ])


def run_overhead(repository: DataRepository | None = None) -> OverheadResult:
    repo = repository if repository is not None else get_repository()
    selection = repo.selection(PLATFORM)
    feature_set = cluster_set(selection.selected)
    runs = repo.runs(PLATFORM, "sort")
    design, power = pool_features(runs[:1], feature_set)
    model = QuadraticPowerModel(feature_set.feature_names).fit(design, power)

    cluster = repo.cluster(PLATFORM)
    catalog = cluster.catalogs[PLATFORM]
    # Rebuild one machine's latent activity for the measurement loop.
    machine = cluster.machines[0]
    from repro.workloads.sort import SortWorkload

    activity = SortWorkload().generate_run(
        cluster.machines, run_index=0, seed=repo.seed
    )[machine.machine_id]

    report = measure_overhead(model, catalog, activity)
    return OverheadResult(
        report=report,
        full_catalog_size=len(catalog),
        selected_size=len(selection.selected),
    )
