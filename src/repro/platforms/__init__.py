"""Simulated hardware platforms (Table I) and ground-truth power."""

from repro.platforms.dvfs import FrequencyGovernor, core0_divergence_fraction
from repro.platforms.machine import SimulatedMachine
from repro.platforms.power import PowerSynthesizer, PSUCurve
from repro.platforms.specs import (
    ALL_PLATFORMS,
    ATHLON,
    ATOM,
    CORE2,
    OPTERON,
    PLATFORMS_BY_KEY,
    XEON_SAS,
    XEON_SATA,
    DiskKind,
    DiskSpec,
    DVFSMode,
    PlatformSpec,
    PowerBudget,
    SystemClass,
    get_platform,
)
from repro.platforms.variation import (
    IDENTITY_VARIATION,
    MachineVariation,
    draw_variation,
)

__all__ = [
    "ALL_PLATFORMS",
    "ATHLON",
    "ATOM",
    "CORE2",
    "DVFSMode",
    "DiskKind",
    "DiskSpec",
    "FrequencyGovernor",
    "IDENTITY_VARIATION",
    "MachineVariation",
    "OPTERON",
    "PLATFORMS_BY_KEY",
    "PSUCurve",
    "PlatformSpec",
    "PowerBudget",
    "PowerSynthesizer",
    "SimulatedMachine",
    "SystemClass",
    "XEON_SAS",
    "XEON_SATA",
    "core0_divergence_fraction",
    "draw_variation",
    "get_platform",
]
