"""Machine-to-machine power variation.

The paper observes up to 10% power variation between nominally identical
machines ([3, 4, 5]; Section III-B) and argues that both feature selection
and model fitting must account for it.  We model each machine as drawing a
small multiplicative perturbation for its idle power and for each dynamic
component's budget, plus a per-machine power-meter calibration offset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MachineVariation:
    """Per-machine multiplicative deviations from the platform spec."""

    idle_factor: float
    cpu_factor: float
    memory_factor: float
    disk_factor: float
    network_factor: float
    board_factor: float

    def component_factors(self) -> dict[str, float]:
        return {
            "cpu": self.cpu_factor,
            "memory": self.memory_factor,
            "disk": self.disk_factor,
            "network": self.network_factor,
            "board": self.board_factor,
        }


IDENTITY_VARIATION = MachineVariation(
    idle_factor=1.0,
    cpu_factor=1.0,
    memory_factor=1.0,
    disk_factor=1.0,
    network_factor=1.0,
    board_factor=1.0,
)


def draw_variation(
    rng: np.random.Generator,
    idle_sigma: float = 0.006,
    dynamic_sigma: float = 0.03,
    clip: float = 0.05,
) -> MachineVariation:
    """Sample one machine's variation.

    Defaults give a population whose idle and loaded power spread is a few
    percent typically and up to ~10% between extreme pairs, matching the
    paper's observation.
    """
    def factor(sigma: float) -> float:
        return float(1.0 + np.clip(rng.normal(0.0, sigma), -clip, clip))

    return MachineVariation(
        idle_factor=factor(idle_sigma),
        cpu_factor=factor(dynamic_sigma),
        memory_factor=factor(dynamic_sigma),
        disk_factor=factor(dynamic_sigma),
        network_factor=factor(dynamic_sigma),
        board_factor=factor(dynamic_sigma),
    )
