"""Component activity-to-power-fraction curves.

Each function maps latent activity onto a dimensionless fraction in [0, 1]
of that component's dynamic power budget (``PlatformSpec.budget``).  The
shapes encode the physical effects the paper's models must learn:

* CPU power follows u * f * V(f)^2 — strongly nonlinear in frequency, which
  is why platforms with DVFS defeat purely linear models (Section V-D).
* Memory and disk activity saturate: doubling an already-high page rate
  does not double DRAM power.
* The board/"glue" fraction tracks overall activity, standing in for VRMs,
  chipset and fans that scale with everything at once.
"""

from __future__ import annotations

import numpy as np

from repro.activity import ActivityTrace
from repro.platforms.specs import PlatformSpec

_VOLTAGE_FLOOR = 0.60
"""V(f_min)/V(f_max): voltage scales roughly linearly with frequency."""


def voltage_ratio(freq_ghz: np.ndarray, max_freq_ghz: float) -> np.ndarray:
    """Normalized core voltage V(f)/V(f_max), zero when the clock stops."""
    relative = np.clip(np.asarray(freq_ghz, dtype=float) / max_freq_ghz, 0.0, 1.0)
    ratio = _VOLTAGE_FLOOR + (1.0 - _VOLTAGE_FLOOR) * relative
    return np.where(relative > 0.0, ratio, 0.0)


def cpu_fraction(activity: ActivityTrace, spec: PlatformSpec) -> np.ndarray:
    """Per-second CPU dynamic power as a fraction of the CPU budget.

    Classic CMOS dynamic power: activity * f * V(f)^2, averaged over cores
    and normalized so that all-cores-busy at top frequency gives 1.0.
    """
    relative_freq = np.clip(activity.core_freq_ghz / spec.max_freq_ghz, 0.0, 1.0)
    volt = voltage_ratio(activity.core_freq_ghz, spec.max_freq_ghz)
    per_core = activity.core_util * relative_freq * volt**2
    return per_core.mean(axis=0)


def saturating(values: np.ndarray, scale: float) -> np.ndarray:
    """1 - exp(-x/scale): linear near zero, saturating at 1."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    return 1.0 - np.exp(-np.maximum(np.asarray(values, dtype=float), 0.0) / scale)


def memory_fraction(activity: ActivityTrace, spec: PlatformSpec) -> np.ndarray:
    """DRAM dynamic power fraction from paging and cache-fault traffic."""
    # Page traffic dominates; cache faults add row activations.
    page_component = saturating(activity.mem_pages_per_sec, scale=3000.0)
    fault_component = saturating(activity.cache_faults_per_sec, scale=8000.0)
    return 0.7 * page_component + 0.3 * fault_component


def disk_fraction(activity: ActivityTrace, spec: PlatformSpec) -> np.ndarray:
    """Storage dynamic power fraction from busy time and transfer volume."""
    total_bandwidth = sum(d.max_bandwidth_bps for d in spec.disks)
    transfer = np.clip(activity.disk_total_bytes / total_bandwidth, 0.0, 1.0)
    busy = np.clip(activity.disk_busy_frac, 0.0, 1.0)
    return 0.55 * busy + 0.45 * transfer


def network_fraction(activity: ActivityTrace, spec: PlatformSpec) -> np.ndarray:
    """NIC + switch-port dynamic power fraction from traffic volume."""
    return np.clip(activity.net_total_bytes / spec.nic_max_bps, 0.0, 1.0)


def board_fraction(
    cpu: np.ndarray,
    memory: np.ndarray,
    disk: np.ndarray,
    network: np.ndarray,
) -> np.ndarray:
    """Chipset/VRM/fan fraction: tracks the busiest subsystems."""
    io_activity = np.maximum(disk, network)
    return 0.6 * cpu + 0.25 * memory + 0.15 * io_activity
