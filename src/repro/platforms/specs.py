"""Platform specifications reproducing Table I of the paper.

Six platform classes span embedded (Atom), mobile (Core 2 Duo), desktop
(Athlon) and server (Opteron, two Xeons) designs.  Each spec records the
CPU topology, DVFS capability, AC power range, memory and storage
configuration, plus the *power budget* — how the platform's dynamic power
range is apportioned among CPU, memory, disk, network and board "glue" —
which drives the ground-truth power synthesizer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class SystemClass(enum.Enum):
    EMBEDDED = "embedded"
    MOBILE = "mobile"
    DESKTOP = "desktop"
    SERVER = "server"


class DVFSMode(enum.Enum):
    """How the platform scales frequency (Section III-A)."""

    NONE = "none"
    """Single fixed clock (Atom N330)."""

    CHIP_WIDE = "chip-wide"
    """All cores share one frequency 99.8% of the time (Core 2, Athlon)."""

    PER_CORE = "per-core"
    """Cores may occupy different P-states; C1 parks idle CPUs at 0 MHz
    (Opteron and Xeon servers)."""

    PER_CORE_INDEPENDENT = "per-core-independent"
    """Future-work regime (Section V-D): cores scale fully independently
    and park individually, so core frequencies are weakly correlated and
    one core's frequency no longer proxies the system."""


class DiskKind(enum.Enum):
    SSD = "ssd"
    SATA_7200 = "sata-7.2k"
    SATA_10K = "sata-10k"
    SAS_15K = "sas-15k"


@dataclass(frozen=True)
class DiskSpec:
    """One physical disk: its kind and dynamic power contribution."""

    kind: DiskKind
    active_delta_w: float
    """Extra watts when the disk is 100% busy (seek/rotate/IO)."""

    max_bandwidth_bps: float
    """Peak sustained transfer rate, bytes/second."""


@dataclass(frozen=True)
class PowerBudget:
    """How the platform's dynamic AC range splits across components.

    Values are watts of dynamic range attributable to each component when
    it is fully active; they are calibrated jointly so that full activity
    lands at the Table I maximum (see ``repro.platforms.power``).
    """

    cpu_w: float
    memory_w: float
    disk_w: float
    network_w: float
    board_w: float

    @property
    def total_w(self) -> float:
        return (
            self.cpu_w + self.memory_w + self.disk_w
            + self.network_w + self.board_w
        )


@dataclass(frozen=True)
class PlatformSpec:
    """Full description of one Table I platform."""

    key: str
    display_name: str
    system_class: SystemClass
    cpu_model: str
    n_sockets: int
    cores_per_socket: int
    base_freq_ghz: float
    tdp_w: float
    dvfs_mode: DVFSMode
    freq_states_ghz: tuple[float, ...]
    """Available P-state frequencies, ascending; excludes the C1 0 GHz."""

    idle_power_w: float
    max_power_w: float
    memory_gb: int
    memory_type: str
    disks: tuple[DiskSpec, ...]
    budget: PowerBudget
    nic_max_bps: float = 125e6  # 1 GbE
    core_freq_divergence: float = 0.002
    """Fraction of seconds in which cores disagree on frequency (Section
    III-A: 0.2% for chip-wide DVFS; 12% Opteron, 20% Xeon per-core)."""

    def __post_init__(self):
        if self.max_power_w <= self.idle_power_w:
            raise ValueError(
                f"{self.key}: max power must exceed idle power"
            )
        if not self.freq_states_ghz:
            raise ValueError(f"{self.key}: at least one frequency state")
        if tuple(sorted(self.freq_states_ghz)) != self.freq_states_ghz:
            raise ValueError(f"{self.key}: freq states must be ascending")
        if self.dvfs_mode is DVFSMode.NONE and len(self.freq_states_ghz) != 1:
            raise ValueError(f"{self.key}: non-DVFS platform has one state")

    @property
    def n_cores(self) -> int:
        return self.n_sockets * self.cores_per_socket

    @property
    def max_freq_ghz(self) -> float:
        return self.freq_states_ghz[-1]

    @property
    def min_freq_ghz(self) -> float:
        return self.freq_states_ghz[0]

    @property
    def dynamic_range_w(self) -> float:
        return self.max_power_w - self.idle_power_w

    @property
    def supports_c1(self) -> bool:
        """Server platforms can stop the clock entirely when idle."""
        return self.dvfs_mode in (
            DVFSMode.PER_CORE, DVFSMode.PER_CORE_INDEPENDENT
        )

    @property
    def idle_freq_ghz(self) -> float:
        """Frequency reported when idle (0.0 on C1-capable servers)."""
        return 0.0 if self.supports_c1 else self.min_freq_ghz

    @property
    def n_disks(self) -> int:
        return len(self.disks)


def _p_states(base: float, count: int) -> tuple[float, ...]:
    """Evenly spaced P-states from 50% of base up to base frequency."""
    if count == 1:
        return (base,)
    lowest = base * 0.5
    step = (base - lowest) / (count - 1)
    return tuple(round(lowest + i * step, 3) for i in range(count))


ATOM = PlatformSpec(
    key="atom",
    display_name="Intel Atom (embedded)",
    system_class=SystemClass.EMBEDDED,
    cpu_model="Intel Atom N330, 2-core, 1.6 GHz, 8W",
    n_sockets=1,
    cores_per_socket=2,
    base_freq_ghz=1.6,
    tdp_w=8.0,
    dvfs_mode=DVFSMode.NONE,
    freq_states_ghz=(1.6,),
    idle_power_w=22.0,
    max_power_w=26.0,
    memory_gb=4,
    memory_type="DDR2-800",
    disks=(DiskSpec(DiskKind.SSD, active_delta_w=0.5, max_bandwidth_bps=200e6),),
    budget=PowerBudget(
        cpu_w=2.4, memory_w=0.6, disk_w=0.4, network_w=0.3, board_w=0.3,
    ),
)

CORE2 = PlatformSpec(
    key="core2",
    display_name="Intel Core 2 Duo (mobile)",
    system_class=SystemClass.MOBILE,
    cpu_model="Intel Core 2 Duo, 2-core, 2.26 GHz, 25W",
    n_sockets=1,
    cores_per_socket=2,
    base_freq_ghz=2.26,
    tdp_w=25.0,
    dvfs_mode=DVFSMode.CHIP_WIDE,
    freq_states_ghz=_p_states(2.26, 4),
    idle_power_w=25.0,
    max_power_w=46.0,
    memory_gb=4,
    memory_type="DDR3-1066",
    disks=(DiskSpec(DiskKind.SSD, active_delta_w=0.7, max_bandwidth_bps=220e6),),
    budget=PowerBudget(
        cpu_w=14.5, memory_w=2.5, disk_w=1.0, network_w=1.2, board_w=1.8,
    ),
)

ATHLON = PlatformSpec(
    key="athlon",
    display_name="AMD Athlon (desktop)",
    system_class=SystemClass.DESKTOP,
    cpu_model="AMD Athlon, 2-core, 2.8 GHz, 65W",
    n_sockets=1,
    cores_per_socket=2,
    base_freq_ghz=2.8,
    tdp_w=65.0,
    dvfs_mode=DVFSMode.CHIP_WIDE,
    freq_states_ghz=_p_states(2.8, 4),
    idle_power_w=54.0,
    max_power_w=104.0,
    memory_gb=8,
    memory_type="DDR2-800",
    disks=(DiskSpec(DiskKind.SSD, active_delta_w=0.8, max_bandwidth_bps=220e6),),
    budget=PowerBudget(
        cpu_w=38.0, memory_w=4.5, disk_w=1.5, network_w=1.5, board_w=4.5,
    ),
)

OPTERON = PlatformSpec(
    key="opteron",
    display_name="AMD Opteron (server)",
    system_class=SystemClass.SERVER,
    cpu_model="AMD Opteron, 4-core, dual socket, 2.0 GHz, 50W",
    n_sockets=2,
    cores_per_socket=4,
    base_freq_ghz=2.0,
    tdp_w=50.0,
    dvfs_mode=DVFSMode.PER_CORE,
    freq_states_ghz=_p_states(2.0, 5),
    idle_power_w=135.0,
    max_power_w=190.0,
    memory_gb=32,
    memory_type="DDR2-800",
    disks=tuple(
        DiskSpec(DiskKind.SATA_10K, active_delta_w=3.0, max_bandwidth_bps=90e6)
        for _ in range(2)
    ),
    budget=PowerBudget(
        cpu_w=36.0, memory_w=7.0, disk_w=6.0, network_w=2.0, board_w=4.0,
    ),
    core_freq_divergence=0.12,
)

XEON_SATA = PlatformSpec(
    key="xeon_sata",
    display_name="Intel Xeon / SATA (server)",
    system_class=SystemClass.SERVER,
    cpu_model="Intel Xeon, 4-core, dual socket, 2.33 GHz, 80W",
    n_sockets=2,
    cores_per_socket=4,
    base_freq_ghz=2.33,
    tdp_w=80.0,
    dvfs_mode=DVFSMode.PER_CORE,
    freq_states_ghz=_p_states(2.33, 5),
    idle_power_w=250.0,
    max_power_w=375.0,
    memory_gb=16,
    memory_type="DDR2-667",
    disks=tuple(
        DiskSpec(DiskKind.SATA_7200, active_delta_w=5.0, max_bandwidth_bps=70e6)
        for _ in range(4)
    ),
    budget=PowerBudget(
        cpu_w=80.0, memory_w=11.0, disk_w=20.0, network_w=4.0, board_w=10.0,
    ),
    core_freq_divergence=0.20,
)

XEON_SAS = PlatformSpec(
    key="xeon_sas",
    display_name="Intel Xeon / SAS (server)",
    system_class=SystemClass.SERVER,
    cpu_model="Intel Xeon, 4-core, dual socket, 2.67 GHz, 80W",
    n_sockets=2,
    cores_per_socket=4,
    base_freq_ghz=2.67,
    tdp_w=80.0,
    dvfs_mode=DVFSMode.PER_CORE,
    freq_states_ghz=_p_states(2.67, 5),
    idle_power_w=260.0,
    max_power_w=380.0,
    memory_gb=16,
    memory_type="DDR2-667",
    disks=tuple(
        DiskSpec(DiskKind.SAS_15K, active_delta_w=4.5, max_bandwidth_bps=120e6)
        for _ in range(6)
    ),
    budget=PowerBudget(
        cpu_w=66.0, memory_w=11.0, disk_w=27.0, network_w=4.0, board_w=12.0,
    ),
    core_freq_divergence=0.20,
)

ALL_PLATFORMS: tuple[PlatformSpec, ...] = (
    ATOM, CORE2, ATHLON, OPTERON, XEON_SATA, XEON_SAS,
)

PLATFORMS_BY_KEY: dict[str, PlatformSpec] = {p.key: p for p in ALL_PLATFORMS}


def get_platform(key: str) -> PlatformSpec:
    """Look up a platform by its short key (e.g. ``"opteron"``)."""
    try:
        return PLATFORMS_BY_KEY[key]
    except KeyError:
        known = ", ".join(sorted(PLATFORMS_BY_KEY))
        raise KeyError(f"unknown platform {key!r}; known platforms: {known}")
