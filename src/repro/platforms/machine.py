"""A simulated machine: spec + individual variation + governor + power.

``SimulatedMachine`` is the unit the cluster runner instruments: it owns a
deterministic per-machine random stream (so the same machine always has the
same manufacturing variation), a DVFS governor, and a ground-truth power
synthesizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.activity import ActivityTrace
from repro.platforms.dvfs import FrequencyGovernor
from repro.platforms.power import PowerSynthesizer
from repro.platforms.specs import PlatformSpec
from repro.platforms.variation import MachineVariation, draw_variation


@dataclass
class SimulatedMachine:
    """One physical machine in a cluster."""

    spec: PlatformSpec
    machine_id: str
    variation: MachineVariation
    governor: FrequencyGovernor = field(init=False)
    synthesizer: PowerSynthesizer = field(init=False)

    def __post_init__(self):
        self.governor = FrequencyGovernor(self.spec)
        self.synthesizer = PowerSynthesizer(self.spec, self.variation)

    @classmethod
    def build(
        cls, spec: PlatformSpec, machine_index: int, seed: int
    ) -> "SimulatedMachine":
        """Construct machine ``machine_index`` of a cluster deterministically.

        The variation stream is keyed on (platform, index, seed) so the same
        logical machine is identical across workloads and runs — a machine's
        manufacturing variation does not change between experiments.
        """
        rng = np.random.default_rng([seed, machine_index, _platform_tag(spec)])
        variation = draw_variation(rng)
        return cls(
            spec=spec,
            machine_id=f"{spec.key}-{machine_index:02d}",
            variation=variation,
        )

    def true_power(
        self, activity: ActivityTrace, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Ground-truth AC power for an activity trace on this machine."""
        return self.synthesizer.true_power(activity, rng=rng)

    def assign_frequencies(
        self, demand: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Run the machine's DVFS governor over a demand matrix."""
        return self.governor.assign(demand, rng)


def _platform_tag(spec: PlatformSpec) -> int:
    """Stable small integer derived from the platform key for seeding."""
    return sum(ord(c) for c in spec.key) % 997
