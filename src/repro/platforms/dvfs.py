"""DVFS governors: turn per-core CPU demand into per-core frequency traces.

Section III-A of the paper describes three regimes, which we reproduce:

* **Atom** — no DVFS; the clock is pinned at 1.6 GHz whenever any work runs.
* **Core 2 / Athlon** — chip-wide DVFS; both cores report the same frequency
  99.8% of the time (brief transition windows account for the rest).
* **Opteron / Xeon** — per-core P-states; core 0 disagrees with at least one
  other core 12% / 20% of the time, and the whole package drops to C1
  (reported frequency 0 MHz) when every core is idle.

A governor consumes a ``(n_cores, T)`` demand matrix (the utilization the
workload *wants*) and returns the operating frequency for every core-second.
"""

from __future__ import annotations

import numpy as np

from repro.platforms.specs import DVFSMode, PlatformSpec

_IDLE_DEMAND = 0.05
"""Below this demand a server core is considered idle for C1 purposes."""


def _quantize_to_states(
    target_ghz: np.ndarray, states: tuple[float, ...]
) -> np.ndarray:
    """Snap target frequencies up to the smallest adequate P-state."""
    states_array = np.asarray(states)
    # Index of first state >= target; demands above the top state saturate.
    indices = np.searchsorted(states_array, target_ghz, side="left")
    indices = np.clip(indices, 0, states_array.size - 1)
    return states_array[indices]


def _smooth_demand(demand: np.ndarray, inertia: float = 0.78) -> np.ndarray:
    """EWMA along time: governors react with a little hysteresis."""
    smoothed = np.empty_like(demand)
    smoothed[..., 0] = demand[..., 0]
    for t in range(1, demand.shape[-1]):
        smoothed[..., t] = (
            inertia * smoothed[..., t - 1] + (1.0 - inertia) * demand[..., t]
        )
    return smoothed


class FrequencyGovernor:
    """Maps demand to operating frequency for one platform."""

    def __init__(self, spec: PlatformSpec):
        self.spec = spec

    def assign(
        self, demand: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-core frequencies (GHz) for a (n_cores, T) demand matrix."""
        demand = np.asarray(demand, dtype=float)
        if demand.ndim != 2:
            raise ValueError("demand must be (n_cores, T)")
        if demand.shape[0] != self.spec.n_cores:
            raise ValueError(
                f"demand has {demand.shape[0]} cores, platform "
                f"{self.spec.key} has {self.spec.n_cores}"
            )
        if self.spec.dvfs_mode is DVFSMode.NONE:
            return self._assign_fixed(demand)
        if self.spec.dvfs_mode is DVFSMode.CHIP_WIDE:
            return self._assign_chip_wide(demand, rng)
        if self.spec.dvfs_mode is DVFSMode.PER_CORE_INDEPENDENT:
            return self._assign_per_core_independent(demand, rng)
        return self._assign_per_core(demand, rng)

    def _assign_fixed(self, demand: np.ndarray) -> np.ndarray:
        frequency = self.spec.freq_states_ghz[0]
        return np.full_like(demand, frequency)

    def _target_frequency(self, demand: np.ndarray) -> np.ndarray:
        """Demand-proportional frequency before quantization."""
        max_freq = self.spec.max_freq_ghz
        # A modest boost factor makes the governor race-to-max under load.
        return np.clip(demand * 1.25, 0.0, 1.0) * max_freq

    def _assign_chip_wide(
        self, demand: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        # The package frequency follows the most demanding core.
        package_demand = _smooth_demand(demand.max(axis=0))
        target = self._target_frequency(package_demand)
        package_freq = _quantize_to_states(target, self.spec.freq_states_ghz)
        package_freq = np.maximum(package_freq, self.spec.min_freq_ghz)
        frequencies = np.tile(package_freq, (self.spec.n_cores, 1))

        # Transition windows: rarely, one core briefly reports a stale state.
        divergent = rng.random(frequencies.shape) < self.spec.core_freq_divergence
        states = np.asarray(self.spec.freq_states_ghz)
        if divergent.any() and states.size > 1:
            current = frequencies[divergent]
            indices = np.searchsorted(states, current)
            stale = states[np.maximum(indices - 1, 0)]
            frequencies[divergent] = stale
        return frequencies

    def _assign_per_core(
        self, demand: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        # The OS power manager keeps cores loosely coordinated: the common
        # P-state follows the most demanding core (as in the chip-wide
        # case), and individual cores drop below it only occasionally.
        n_cores, n_seconds = demand.shape
        package_demand = _smooth_demand(demand.max(axis=0))
        target = self._target_frequency(package_demand)
        package_freq = _quantize_to_states(target, self.spec.freq_states_ghz)
        package_freq = np.maximum(package_freq, self.spec.min_freq_ghz)
        frequencies = np.tile(package_freq, (n_cores, 1))

        # Divergence: in a `core_freq_divergence` fraction of seconds, one
        # lightly-loaded non-reference core lags one P-state behind, so the
        # fraction of seconds where core 0 disagrees with at least one
        # other core matches the paper's measured rate (12% Opteron, 20%
        # Xeon).
        states = np.asarray(self.spec.freq_states_ghz)
        if states.size > 1 and n_cores > 1:
            divergent_seconds = (
                rng.random(n_seconds) < self.spec.core_freq_divergence
            )
            lag_core = rng.integers(1, n_cores, size=n_seconds)
            indices = np.searchsorted(states, package_freq)
            lowered = states[np.maximum(indices - 1, 0)]
            columns = np.flatnonzero(divergent_seconds)
            frequencies[lag_core[columns], columns] = lowered[columns]

        # C1: when every core is idle the package stops its clock entirely.
        all_idle = (demand < _IDLE_DEMAND).all(axis=0)
        frequencies[:, all_idle] = 0.0
        return frequencies

    def _assign_per_core_independent(
        self, demand: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Future-work regime: every core scales and parks on its own.

        Each core follows its own smoothed demand with no package
        coordination, and idle cores park individually (per-core C1 /
        core parking).  Core frequencies end up weakly correlated, which
        is exactly the condition under which Section V-D predicts a
        single core's frequency stops proxying the system.
        """
        smoothed = _smooth_demand(demand)
        target = self._target_frequency(smoothed)
        frequencies = _quantize_to_states(target, self.spec.freq_states_ghz)
        frequencies = np.maximum(frequencies, self.spec.min_freq_ghz)
        # Per-core parking: an individually idle core stops its clock.
        frequencies = np.where(demand < _IDLE_DEMAND, 0.0, frequencies)
        return frequencies


def core0_divergence_fraction(frequencies: np.ndarray) -> float:
    """Fraction of seconds where core 0 differs from any other core.

    This is the statistic the paper reports (12% Opteron, 20% Xeon); tests
    use it to validate governor behaviour.
    """
    frequencies = np.asarray(frequencies)
    if frequencies.ndim != 2 or frequencies.shape[0] < 2:
        raise ValueError("need a (n_cores >= 2, T) frequency matrix")
    differs = (frequencies[1:] != frequencies[0]).any(axis=0)
    return float(differs.mean())
