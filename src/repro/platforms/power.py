"""Ground-truth full-system AC power synthesis.

This is the simulator's stand-in for physics: given a machine's latent
activity, produce the wall power a perfect meter would read.  The paper's
central observation — that full-system power "goes beyond the superposition
of components" because of regulators, PSU inefficiency and chipset glue
(Section II) — is reproduced explicitly:

1. Component DC power is summed from nonlinear per-component curves
   (``repro.platforms.components``), scaled by the platform budget and the
   machine's individual variation.
2. The DC total passes through a load-dependent PSU efficiency curve, which
   bends the top of the AC range — exactly the region the paper shows
   linear models failing to predict (Figure 5).
3. An affine calibration maps the raw curve onto the platform's Table I
   range, so simulated idle and peak power land where the paper measured
   them.
4. A small unmodeled residual (fans, VR ripple, background OS jitter) sets
   the noise floor that bounds achievable model accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.activity import ActivityTrace, idle_activity
from repro.platforms import components
from repro.platforms.specs import PlatformSpec
from repro.platforms.variation import IDENTITY_VARIATION, MachineVariation


@dataclass(frozen=True)
class PSUCurve:
    """Power-supply efficiency as a function of load fraction.

    Efficiency peaks near ``optimal_load`` and falls off quadratically on
    both sides — the standard 80-PLUS-style bathtub inverted.
    """

    peak_efficiency: float = 0.89
    optimal_load: float = 0.45
    curvature: float = 0.50
    floor: float = 0.65

    def efficiency(self, load_fraction: np.ndarray) -> np.ndarray:
        load = np.clip(np.asarray(load_fraction, dtype=float), 0.0, 1.2)
        value = self.peak_efficiency - self.curvature * (load - self.optimal_load) ** 2
        return np.clip(value, self.floor, 1.0)


class PowerSynthesizer:
    """Ground-truth AC power for one machine (spec + individual variation)."""

    def __init__(
        self,
        spec: PlatformSpec,
        variation: MachineVariation = IDENTITY_VARIATION,
        psu: PSUCurve | None = None,
        residual_noise_frac: float = 0.004,
        hidden_disturbance_frac: float = 0.008,
        hidden_disturbance_rho: float = 0.97,
    ):
        self.spec = spec
        self.variation = variation
        self.psu = psu if psu is not None else PSUCurve()
        self.residual_noise_frac = residual_noise_frac
        self.hidden_disturbance_frac = hidden_disturbance_frac
        self.hidden_disturbance_rho = hidden_disturbance_rho
        self._calibrate()

    # ------------------------------------------------------------------
    # Raw (pre-calibration) power curve
    # ------------------------------------------------------------------
    def _component_fractions(self, activity: ActivityTrace) -> dict[str, np.ndarray]:
        cpu = components.cpu_fraction(activity, self.spec)
        memory = components.memory_fraction(activity, self.spec)
        disk = components.disk_fraction(activity, self.spec)
        network = components.network_fraction(activity, self.spec)
        board = components.board_fraction(cpu, memory, disk, network)
        return {
            "cpu": cpu,
            "memory": memory,
            "disk": disk,
            "network": network,
            "board": board,
        }

    def _raw_ac_power(self, activity: ActivityTrace) -> np.ndarray:
        budget = self.spec.budget
        budget_watts = {
            "cpu": budget.cpu_w,
            "memory": budget.memory_w,
            "disk": budget.disk_w,
            "network": budget.network_w,
            "board": budget.board_w,
        }
        factors = self.variation.component_factors()
        fractions = self._component_fractions(activity)

        dynamic_dc = np.zeros(activity.n_seconds)
        for name, fraction in fractions.items():
            dynamic_dc += budget_watts[name] * factors[name] * fraction

        idle_dc = self.spec.idle_power_w * self.variation.idle_factor * 0.85
        total_dc = idle_dc + dynamic_dc

        capacity = (self.spec.max_power_w * 1.25)  # PSU rated above peak draw
        load_fraction = total_dc / capacity
        efficiency = self.psu.efficiency(load_fraction)
        return total_dc / efficiency

    # ------------------------------------------------------------------
    # Calibration onto the Table I range
    # ------------------------------------------------------------------
    def _calibrate(self) -> None:
        """Affine-map the raw curve so idle/max activity hit the spec range.

        Calibration is computed for the *nominal* machine (variation
        applied), so individual machines still deviate from the platform's
        nominal range by their variation factors — the paper's
        machine-to-machine spread survives calibration.
        """
        n_probe = 8
        idle = idle_activity(
            self.spec.n_cores, n_probe, idle_freq_ghz=self.spec.idle_freq_ghz
        )
        full = _full_activity(self.spec, n_probe)

        raw_idle = float(np.mean(self._raw_ac_power(idle)))
        raw_full = float(np.mean(self._raw_ac_power(full)))
        if raw_full <= raw_idle:
            raise RuntimeError(
                f"{self.spec.key}: degenerate raw power curve "
                f"({raw_idle:.1f} W idle vs {raw_full:.1f} W full)"
            )

        nominal_idle = self.spec.idle_power_w * self.variation.idle_factor
        nominal_max = nominal_idle + self.spec.dynamic_range_w
        self._scale = (nominal_max - nominal_idle) / (raw_full - raw_idle)
        self._offset = nominal_idle - self._scale * raw_idle

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def true_power(
        self,
        activity: ActivityTrace,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Ground-truth AC watts per second for a latent activity trace.

        With ``rng`` provided, adds the unmodeled disturbances; without it,
        returns the deterministic component (useful for tests).  Two
        disturbances bound achievable model accuracy, as on real hardware:

        * white residual noise (VR ripple, background OS jitter), and
        * a slow AR(1) drift (fan duty cycles, component temperatures,
          PSU thermal efficiency shifts) that no OS counter observes —
          this is the floor under the paper's 2.5-11% best-case DREs.

        Both scale with the platform's *absolute* power level (fans and
        thermals track total dissipation), which is why small-dynamic-range
        platforms like the Atom show much larger DRE than servers at the
        same relative noise — the Table III inversion.
        """
        power = self._offset + self._scale * self._raw_ac_power(activity)
        if rng is not None:
            scale_w = self.spec.max_power_w
            if self.residual_noise_frac > 0:
                power = power + rng.normal(
                    0.0, self.residual_noise_frac * scale_w, size=power.shape
                )
            if self.hidden_disturbance_frac > 0:
                power = power + self._hidden_disturbance(power.shape[0], rng)
        return np.maximum(power, 0.0)

    def _hidden_disturbance(
        self, n_seconds: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Slow AR(1) thermal/fan drift, stationary sigma set by config."""
        rho = self.hidden_disturbance_rho
        sigma = self.hidden_disturbance_frac * self.spec.max_power_w
        innovations = rng.normal(
            0.0, sigma * np.sqrt(1.0 - rho**2), size=n_seconds
        )
        drift = np.empty(n_seconds)
        drift[0] = rng.normal(0.0, sigma)
        for t in range(1, n_seconds):
            drift[t] = rho * drift[t - 1] + innovations[t]
        return drift

    def component_breakdown(self, activity: ActivityTrace) -> dict[str, np.ndarray]:
        """Per-component dynamic fractions (for analysis and tests)."""
        return self._component_fractions(activity)


def _full_activity(spec: PlatformSpec, n_seconds: int) -> ActivityTrace:
    """A trace with every component saturated, used as calibration anchor."""
    ones = np.ones(n_seconds)
    total_disk_bw = sum(d.max_bandwidth_bps for d in spec.disks)
    return ActivityTrace(
        core_util=np.ones((spec.n_cores, n_seconds)),
        core_freq_ghz=np.full((spec.n_cores, n_seconds), spec.max_freq_ghz),
        mem_pages_per_sec=ones * 30000.0,
        page_faults_per_sec=ones * 60000.0,
        cache_faults_per_sec=ones * 80000.0,
        committed_bytes=ones * spec.memory_gb * 2 ** 30 * 0.8,
        disk_read_bytes=ones * total_disk_bw * 0.6,
        disk_write_bytes=ones * total_disk_bw * 0.4,
        disk_busy_frac=ones.copy(),
        net_sent_bytes=ones * spec.nic_max_bps * 0.5,
        net_recv_bytes=ones * spec.nic_max_bps * 0.5,
        interrupts_per_sec=ones * 20000.0,
        dpc_time_frac=ones * 0.05,
    )
