"""Multi-criteria decision making: one scalar score over the frontier.

Pareto dominance orders candidates only partially; picking *the* design
to ship needs a total order.  The campaign engine uses the weighted-sum
model over min-max normalized objectives (DAVOS-style MCDM): every
objective is mapped to [0, 1] across the evaluated set (0 = best seen,
1 = worst seen; constant objectives contribute 0), weights are
normalized to sum to one — so scores are invariant under positive
scaling of the weight vector (up to float rounding), which the property
suite pins — and the score is the weighted sum.  Lower is better,
consistent with the minimized objectives.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.analysis.arraysan import contracted

#: Default objective weights: accuracy dominates, the three cost axes
#: share the rest (see docs/dse.md).
DEFAULT_WEIGHTS: Dict[str, float] = {
    "dre": 0.5,
    "overhead": 0.2,
    "fit_cost": 0.15,
    "serving_p99": 0.15,
}


def normalize_weights(
    weights: Dict[str, float], objective_names: Sequence[str]
) -> NDArray[np.float64]:
    """Weight vector in objective order, scaled to sum to one."""
    missing = [name for name in objective_names if name not in weights]
    if missing:
        raise ValueError(f"weights missing objectives {missing}")
    vector = np.asarray(
        [float(weights[name]) for name in objective_names], dtype=float
    )
    if np.any(vector < 0.0) or not np.all(np.isfinite(vector)):
        raise ValueError("weights must be finite and non-negative")
    total = float(vector.sum())
    if total <= 0.0:
        raise ValueError("at least one weight must be positive")
    return vector / total


@contracted
def minmax_normalize(objectives: ArrayLike) -> NDArray[np.float64]:
    """Column-wise min-max rescale to [0, 1]; constant columns go to 0."""
    matrix = np.asarray(objectives, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("objectives must be a (n_candidates, m) matrix")
    if not np.all(np.isfinite(matrix)):
        raise ValueError("objective values must be finite")
    lo = matrix.min(axis=0)
    span = matrix.max(axis=0) - lo
    safe_span = np.where(span > 0.0, span, 1.0)
    scaled = (matrix - lo) / safe_span
    scaled[:, span <= 0.0] = 0.0
    return scaled


@contracted
def mcdm_scores(
    objectives: ArrayLike,
    weights: ArrayLike,
) -> NDArray[np.float64]:
    """Weighted-sum score per row (lower is better).

    ``weights`` is one non-negative entry per objective column; it is
    re-normalized to sum to one here, so any positive scaling of the
    vector names the same decision (scores agree to float rounding).
    """
    matrix = minmax_normalize(objectives)
    vector = np.asarray(weights, dtype=float).ravel()
    if vector.size != matrix.shape[1]:
        raise ValueError(
            f"need one weight per objective, got {vector.size} for "
            f"{matrix.shape[1]} objectives"
        )
    if np.any(vector < 0.0) or not np.all(np.isfinite(vector)):
        raise ValueError("weights must be finite and non-negative")
    total = float(vector.sum())
    if total <= 0.0:
        raise ValueError("at least one weight must be positive")
    return matrix @ (vector / total)


def mcdm_ranking(
    objectives: ArrayLike, weights: ArrayLike
) -> List[int]:
    """Row indices from best (lowest score) to worst, ties by index."""
    scores = mcdm_scores(objectives, weights)
    return list(np.argsort(scores, kind="stable"))
