"""Self-contained HTML frontier reports for search campaigns.

``render_report`` turns a campaign payload (``runner.to_payload()``)
into one HTML file with zero external references: inline CSS, inline
SVG scatter plots of every 2-D objective projection, and a sortable
candidate table driven by a few lines of inline vanilla JS.  The output
is a pure function of the payload — two renders of the same campaign
are byte-identical, which is what lets the resume test compare report
bytes directly.

Visual conventions (the repo's chart style):

* the Pareto frontier is series-1 blue, dominated candidates are gray
  context points — identity is also carried by marker size and the
  legend, never color alone;
* all text wears text tokens (primary/secondary ink), never the series
  color;
* dark mode is its own palette selected via ``prefers-color-scheme``,
  not an automatic inversion;
* every marker carries a native ``<title>`` tooltip naming the
  candidate and its exact objective values.
"""

from __future__ import annotations

from html import escape
from itertools import combinations
from typing import Dict, List, Sequence, Tuple

#: Objective axis labels for the scatter projections and table.
AXIS_LABELS: Dict[str, str] = {
    "dre": "DRE",
    "overhead": "overhead (CPU fraction)",
    "fit_cost": "fit cost (a.u.)",
    "serving_p99": "serving p99 (s/sample)",
}

_CSS = """
:root {
  --surface: #fcfcfb;
  --text-primary: #0b0b0b;
  --text-secondary: #5f5f5d;
  --grid: #e4e4e2;
  --frontier: #2a78d6;
  --context: #b9b9b7;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19;
    --text-primary: #ffffff;
    --text-secondary: #b4b4b2;
    --grid: #33333a;
    --frontier: #3987e5;
    --context: #5a5a58;
  }
}
body {
  background: var(--surface);
  color: var(--text-primary);
  font: 14px/1.5 system-ui, sans-serif;
  margin: 2rem auto;
  max-width: 72rem;
  padding: 0 1rem;
}
h1 { font-size: 1.4rem; }
h2 { font-size: 1.1rem; margin-top: 2rem; }
.meta { color: var(--text-secondary); font-size: 0.85rem; }
.meta code { color: var(--text-primary); }
.legend { margin: 0.5rem 0; font-size: 0.85rem; }
.legend .swatch {
  display: inline-block; width: 10px; height: 10px;
  border-radius: 50%; margin: 0 0.3rem 0 1rem; vertical-align: middle;
}
.charts { display: flex; flex-wrap: wrap; gap: 1rem; }
.chart text { fill: var(--text-secondary); font-size: 10px; }
table { border-collapse: collapse; width: 100%; font-size: 0.85rem; }
th, td {
  text-align: left; padding: 0.3rem 0.6rem;
  border-bottom: 1px solid var(--grid);
}
th { cursor: pointer; color: var(--text-secondary); }
th:hover { color: var(--text-primary); }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
tr.frontier td:first-child { border-left: 3px solid var(--frontier); }
"""

_SORT_JS = """
document.querySelectorAll("th[data-col]").forEach(function (th) {
  th.addEventListener("click", function () {
    var table = th.closest("table");
    var body = table.querySelector("tbody");
    var col = th.dataset.col;
    var numeric = th.classList.contains("num");
    var dir = th.dataset.dir === "asc" ? -1 : 1;
    th.dataset.dir = dir === 1 ? "asc" : "desc";
    var rows = Array.prototype.slice.call(body.querySelectorAll("tr"));
    rows.sort(function (a, b) {
      var av = a.querySelector('[data-col="' + col + '"]').dataset.sort;
      var bv = b.querySelector('[data-col="' + col + '"]').dataset.sort;
      if (numeric) { return dir * (parseFloat(av) - parseFloat(bv)); }
      return dir * av.localeCompare(bv);
    });
    rows.forEach(function (row) { body.appendChild(row); });
  });
});
"""


def _fmt(value: float) -> str:
    """Stable short float formatting for axis labels and cells."""
    return format(float(value), ".4g")


def _scatter_svg(
    x_name: str,
    y_name: str,
    points: Sequence[Tuple[float, float, str, bool]],
) -> str:
    """One 2-D projection: (x, y, label, on_frontier) points.

    320x260 with fixed margins; both axes are min-max scaled over the
    plotted candidates.  Frontier markers are larger, blue, and ringed
    with the surface color so overlapping points stay separable.
    """
    width, height = 320, 260
    left, right, top, bottom = 46, 10, 10, 36
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    def sx(x: float) -> float:
        return left + (x - x_lo) / x_span * (width - left - right)

    def sy(y: float) -> float:
        return (height - bottom) - (y - y_lo) / y_span * (
            height - top - bottom
        )

    parts = [
        f'<svg class="chart" role="img" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect x="{left}" y="{top}" width="{width - left - right}" '
        f'height="{height - top - bottom}" fill="none" '
        'stroke="var(--grid)" stroke-width="1"/>',
    ]
    # Context (dominated) points first so frontier markers draw on top.
    for on_frontier in (False, True):
        for x, y, label, flag in points:
            if flag != on_frontier:
                continue
            cx, cy = _fmt(sx(x)), _fmt(sy(y))
            title = escape(
                f"{label}: {x_name}={_fmt(x)}, {y_name}={_fmt(y)}"
            )
            if on_frontier:
                parts.append(
                    f'<circle cx="{cx}" cy="{cy}" r="4" '
                    'fill="var(--frontier)" stroke="var(--surface)" '
                    f'stroke-width="2"><title>{title}</title></circle>'
                )
            else:
                parts.append(
                    f'<circle cx="{cx}" cy="{cy}" r="3" '
                    f'fill="var(--context)"><title>{title}</title>'
                    "</circle>"
                )
    x_label = escape(AXIS_LABELS.get(x_name, x_name))
    y_label = escape(AXIS_LABELS.get(y_name, y_name))
    parts.extend([
        f'<text x="{left}" y="{height - bottom + 14}">{_fmt(x_lo)}</text>',
        f'<text x="{width - right}" y="{height - bottom + 14}" '
        f'text-anchor="end">{_fmt(x_hi)}</text>',
        f'<text x="{(left + width - right) / 2:.0f}" '
        f'y="{height - bottom + 28}" text-anchor="middle">'
        f"{x_label}</text>",
        f'<text x="{left - 4}" y="{height - bottom}" '
        f'text-anchor="end">{_fmt(y_lo)}</text>',
        f'<text x="{left - 4}" y="{top + 10}" text-anchor="end">'
        f"{_fmt(y_hi)}</text>",
        f'<text x="{left - 34}" y="{(top + height - bottom) / 2:.0f}" '
        f'transform="rotate(-90 {left - 34} '
        f'{(top + height - bottom) / 2:.0f})" text-anchor="middle">'
        f"{y_label}</text>",
        "</svg>",
    ])
    return "".join(parts)


def _provenance_rows(payload: dict) -> List[Tuple[str, str]]:
    substrate = payload["substrate"]
    config = payload["config"]
    provenance = payload.get("provenance", {})
    rows = [
        ("commit", provenance.get("commit", "unknown")),
        ("platform / workload",
         f"{substrate['platform']} / {substrate['workload']}"),
        ("machines x runs",
         f"{substrate['machines']} x {substrate['runs']}"),
        ("seed", str(config["seed"])),
        ("counter ranking", substrate["ranking"]),
        ("space digest", payload["space_digest"][:16]),
        ("runs digest", substrate["runs_digest"][:16]),
        ("candidates evaluated", str(len(payload["candidates"]))),
        ("frontier size", str(len(payload["frontier"]))),
        ("generations", str(len(payload["history"]))),
        ("weights", ", ".join(
            f"{name}={config['weights'][name]:g}"
            for name in payload["objectives"]
        )),
    ]
    return rows


def _candidate_label(verdict: dict) -> str:
    detail = verdict.get("detail") or {}
    return str(detail.get("label", "?"))


def render_report(payload: dict) -> str:
    """The full single-file HTML report for one campaign payload."""
    objectives: List[str] = list(payload["objectives"])
    candidates: Dict[str, dict] = payload["candidates"]
    frontier = set(payload["frontier"])
    mcdm_scores = {
        entry["digest"]: entry["score"] for entry in payload["mcdm"]
    }
    feasible = {
        digest: verdict
        for digest, verdict in candidates.items()
        if verdict["feasible"]
    }

    substrate = payload["substrate"]
    title = (
        f"chaos-dse: {substrate['platform']}/{substrate['workload']} "
        "frontier"
    )

    # -- charts --------------------------------------------------------
    charts: List[str] = []
    if feasible:
        for x_name, y_name in combinations(objectives, 2):
            points = [
                (
                    float(verdict["objectives"][x_name]),
                    float(verdict["objectives"][y_name]),
                    f"{_candidate_label(verdict)} {digest[:8]}",
                    digest in frontier,
                )
                for digest, verdict in sorted(feasible.items())
            ]
            charts.append(_scatter_svg(x_name, y_name, points))

    # -- table ---------------------------------------------------------
    head_cells = [
        '<th data-col="digest">candidate</th>',
        '<th data-col="label">config</th>',
        '<th data-col="params">parameters</th>',
    ]
    for name in objectives:
        head_cells.append(
            f'<th class="num" data-col="{escape(name)}">'
            f"{escape(AXIS_LABELS.get(name, name))}</th>"
        )
    head_cells.append('<th class="num" data-col="mcdm">MCDM score</th>')
    head_cells.append('<th data-col="front">frontier</th>')

    body_rows: List[str] = []
    ordered = [entry["digest"] for entry in payload["mcdm"]]
    ordered += sorted(set(candidates) - set(ordered))
    for digest in ordered:
        verdict = candidates[digest]
        label = _candidate_label(verdict)
        params = ", ".join(
            f"{key}={value}"
            for key, value in sorted(verdict["params"].items())
        )
        on_front = digest in frontier
        cells = [
            f'<td data-col="digest" data-sort="{digest}">'
            f"<code>{digest[:10]}</code></td>",
            f'<td data-col="label" data-sort="{escape(label)}">'
            f"{escape(label)}</td>",
            f'<td data-col="params" data-sort="{escape(params)}">'
            f"{escape(params)}</td>",
        ]
        for name in objectives:
            if verdict["feasible"]:
                value = float(verdict["objectives"][name])
                cells.append(
                    f'<td class="num" data-col="{escape(name)}" '
                    f'data-sort="{value!r}">{_fmt(value)}</td>'
                )
            else:
                cells.append(
                    f'<td class="num" data-col="{escape(name)}" '
                    'data-sort="inf">infeasible</td>'
                )
        score = mcdm_scores.get(digest)
        if score is None:
            cells.append(
                '<td class="num" data-col="mcdm" data-sort="inf">'
                "&mdash;</td>"
            )
        else:
            cells.append(
                f'<td class="num" data-col="mcdm" '
                f'data-sort="{score!r}">{_fmt(score)}</td>'
            )
        cells.append(
            f'<td data-col="front" data-sort="{int(on_front)}">'
            f'{"yes" if on_front else ""}</td>'
        )
        row_class = ' class="frontier"' if on_front else ""
        body_rows.append(f"<tr{row_class}>{''.join(cells)}</tr>")

    provenance = "".join(
        f"<tr><td>{escape(key)}</td><td><code>{escape(value)}</code>"
        "</td></tr>"
        for key, value in _provenance_rows(payload)
    )

    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{escape(title)}</title>
<style>{_CSS}</style>
</head>
<body>
<h1>{escape(title)}</h1>
<p class="meta">Design-space exploration over
{len(candidates)} evaluated candidates
({len(feasible)} feasible, {len(frontier)} on the Pareto frontier);
all objectives minimized.</p>

<h2>Objective projections</h2>
<div class="legend">
  <span class="swatch" style="background: var(--frontier)"></span>
  Pareto frontier
  <span class="swatch" style="background: var(--context)"></span>
  dominated candidates
</div>
<div class="charts">
{''.join(charts) if charts else '<p class="meta">no feasible candidates</p>'}
</div>

<h2>Candidates</h2>
<p class="meta">Click a column header to sort; rows start in MCDM
order (best first).</p>
<table>
<thead><tr>{''.join(head_cells)}</tr></thead>
<tbody>
{''.join(body_rows)}
</tbody>
</table>

<h2>Provenance</h2>
<table class="provenance">
<tbody>
{provenance}
</tbody>
</table>
<script>{_SORT_JS}</script>
</body>
</html>
"""


def save_report(payload: dict, path) -> None:
    """Render and write the report (plain write; the render is pure)."""
    with open(path, "w") as handle:
        handle.write(render_report(payload))
