"""Candidate evaluation: the four campaign objectives, as an engine task.

A candidate phenotype names a modeling *configuration* — technique,
feature family, counter budget, training fraction — and this module
turns it into a point in objective space:

``dre``
    Mean machine-level Dynamic Range Error over run-wise
    cross-validation folds (``metrics/errors.py`` via
    ``framework/crossval.py``) — the paper's accuracy metric.
``overhead``
    Per-sample collection + prediction CPU fraction from the analytic
    :func:`repro.framework.overhead.modeled_overhead` cost model.
``fit_cost``
    Modeled training cost: rows x expanded feature width x technique
    complexity (arbitrary units, comparable within a campaign).
``serving_p99``
    Modeled per-sample serving latency: the prediction term of the
    overhead model, which the replay probe's measured p99 tracks.

The ranked objectives are **deterministic by construction** — pure
functions of (phenotype, substrate) — so a campaign's Pareto frontier
and GA search path are bit-stable across hosts, worker counts, and
warm-cache replays.  Real wall-clock numbers (fit seconds, the serving
replay probe's measured batch p99) are still collected and reported in
the candidate's ``measured`` dict; they inform the reader, not the
ranking.

Every candidate evaluation is one cacheable :class:`TaskSpec` running
:func:`candidate_task`; the substrate (runs + ranked counters) travels
as the pickled payload while everything identifying the work sits in
the JSON config, so the artifact cache key covers it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Tuple

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.dataset import runwise_folds
from repro.cluster.runner import (
    ClusterRun,
    execute_runs,
    runs_content_digest,
)
from repro.dse.space import Categorical, DesignSpace, FloatRange, IntRange
from repro.framework.crossval import evaluate_fold
from repro.framework.overhead import MODEL_COMPLEXITY, modeled_overhead
from repro.models.composition import PlatformModel
from repro.models.featuresets import (
    CPU_UTILIZATION_COUNTER,
    FREQUENCY_COUNTER,
    FeatureSet,
    cluster_plus_lagged_frequency,
    cluster_set,
    cpu_only_set,
    pool_features,
)
from repro.models.registry import build_model, supports_feature_set
from repro.platforms.specs import get_platform
from repro.selection.algorithm1 import run_algorithm1
from repro.serving.batcher import MicroBatchScorer
from repro.serving.bundle import make_bundle
from repro.serving.session import MachineSession, SessionConfig
from repro.serving.stats import ServingStats
from repro.workloads.suite import get_workload

#: Objective order: every objective matrix and weight vector in a
#: campaign uses this fixed order, all minimized.
OBJECTIVE_NAMES: Tuple[str, ...] = (
    "dre",
    "overhead",
    "fit_cost",
    "serving_p99",
)

#: Counter-ranking modes for the substrate.
RANKING_MODES = ("catalog", "algorithm1")

DEFAULT_PROBE_SECONDS = 20
MAX_COUNTER_BUDGET = 8


# ----------------------------------------------------------------------
# Substrate: what every candidate evaluation shares
# ----------------------------------------------------------------------

@dataclass
class CampaignSubstrate:
    """The measured context a campaign evaluates candidates against."""

    platform_key: str
    workload_name: str
    n_machines: int
    n_runs: int
    seed: int
    ranking: str
    runs: List[ClusterRun] = field(repr=False)
    ranked_counters: List[str]
    runs_digest: str
    idle_power_w: float

    def provenance(self) -> dict:
        """JSON-safe identity (everything but the bulky runs)."""
        return {
            "platform": self.platform_key,
            "workload": self.workload_name,
            "machines": self.n_machines,
            "runs": self.n_runs,
            "seed": self.seed,
            "ranking": self.ranking,
            "ranked_counters": list(self.ranked_counters),
            "runs_digest": self.runs_digest,
        }


def _catalog_ranking(cluster: Cluster, platform_key: str) -> List[str]:
    """Fast deterministic ranking: utilization and frequency first, then
    the catalog's activity-linked counters in declaration order."""
    catalog = cluster.catalog_for(platform_key)
    ranked = [CPU_UTILIZATION_COUNTER, FREQUENCY_COUNTER]
    for definition in catalog.definitions:
        if len(ranked) >= MAX_COUNTER_BUDGET:
            break
        if definition.informative and definition.name not in ranked:
            ranked.append(definition.name)
    return ranked


def _algorithm1_ranking(
    cluster: Cluster, workload_name: str, runs: List[ClusterRun]
) -> List[str]:
    """Paper-faithful ranking: Algorithm 1's occurrence histogram,
    heaviest first, padded from the catalog if selection ran short."""
    result = run_algorithm1(cluster, {workload_name: runs})
    ranked = sorted(
        result.histogram,
        key=lambda name: (-result.histogram[name], name),
    )
    for name in _catalog_ranking(cluster, cluster.platform_keys[0]):
        if len(ranked) >= MAX_COUNTER_BUDGET:
            break
        if name not in ranked:
            ranked.append(name)
    return ranked[:MAX_COUNTER_BUDGET]


def build_substrate(
    platform: str,
    workload: str,
    n_machines: int = 2,
    n_runs: int = 2,
    seed: int = 0,
    ranking: str = "catalog",
) -> CampaignSubstrate:
    """Collect the runs and counter ranking one campaign shares.

    ``ranking="catalog"`` is the fast deterministic default (CPU
    utilization + frequency + activity-linked catalog counters);
    ``ranking="algorithm1"`` runs the paper's full selection funnel and
    ranks by its occurrence histogram — slower, for real campaigns.
    """
    if ranking not in RANKING_MODES:
        raise ValueError(
            f"unknown ranking {ranking!r} (choose from {RANKING_MODES})"
        )
    if n_runs < 2:
        raise ValueError("campaigns need >= 2 runs for run-wise folds")
    spec = get_platform(platform)
    cluster = Cluster.homogeneous(spec, n_machines=n_machines, seed=seed)
    runs = execute_runs(
        cluster, get_workload(workload), n_runs=n_runs, seed=seed
    )
    if ranking == "algorithm1":
        ranked = _algorithm1_ranking(cluster, workload, runs)
    else:
        ranked = _catalog_ranking(cluster, spec.key)
    return CampaignSubstrate(
        platform_key=spec.key,
        workload_name=workload,
        n_machines=n_machines,
        n_runs=n_runs,
        seed=seed,
        ranking=ranking,
        runs=runs,
        ranked_counters=ranked,
        runs_digest=runs_content_digest(runs),
        idle_power_w=spec.idle_power_w,
    )


# ----------------------------------------------------------------------
# The CHAOS design space
# ----------------------------------------------------------------------

def chaos_space(substrate: CampaignSubstrate) -> DesignSpace:
    """The modeling-configuration space a CHAOS campaign explores.

    ``n_counters`` is conditional: it only exists for the feature
    families that consume the ranked counter list, so a ``U`` candidate
    that mutates its (inactive) counter budget stays one phenotype.
    """
    max_counters = min(len(substrate.ranked_counters), MAX_COUNTER_BUDGET)
    if max_counters < 2:
        raise ValueError("substrate ranked fewer than two counters")
    return DesignSpace([
        Categorical("model", ("L", "P", "Q", "S")),
        Categorical("features", ("U", "C", "CP")),
        IntRange("n_counters", 2, max_counters, when=("features", ("C", "CP"))),
        FloatRange("train_fraction", 0.2, 0.9),
    ])


def candidate_feature_set(
    phenotype: dict, ranked_counters: List[str]
) -> FeatureSet:
    """The feature set a phenotype selects from the ranked counters."""
    family = phenotype["features"]
    if family == "U":
        return cpu_only_set()
    selected = tuple(ranked_counters[: phenotype["n_counters"]])
    if family == "C":
        return cluster_set(selected)
    if family == "CP":
        return cluster_plus_lagged_frequency(selected)
    raise ValueError(f"unknown feature family {family!r}")


def space_constraint(
    substrate: CampaignSubstrate,
) -> Callable[[dict], bool]:
    """Feasibility closure for sampling/repair in the GA.

    Mirrors :func:`repro.models.registry.supports_feature_set`: the
    quadratic and switching techniques need >= 2 features, and switching
    needs the frequency counter among its inputs.  The evaluator
    re-checks independently, so a constraint miss degrades to an
    infeasible verdict, never a crash.
    """
    ranked = list(substrate.ranked_counters)

    def feasible(phenotype: dict) -> bool:
        try:
            feature_set = candidate_feature_set(phenotype, ranked)
        except (KeyError, ValueError, IndexError):
            return False
        return supports_feature_set(phenotype["model"], feature_set)

    return feasible


# ----------------------------------------------------------------------
# Modeled costs
# ----------------------------------------------------------------------

def _expanded_width(model_code: str, n_features: int) -> int:
    return (
        n_features * n_features if model_code == "Q" else n_features
    )


def modeled_fit_cost(
    model_code: str, n_features: int, n_rows: int
) -> float:
    """Training-cost proxy: least-squares on an (n_rows, width) design
    costs ~rows x width^2; scaled by the technique's complexity factor.
    Arbitrary units — comparable within a campaign, not across."""
    width = _expanded_width(model_code, n_features)
    return float(
        n_rows * width * width * MODEL_COMPLEXITY[model_code] * 1e-6
    )


def modeled_serving_p99(model_code: str, n_features: int) -> float:
    """Serving-latency proxy in seconds per scored sample: the
    prediction term of the overhead cost model (collection happens on
    the machine, not the serving host)."""
    report = modeled_overhead(model_code, 0, n_features)
    return report.prediction_seconds_per_sample


# ----------------------------------------------------------------------
# The serving replay probe
# ----------------------------------------------------------------------

def replay_probe(
    platform_model: PlatformModel,
    design: np.ndarray,
    substrate: CampaignSubstrate,
    probe_seconds: int,
) -> dict:
    """Stream a slice of the first run through a real serving stack.

    Builds a bundle, opens one :class:`MachineSession` per machine, and
    drives ``probe_seconds`` of recorded counters through the
    micro-batch scorer — the same layers ``repro serve`` runs behind the
    wire protocol.  Returns measured (wall-clock) telemetry: the scored
    count doubles as a feasibility check, the batch p99 as the measured
    shadow of the ``serving_p99`` objective.
    """
    bundle = make_bundle(
        platform_model,
        design,
        idle_power_w=substrate.idle_power_w,
        meta={"scenario": "dse-probe"},
    )
    stats = ServingStats()
    scorer = MicroBatchScorer(stats=stats)
    run = substrate.runs[0]
    sessions = []
    session_logs = []
    for machine_id in run.machine_ids:
        sessions.append(
            MachineSession(
                machine_id, "dse@probe", bundle, config=SessionConfig()
            )
        )
        session_logs.append(run.logs[machine_id])
    required = sessions[0].predictor.required_counters
    columns = [log.select(list(required)) for log in session_logs]
    n_seconds = min(probe_seconds, run.n_seconds)
    start_s = time.perf_counter()
    for t in range(n_seconds):
        for session, rows in zip(sessions, columns):
            session.submit(
                t,
                {name: rows[t][j] for j, name in enumerate(required)},
            )
        scorer.tick(sessions)
    wall_s = time.perf_counter() - start_s
    snapshot = stats.snapshot(sessions=sessions)
    return {
        "probe_seconds": n_seconds,
        "probe_sessions": len(sessions),
        "probe_scored": snapshot["samples_scored"],
        "probe_dropped": snapshot["dropped_samples"],
        "probe_wall_s": wall_s,
        "probe_batch_p99_s": snapshot["batch_latency_s"]["p99"],
    }


# ----------------------------------------------------------------------
# The engine task
# ----------------------------------------------------------------------

def evaluate_candidate(
    phenotype: dict,
    substrate: CampaignSubstrate,
    eval_seed: int,
    probe_seconds: int = DEFAULT_PROBE_SECONDS,
) -> dict:
    """Score one phenotype; returns the JSON-safe candidate verdict.

    Infeasible configurations (technique/feature-set mismatches) return
    ``{"feasible": False, ...}`` instead of raising, so a campaign with
    a leaky constraint degrades to penalty-ranking, not a crash.
    """
    try:
        feature_set = candidate_feature_set(
            phenotype, substrate.ranked_counters
        )
    except (KeyError, ValueError, IndexError) as error:
        return {"feasible": False, "reason": str(error)}
    model_code = phenotype["model"]
    if not supports_feature_set(model_code, feature_set):
        return {
            "feasible": False,
            "reason": (
                f"model {model_code} does not support feature set "
                f"{feature_set.name} ({feature_set.n_features} features)"
            ),
        }

    # -- dre: run-wise cross-validation --------------------------------
    train_fraction = phenotype["train_fraction"]
    machine_dres = []
    for fold_index, fold in enumerate(runwise_folds(substrate.n_runs)):
        machine_reports, _ = evaluate_fold(
            substrate.runs,
            model_code=model_code,
            feature_set=feature_set,
            fold=fold,
            fold_index=fold_index,
            train_fraction=train_fraction,
            seed=eval_seed,
        )
        machine_dres.extend(report.dre for report in machine_reports)
    dre = float(np.mean(machine_dres))

    # -- modeled cost objectives ---------------------------------------
    n_features = feature_set.n_features
    n_collected = len(feature_set.counters)
    overhead = modeled_overhead(model_code, n_collected, n_features)
    design, power = pool_features(substrate.runs, feature_set)
    n_train_rows = int(round(design.shape[0] * train_fraction))
    fit_cost = modeled_fit_cost(model_code, n_features, n_train_rows)
    serving_p99 = modeled_serving_p99(model_code, n_features)

    # -- measured shadows: fit wall time + the serving replay probe ----
    fit_start = time.perf_counter()
    model = build_model(model_code, feature_set).fit(design, power)
    fit_seconds = time.perf_counter() - fit_start
    platform_model = PlatformModel(
        platform_key=substrate.platform_key,
        model=model,
        feature_set=feature_set,
    )
    probe = replay_probe(platform_model, design, substrate, probe_seconds)
    if probe["probe_scored"] <= 0:
        return {
            "feasible": False,
            "reason": "serving probe scored no samples",
        }

    return {
        "feasible": True,
        "objectives": {
            "dre": dre,
            "overhead": overhead.cpu_fraction,
            "fit_cost": fit_cost,
            "serving_p99": serving_p99,
        },
        "measured": dict(probe, fit_seconds=fit_seconds),
        "detail": {
            "label": f"{model_code}{feature_set.name}",
            "n_features": n_features,
            "feature_names": list(feature_set.feature_names),
            "n_folds": substrate.n_runs,
            "n_train_rows": n_train_rows,
        },
    }


def candidate_task(config: dict, payload, deps, seed) -> dict:
    """Engine task: evaluate one campaign candidate.

    ``payload`` carries the substrate; everything identifying the work —
    the phenotype, the space digest, the runs digest, the evaluation
    seed — lives in ``config`` so the artifact cache key covers it.  The
    engine-derived ``seed`` is unused: candidate randomness is pinned by
    ``config["eval_seed"]`` for bit-reproducibility (the fold-task
    discipline of ``framework/crossval.py``).
    """
    del deps, seed
    substrate: CampaignSubstrate = payload
    return evaluate_candidate(
        dict(config["params"]),
        substrate,
        eval_seed=config["eval_seed"],
        probe_seconds=config["probe_seconds"],
    )
