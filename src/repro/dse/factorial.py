"""Fractional-factorial screening: cheap main-effect ranking.

Before spending a genetic-algorithm budget, a campaign can *screen* the
space: evaluate a two-level resolution-III fractional factorial (a few
dozen runs instead of the full grid) and estimate every parameter's main
effect on every objective.  Parameters whose effects are noise can then
be frozen, shrinking the space the GA searches — the DAVOS screening /
search split.

The design is the classical saturated construction: for ``k`` factors
take the smallest full two-level factorial on ``b`` base factors with
``2**b - 1 >= k`` and assign each factor to one interaction column (XOR
of a base-column subset, singletons first).  Columns are orthogonal and
balanced, which is what makes the per-factor effect means independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from numpy.typing import NDArray

from repro.analysis.arraysan import contracted
from repro.dse.space import DesignSpace, Scalar


def two_level_design(n_factors: int) -> NDArray[np.float64]:
    """(n_runs, n_factors) matrix of ±1 levels, orthogonal and balanced.

    ``n_runs = 2**b`` with the smallest ``b`` such that ``2**b - 1 >=
    n_factors``.  Factor ``j`` is the XOR of base subset ``j`` in the
    deterministic (size, lexicographic) subset order, so the design is a
    pure function of ``n_factors``.
    """
    if n_factors < 1:
        raise ValueError("need at least one factor")
    b = 1
    while (1 << b) - 1 < n_factors:
        b += 1
    n_runs = 1 << b
    # Base columns: bit j of the run index, mapped to ±1.
    base = np.empty((n_runs, b), dtype=np.float64)
    for j in range(b):
        base[:, j] = np.where((np.arange(n_runs) >> j) & 1, 1.0, -1.0)
    subsets: List[Tuple[int, ...]] = []
    for size in range(1, b + 1):
        subsets.extend(combinations(range(b), size))
    design = np.empty((n_runs, n_factors), dtype=np.float64)
    for j in range(n_factors):
        design[:, j] = np.prod(base[:, subsets[j]], axis=1)
    return design


def screening_candidates(
    space: DesignSpace,
    levels: Optional[Dict[str, Tuple[Scalar, Scalar]]] = None,
) -> "tuple[NDArray[np.float64], list[dict]]":
    """The screening design and its candidate genotypes.

    Every parameter becomes one two-level factor; ``levels`` overrides a
    parameter's (low, high) pair (defaults to the domain's
    ``screening_levels``, i.e. first/last choice or lo/hi bound).
    Conditional parameters keep their gene at both levels; inactive
    genes drop out of the evaluated phenotype as usual, which simply
    aliases those runs — acceptable for a screening pass.
    """
    levels = levels or {}
    design = two_level_design(len(space.parameters))
    pairs = []
    for parameter in space.parameters:
        low, high = levels.get(
            parameter.name, parameter.screening_levels()
        )
        for value in (low, high):
            if not parameter.contains(value):
                raise ValueError(
                    f"screening level {value!r} is outside "
                    f"{parameter.name!r}"
                )
        pairs.append((parameter.name, low, high))
    candidates = []
    for row in design:
        candidate = {}
        for (name, low, high), level in zip(pairs, row):
            candidate[name] = high if level > 0 else low
        candidates.append(candidate)
    return design, candidates


@contracted
def main_effects(
    design: NDArray[np.float64],
    objectives: NDArray[np.float64],
    feasible: Optional[NDArray[np.bool_]] = None,
) -> NDArray[np.float64]:
    """(n_factors, n_objectives) main-effect estimates.

    Effect of factor ``j`` on objective ``o`` = mean(o | level +1) -
    mean(o | level -1), taken over feasible runs only.  A factor with no
    feasible runs at one level gets ``0.0`` (no evidence either way).
    """
    design = np.asarray(design, dtype=float)
    objectives = np.asarray(objectives, dtype=float)
    if design.ndim != 2 or objectives.ndim != 2:
        raise ValueError("design and objectives must be 2-D")
    if design.shape[0] != objectives.shape[0]:
        raise ValueError("design and objectives disagree on run count")
    if feasible is None:
        feasible = np.ones(design.shape[0], dtype=bool)
    feasible = np.asarray(feasible, dtype=bool).ravel()
    effects = np.zeros(
        (design.shape[1], objectives.shape[1]), dtype=np.float64
    )
    for j in range(design.shape[1]):
        high = feasible & (design[:, j] > 0)
        low = feasible & (design[:, j] < 0)
        if not (np.any(high) and np.any(low)):
            continue
        effects[j] = (
            objectives[high].mean(axis=0) - objectives[low].mean(axis=0)
        )
    return effects


@dataclass(frozen=True)
class FactorEffect:
    """One factor's screening verdict."""

    name: str
    #: Per-objective signed effects (same order as the objective names).
    effects: Tuple[float, ...]
    #: max over objectives of |effect| / objective range — the headline
    #: "how much does this knob matter" number in [0, 1].
    strength: float


def rank_factors(
    factor_names: Sequence[str],
    effects: NDArray[np.float64],
    objectives: NDArray[np.float64],
    feasible: Optional[NDArray[np.bool_]] = None,
) -> List[FactorEffect]:
    """Factors ordered by screening strength, strongest first.

    Effects are normalized per objective by the feasible runs' observed
    range, so "strength" compares knobs across objectives with wildly
    different scales.  Ties break by factor-name order for determinism.
    """
    objectives = np.asarray(objectives, dtype=float)
    if feasible is None:
        feasible = np.ones(objectives.shape[0], dtype=bool)
    feasible = np.asarray(feasible, dtype=bool).ravel()
    if np.any(feasible):
        observed = objectives[feasible]
        spans = observed.max(axis=0) - observed.min(axis=0)
    else:
        spans = np.zeros(objectives.shape[1])
    safe = np.where(spans > 0.0, spans, 1.0)
    ranked = []
    for j, name in enumerate(factor_names):
        normalized = np.abs(effects[j]) / safe
        ranked.append(
            FactorEffect(
                name=name,
                effects=tuple(float(e) for e in effects[j]),
                strength=float(normalized.max()) if normalized.size else 0.0,
            )
        )
    ranked.sort(key=lambda fe: (-fe.strength, fe.name))
    return ranked
