"""Campaign orchestration: screen, search, rank, persist.

A *campaign* is the unit of design-space exploration: one substrate
(platform + workload runs + counter ranking), one space, one seed, and a
budgeted batch of candidate evaluations executed through the fault-
tolerant experiment engine.  The runner owns the glue:

* **screening** — the fractional-factorial pass, evaluated as one
  engine graph, reduced to ranked main effects;
* **search** — the seeded GA, whose per-generation evaluate callback
  compiles the generation's new phenotypes into content-addressed
  :class:`TaskSpec`s (key ``dse/<space>/cand/<digest>``) and runs them
  as one graph.  Candidate keys are generation-independent and the
  campaign pins one root seed, so a re-encountered phenotype — same
  generation, later generation, or a ``--resume`` after a crash — is a
  warm cache hit, never a recomputation;
* **ranking** — Pareto frontier + MCDM weighted scores over the feasible
  candidates;
* **persistence** — one canonical JSON payload (provenance, candidates,
  frontier, history) whose bytes are the campaign's identity: a resumed
  campaign must reproduce them bit-for-bit.  Volatile run telemetry
  (wall seconds, cache hit rate) rides alongside, outside the stable
  payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.dse.factorial import (
    FactorEffect,
    main_effects,
    rank_factors,
    screening_candidates,
)
from repro.dse.ga import Evaluation, GAConfig, GenerationRecord, run_search
from repro.dse.mcdm import DEFAULT_WEIGHTS, mcdm_scores, normalize_weights
from repro.dse.objectives import (
    DEFAULT_PROBE_SECONDS,
    OBJECTIVE_NAMES,
    CampaignSubstrate,
    build_substrate,
    chaos_space,
    space_constraint,
)
from repro.dse.pareto import pareto_frontier
from repro.dse.space import DesignSpace
from repro.engine import (
    TaskGraph,
    TaskSpec,
    atomic_write_json,
    canonical_json,
    resolve_cache,
    resolve_failure_policy,
    resolve_jobs,
    run_graph_report,
    sha256_hex,
)
from repro.telemetry.engine_stats import EngineTelemetry

CANDIDATE_TASK_FN = "repro.dse.objectives:candidate_task"

CAMPAIGN_FORMAT_VERSION = 1


@dataclass(frozen=True)
class CampaignConfig:
    """Everything identifying one campaign (substrate + search knobs)."""

    platform: str
    workload: str
    machines: int = 2
    runs: int = 2
    seed: int = 0
    ranking: str = "catalog"
    probe_seconds: int = DEFAULT_PROBE_SECONDS
    weights: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_WEIGHTS)
    )
    ga: GAConfig = field(default_factory=GAConfig)

    def to_config(self) -> dict:
        return {
            "platform": self.platform,
            "workload": self.workload,
            "machines": self.machines,
            "runs": self.runs,
            "seed": self.seed,
            "ranking": self.ranking,
            "probe_seconds": self.probe_seconds,
            "weights": dict(self.weights),
            "ga": self.ga.to_config(),
        }


class CampaignEvaluator:
    """Compiles candidate batches into engine graphs and runs them.

    One instance serves a whole campaign, accumulating telemetry across
    generations so the campaign rollup (total tasks, hit rate) reflects
    every graph that ran.
    """

    def __init__(
        self,
        substrate: CampaignSubstrate,
        space: DesignSpace,
        seed: int,
        probe_seconds: int = DEFAULT_PROBE_SECONDS,
        jobs: Optional[int] = None,
        cache=None,
        failure_policy: Optional[str] = None,
    ):
        self.substrate = substrate
        self.space = space
        self.seed = seed
        self.probe_seconds = probe_seconds
        self.jobs = resolve_jobs(jobs)
        self.cache = resolve_cache(cache)
        self.failure_policy = resolve_failure_policy(failure_policy)
        self.space_digest = space.digest()
        self.telemetry = EngineTelemetry()
        #: digest -> full verdict payload for every evaluated candidate.
        self.verdicts: Dict[str, dict] = {}
        self.n_graphs = 0

    def task_spec(self, digest: str, phenotype: dict) -> TaskSpec:
        """The content-addressed evaluation task for one phenotype.

        The key carries the space digest and the *phenotype* digest —
        never a generation or batch index — so the cache serves the
        same artifact wherever the candidate reappears.
        """
        return TaskSpec(
            key=f"dse/{self.space_digest[:12]}/cand/{digest[:16]}",
            fn=CANDIDATE_TASK_FN,
            config={
                "space_digest": self.space_digest,
                "runs_digest": self.substrate.runs_digest,
                "params": dict(phenotype),
                "eval_seed": self.seed,
                "probe_seconds": self.probe_seconds,
            },
            payload=self.substrate,
        )

    def __call__(
        self, digests: Sequence[str], genotypes: Dict[str, dict]
    ) -> Dict[str, Evaluation]:
        """The GA's batch-evaluate callback: one graph per batch."""
        graph = TaskGraph()
        spec_keys = {}
        for digest in digests:
            phenotype = self.space.normalize(genotypes[digest])
            spec = self.task_spec(digest, phenotype)
            graph.add(spec)
            spec_keys[digest] = spec.key
        batch_telemetry = EngineTelemetry()
        report = run_graph_report(
            graph,
            jobs=self.jobs,
            cache=self.cache,
            root_seed=self.seed,
            telemetry=batch_telemetry,
            failure_policy=self.failure_policy,
        )
        report.raise_if_failed()
        self.telemetry.merge(batch_telemetry)
        self.n_graphs += 1
        evaluations: Dict[str, Evaluation] = {}
        for digest in digests:
            verdict = report.results[spec_keys[digest]]
            self.verdicts[digest] = verdict
            if verdict["feasible"]:
                evaluations[digest] = Evaluation(
                    objectives=tuple(
                        float(verdict["objectives"][name])
                        for name in OBJECTIVE_NAMES
                    ),
                    feasible=True,
                )
            else:
                evaluations[digest] = Evaluation(
                    objectives=(), feasible=False
                )
        return evaluations


# ----------------------------------------------------------------------
# Screening
# ----------------------------------------------------------------------

@dataclass
class ScreenResult:
    """The factorial screening pass, reduced to ranked main effects."""

    config: CampaignConfig
    space_digest: str
    n_runs_evaluated: int
    n_feasible: int
    factors: List[FactorEffect]
    telemetry: EngineTelemetry

    def to_payload(self) -> dict:
        return {
            "kind": "dse-screen",
            "config": self.config.to_config(),
            "space_digest": self.space_digest,
            "runs_evaluated": self.n_runs_evaluated,
            "feasible": self.n_feasible,
            "objectives": list(OBJECTIVE_NAMES),
            "factors": [
                {
                    "name": factor.name,
                    "strength": factor.strength,
                    "effects": list(factor.effects),
                }
                for factor in self.factors
            ],
        }


def screen_campaign(
    config: CampaignConfig,
    substrate: Optional[CampaignSubstrate] = None,
    jobs: Optional[int] = None,
    cache=None,
    failure_policy: Optional[str] = None,
) -> ScreenResult:
    """Run the fractional-factorial screening pass for a campaign."""
    if substrate is None:
        substrate = build_substrate(
            config.platform,
            config.workload,
            n_machines=config.machines,
            n_runs=config.runs,
            seed=config.seed,
            ranking=config.ranking,
        )
    space = chaos_space(substrate)
    evaluator = CampaignEvaluator(
        substrate,
        space,
        seed=config.seed,
        probe_seconds=config.probe_seconds,
        jobs=jobs,
        cache=cache,
        failure_policy=failure_policy,
    )
    design, candidates = screening_candidates(space)
    digests = []
    genotypes = {}
    for candidate in candidates:
        digest = space.candidate_digest(candidate)
        digests.append(digest)
        genotypes.setdefault(digest, candidate)
    evaluations = evaluator(list(dict.fromkeys(digests)), genotypes)

    feasible = np.asarray(
        [evaluations[digest].feasible for digest in digests], dtype=bool
    )
    objectives = np.zeros((len(digests), len(OBJECTIVE_NAMES)))
    for i, digest in enumerate(digests):
        if feasible[i]:
            objectives[i] = evaluations[digest].objectives
    effects = main_effects(design, objectives, feasible)
    factors = rank_factors(space.names, effects, objectives, feasible)
    return ScreenResult(
        config=config,
        space_digest=space.digest(),
        n_runs_evaluated=len(digests),
        n_feasible=int(feasible.sum()),
        factors=factors,
        telemetry=evaluator.telemetry,
    )


# ----------------------------------------------------------------------
# Search
# ----------------------------------------------------------------------

@dataclass
class CampaignResult:
    """One finished search campaign, ready to rank and render."""

    config: CampaignConfig
    substrate_provenance: dict
    space_config: dict
    space_digest: str
    candidates: Dict[str, dict]
    """digest -> {params, feasible, objectives?, measured?, detail?}."""
    frontier: List[str]
    """Digests of the nondominated feasible candidates, sorted."""
    mcdm: List[dict]
    """[{digest, score}] best-first over the feasible candidates."""
    history: List[GenerationRecord]
    exhausted_budget: bool
    telemetry: EngineTelemetry
    provenance: dict = field(default_factory=dict)
    """Stamped by the CLI: git commit, invocation, timestamps."""

    def to_payload(self) -> dict:
        """The canonical campaign payload.

        Everything here is a pure function of (config, substrate, seed)
        — the bit-identity target for crash-resume.  Volatile data is
        deliberately excluded (see :meth:`run_info`): engine telemetry,
        and each candidate's ``measured`` wall-clock shadows, which are
        recorded at compute time and so differ between two cold runs of
        the same campaign.
        """
        ordered = sorted(self.candidates)
        stable = {}
        for digest in ordered:
            verdict = dict(self.candidates[digest])
            verdict.pop("measured", None)
            stable[digest] = verdict
        return {
            "format_version": CAMPAIGN_FORMAT_VERSION,
            "kind": "dse-campaign",
            "config": self.config.to_config(),
            "substrate": dict(self.substrate_provenance),
            "space": dict(self.space_config),
            "space_digest": self.space_digest,
            "objectives": list(OBJECTIVE_NAMES),
            "provenance": dict(self.provenance),
            "candidates": stable,
            "frontier": list(self.frontier),
            "mcdm": [dict(entry) for entry in self.mcdm],
            "history": [
                {
                    "generation": record.generation,
                    "population": list(record.population),
                    "evaluated": list(record.evaluated),
                    "frontier": list(record.frontier),
                    "best": list(record.best),
                }
                for record in self.history
            ],
            "exhausted_budget": self.exhausted_budget,
        }

    def payload_digest(self) -> str:
        """SHA-256 of the canonical payload — the resume identity."""
        return sha256_hex(canonical_json(self.to_payload()))

    def run_info(self) -> dict:
        """Volatile data for this execution, excluded from the stable
        payload: engine wall time and hit rate differ between a cold run
        and its warm resume, and the per-candidate measured shadows (fit
        wall time, serving-probe timings) are whatever the computing run
        observed."""
        return {
            "engine": self.telemetry.to_summary(),
            "measured": {
                digest: verdict["measured"]
                for digest, verdict in sorted(self.candidates.items())
                if "measured" in verdict
            },
        }


def rank_candidates(
    candidates: Dict[str, dict], weights: Dict[str, float]
) -> "tuple[List[str], List[dict]]":
    """(sorted frontier digests, best-first MCDM rows) over the feasible
    candidates; both empty when nothing was feasible."""
    feasible = sorted(
        digest
        for digest, verdict in candidates.items()
        if verdict["feasible"]
    )
    if not feasible:
        return [], []
    matrix = np.asarray(
        [
            [candidates[d]["objectives"][name] for name in OBJECTIVE_NAMES]
            for d in feasible
        ],
        dtype=float,
    )
    frontier = sorted(feasible[i] for i in pareto_frontier(matrix))
    vector = normalize_weights(weights, OBJECTIVE_NAMES)
    scores = mcdm_scores(matrix, vector)
    order = np.argsort(scores, kind="stable")
    mcdm = [
        {"digest": feasible[int(i)], "score": float(scores[int(i)])}
        for i in order
    ]
    return frontier, mcdm


def search_campaign(
    config: CampaignConfig,
    substrate: Optional[CampaignSubstrate] = None,
    jobs: Optional[int] = None,
    cache=None,
    failure_policy: Optional[str] = None,
    on_generation=None,
) -> CampaignResult:
    """Run the GA search campaign end to end."""
    if substrate is None:
        substrate = build_substrate(
            config.platform,
            config.workload,
            n_machines=config.machines,
            n_runs=config.runs,
            seed=config.seed,
            ranking=config.ranking,
        )
    space = chaos_space(substrate)
    evaluator = CampaignEvaluator(
        substrate,
        space,
        seed=config.seed,
        probe_seconds=config.probe_seconds,
        jobs=jobs,
        cache=cache,
        failure_policy=failure_policy,
    )
    result = run_search(
        space,
        evaluator,
        config.ga,
        seed=config.seed,
        constraint=space_constraint(substrate),
        on_generation=on_generation,
    )
    candidates: Dict[str, dict] = {}
    for digest in result.evaluated_order:
        verdict = dict(evaluator.verdicts[digest])
        verdict["params"] = space.normalize(result.genotypes[digest])
        candidates[digest] = verdict
    frontier, mcdm = rank_candidates(candidates, config.weights)
    return CampaignResult(
        config=config,
        substrate_provenance=substrate.provenance(),
        space_config=space.to_config(),
        space_digest=space.digest(),
        candidates=candidates,
        frontier=frontier,
        mcdm=mcdm,
        history=result.history,
        exhausted_budget=result.exhausted_budget,
        telemetry=evaluator.telemetry,
    )


def git_commit(root=None) -> str:
    """The repository HEAD for provenance stamps (``unknown`` outside
    a checkout — a campaign payload never fails over provenance)."""
    import pathlib
    import subprocess

    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root or pathlib.Path(__file__).parent,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def save_campaign(result: CampaignResult, path) -> None:
    """Write the canonical payload (plus volatile run info) atomically."""
    payload = result.to_payload()
    payload["run"] = result.run_info()
    atomic_write_json(path, payload)


def load_campaign(path) -> dict:
    """Read a campaign payload written by :func:`save_campaign`."""
    import json

    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("kind") != "dse-campaign":
        raise ValueError(f"{path} is not a dse campaign payload")
    version = payload.get("format_version")
    if version != CAMPAIGN_FORMAT_VERSION:
        raise ValueError(f"unsupported campaign version {version!r}")
    return payload
