"""Declarative design spaces: the typed parameter grid a campaign explores.

A :class:`DesignSpace` is an ordered list of typed parameters —
:class:`Categorical`, :class:`IntRange`, :class:`FloatRange` — each
optionally *conditional* on an earlier parameter's value (``when``).  A
candidate is a plain ``{name: value}`` dict; the space knows how to

* sample candidates deterministically from a ``numpy.random.Generator``,
* validate a candidate against every parameter's domain,
* normalize a candidate to its *phenotype* — only the active parameters,
  so two genotypes that differ in an inactive gene are one candidate as
  far as evaluation and the artifact cache are concerned, and
* digest itself and its candidates (SHA-256 over the canonical JSON),
  which is what makes campaign evaluations content-addressable.

Everything here is JSON-canonicalizable on purpose: a space round-trips
through :meth:`DesignSpace.to_config`, so a campaign report can name the
exact space it explored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.engine.hashing import canonical_json, sha256_hex

Scalar = Union[bool, int, float, str]

#: A conditional-activation clause: (earlier parameter name, values of
#: that parameter under which this one is active).
When = Tuple[str, Tuple[Scalar, ...]]


class SpaceError(ValueError):
    """A malformed space, parameter, or candidate."""


def _check_when(when: Optional[When]) -> Optional[When]:
    if when is None:
        return None
    name, values = when
    if not isinstance(name, str) or not name:
        raise SpaceError("when[0] must be a parameter name")
    values = tuple(values)
    if not values:
        raise SpaceError(f"when clause on {name!r} needs at least one value")
    return (name, values)


@dataclass(frozen=True)
class Categorical:
    """A finite choice; the first entry is the screening low level."""

    name: str
    choices: Tuple[Scalar, ...]
    when: Optional[When] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "choices", tuple(self.choices))
        object.__setattr__(self, "when", _check_when(self.when))
        if len(self.choices) < 2:
            raise SpaceError(f"{self.name!r} needs at least two choices")
        if len(set(self.choices)) != len(self.choices):
            raise SpaceError(f"{self.name!r} has duplicate choices")

    def sample(self, rng: np.random.Generator) -> Scalar:
        return self.choices[int(rng.integers(len(self.choices)))]

    def contains(self, value: Any) -> bool:
        return any(
            value == choice and isinstance(value, type(choice))
            for choice in self.choices
        )

    def screening_levels(self) -> Tuple[Scalar, Scalar]:
        """The two levels a factorial screen assigns to this factor."""
        return (self.choices[0], self.choices[-1])

    def to_config(self) -> dict:
        return {
            "kind": "categorical",
            "name": self.name,
            "choices": list(self.choices),
            "when": _when_config(self.when),
        }


@dataclass(frozen=True)
class IntRange:
    """An integer in ``[lo, hi]`` (both inclusive)."""

    name: str
    lo: int
    hi: int
    when: Optional[When] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "when", _check_when(self.when))
        if not (isinstance(self.lo, int) and isinstance(self.hi, int)):
            raise SpaceError(f"{self.name!r} bounds must be ints")
        if self.lo >= self.hi:
            raise SpaceError(f"{self.name!r} needs lo < hi")

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.lo, self.hi + 1))

    def contains(self, value: Any) -> bool:
        return (
            isinstance(value, int)
            and not isinstance(value, bool)
            and self.lo <= value <= self.hi
        )

    def screening_levels(self) -> Tuple[int, int]:
        return (self.lo, self.hi)

    def to_config(self) -> dict:
        return {
            "kind": "int",
            "name": self.name,
            "lo": self.lo,
            "hi": self.hi,
            "when": _when_config(self.when),
        }


@dataclass(frozen=True)
class FloatRange:
    """A float in ``[lo, hi]``; sampled values are rounded to 6 decimal
    places so candidates stay stable through the JSON round-trip and two
    near-identical mutants collapse to one cache entry."""

    name: str
    lo: float
    hi: float
    when: Optional[When] = None

    DECIMALS = 6

    def __post_init__(self) -> None:
        object.__setattr__(self, "when", _check_when(self.when))
        object.__setattr__(self, "lo", float(self.lo))
        object.__setattr__(self, "hi", float(self.hi))
        if not (np.isfinite(self.lo) and np.isfinite(self.hi)):
            raise SpaceError(f"{self.name!r} bounds must be finite")
        if self.lo >= self.hi:
            raise SpaceError(f"{self.name!r} needs lo < hi")

    def sample(self, rng: np.random.Generator) -> float:
        value = float(rng.uniform(self.lo, self.hi))
        return min(max(round(value, self.DECIMALS), self.lo), self.hi)

    def contains(self, value: Any) -> bool:
        return (
            isinstance(value, float)
            and np.isfinite(value)
            and self.lo <= value <= self.hi
        )

    def screening_levels(self) -> Tuple[float, float]:
        return (self.lo, self.hi)

    def to_config(self) -> dict:
        return {
            "kind": "float",
            "name": self.name,
            "lo": self.lo,
            "hi": self.hi,
            "when": _when_config(self.when),
        }


Parameter = Union[Categorical, IntRange, FloatRange]


def _when_config(when: Optional[When]) -> Optional[list]:
    if when is None:
        return None
    return [when[0], list(when[1])]


def _when_from_config(raw: Any) -> Optional[When]:
    if raw is None:
        return None
    return (raw[0], tuple(raw[1]))


class DesignSpace:
    """An ordered, conditionally-activated parameter space."""

    def __init__(self, parameters: Sequence[Parameter]):
        parameters = tuple(parameters)
        if not parameters:
            raise SpaceError("a design space needs at least one parameter")
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise SpaceError(f"duplicate parameter names in {names}")
        seen = set()
        for parameter in parameters:
            if parameter.when is not None:
                target = parameter.when[0]
                if target not in seen:
                    raise SpaceError(
                        f"{parameter.name!r} is conditional on {target!r}, "
                        "which must be declared earlier in the space"
                    )
            seen.add(parameter.name)
        self.parameters: Tuple[Parameter, ...] = parameters
        self._by_name = {p.name: p for p in parameters}

    # -- introspection -------------------------------------------------
    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.parameters)

    def parameter(self, name: str) -> Parameter:
        try:
            return self._by_name[name]
        except KeyError:
            raise SpaceError(f"unknown parameter {name!r}")

    def is_active(self, name: str, params: dict) -> bool:
        """Whether ``name`` is active under ``params`` (transitively:
        a parameter whose ``when`` target is itself inactive is
        inactive)."""
        parameter = self.parameter(name)
        if parameter.when is None:
            return True
        target, allowed = parameter.when
        if not self.is_active(target, params):
            return False
        return params.get(target) in allowed

    # -- candidates ----------------------------------------------------
    def sample(self, rng: np.random.Generator) -> dict:
        """One full genotype: every parameter sampled, active or not."""
        return {p.name: p.sample(rng) for p in self.parameters}

    def validate(self, params: dict) -> None:
        """Raise :class:`SpaceError` unless every *active* parameter is
        present and inside its domain."""
        for parameter in self.parameters:
            if not self.is_active(parameter.name, params):
                continue
            if parameter.name not in params:
                raise SpaceError(
                    f"candidate is missing active parameter "
                    f"{parameter.name!r}"
                )
            value = params[parameter.name]
            if not parameter.contains(value):
                raise SpaceError(
                    f"{value!r} is outside the domain of "
                    f"{parameter.name!r}"
                )

    def normalize(self, params: dict) -> dict:
        """The phenotype: active parameters only, in declaration order.

        This is the evaluation identity — inactive genes are dropped, so
        candidates differing only there share one cache entry.
        """
        self.validate(params)
        return {
            p.name: params[p.name]
            for p in self.parameters
            if self.is_active(p.name, params)
        }

    def candidate_digest(self, params: dict) -> str:
        """SHA-256 of the canonical phenotype."""
        return sha256_hex(canonical_json(self.normalize(params)))

    def sample_valid(
        self,
        rng: np.random.Generator,
        constraint: Optional[Callable[[dict], bool]] = None,
        max_tries: int = 64,
    ) -> dict:
        """Rejection-sample a genotype whose phenotype satisfies
        ``constraint``; after ``max_tries`` rejections the last draw is
        returned anyway (the evaluator will mark it infeasible)."""
        candidate = self.sample(rng)
        if constraint is None:
            return candidate
        for _ in range(max_tries):
            if constraint(self.normalize(candidate)):
                return candidate
            candidate = self.sample(rng)
        return candidate

    # -- identity ------------------------------------------------------
    def to_config(self) -> dict:
        return {"parameters": [p.to_config() for p in self.parameters]}

    @classmethod
    def from_config(cls, config: dict) -> "DesignSpace":
        parameters: list = []
        for raw in config["parameters"]:
            when = _when_from_config(raw.get("when"))
            if raw["kind"] == "categorical":
                parameters.append(
                    Categorical(raw["name"], tuple(raw["choices"]), when)
                )
            elif raw["kind"] == "int":
                parameters.append(
                    IntRange(raw["name"], raw["lo"], raw["hi"], when)
                )
            elif raw["kind"] == "float":
                parameters.append(
                    FloatRange(raw["name"], raw["lo"], raw["hi"], when)
                )
            else:
                raise SpaceError(f"unknown parameter kind {raw['kind']!r}")
        return cls(parameters)

    def digest(self) -> str:
        """SHA-256 identity of the space (parameters, order, domains)."""
        return sha256_hex(canonical_json(self.to_config()))
