"""Seeded genetic search over a design space (NSGA-II-lite).

The search loop is deliberately small: tournament selection on
(nondomination rank, crowding distance), uniform crossover, per-gene
mutation, elitist survivor selection.  What makes it a *campaign* engine
rather than a toy GA:

* **Batch evaluation.**  The GA never evaluates a candidate itself — it
  hands each generation's deduplicated phenotype digests to an
  ``evaluate`` callback, which the runner implements as one
  ``repro.engine`` task graph (parallel, cached, crash-resumable).
* **Determinism.**  All randomness derives from
  ``default_rng([seed, tag, generation])``; the same seed and space
  produce a bit-identical generation history, which the property suite
  pins and which makes ``--resume`` a pure cache replay.
* **Infeasibility as a penalty.**  Candidates the evaluator rejects are
  ranked strictly behind every feasible candidate instead of crashing
  the loop, so a constrained space degrades gracefully.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dse.pareto import rank_and_crowd
from repro.dse.space import DesignSpace

#: Seed-derivation tags (arbitrary but fixed; see engine seed discipline).
_TAG_INIT = 7101
_TAG_GEN = 7102


@dataclass(frozen=True)
class GAConfig:
    """Search knobs; defaults suit a few-hundred-candidate campaign."""

    population: int = 24
    generations: int = 8
    tournament: int = 2
    crossover_rate: float = 0.9
    mutation_rate: float = 0.2
    elites: int = 4
    #: Hard cap on distinct candidate evaluations; the search stops
    #: early once the cap would be exceeded.  ``None`` = unlimited.
    budget: Optional[int] = None

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ValueError("population must be at least 2")
        if self.generations < 1:
            raise ValueError("need at least one generation")
        if not 0 <= self.elites < self.population:
            raise ValueError("elites must be in [0, population)")
        if self.tournament < 1:
            raise ValueError("tournament size must be positive")

    def to_config(self) -> dict:
        return {
            "population": self.population,
            "generations": self.generations,
            "tournament": self.tournament,
            "crossover_rate": self.crossover_rate,
            "mutation_rate": self.mutation_rate,
            "elites": self.elites,
            "budget": self.budget,
        }


@dataclass(frozen=True)
class Evaluation:
    """One candidate's verdict from the evaluate callback."""

    objectives: Tuple[float, ...]
    feasible: bool = True


#: evaluate(digests, genotypes) -> {digest: Evaluation}.  Digests are
#: phenotype digests; genotypes carry the full gene dicts for context.
EvaluateFn = Callable[
    [Sequence[str], Dict[str, dict]], Dict[str, "Evaluation"]
]


@dataclass
class GenerationRecord:
    """What happened in one generation (report + determinism witness)."""

    generation: int
    #: Phenotype digests of the population, in population order.
    population: List[str]
    #: Digests evaluated for the first time this generation.
    evaluated: List[str]
    #: Digests of the generation's nondominated feasible candidates.
    frontier: List[str]
    #: Best (lowest) objective value seen so far, per objective.
    best: List[float] = field(default_factory=list)


@dataclass
class SearchResult:
    """Everything the runner needs to rank and report."""

    #: digest -> full genotype (first one seen for that phenotype).
    genotypes: Dict[str, dict]
    #: digest -> Evaluation for every candidate ever evaluated.
    evaluations: Dict[str, Evaluation]
    history: List[GenerationRecord]
    #: Search-order list of every distinct digest evaluated.
    evaluated_order: List[str]
    exhausted_budget: bool = False


def _penalty_key(
    digest: str,
    order: Dict[str, int],
    ranks: Dict[str, int],
    crowding: Dict[str, float],
    worst_rank: int,
) -> Tuple[int, float, int]:
    """Sort key: feasible candidates by (rank, -crowding), infeasible
    ones strictly after, all ties broken by first-seen order."""
    if digest in ranks:
        return (ranks[digest], -crowding[digest], order[digest])
    return (worst_rank + 1, 0.0, order[digest])


def _rank_population(
    digests: Sequence[str],
    evaluations: Dict[str, Evaluation],
    order: Dict[str, int],
) -> "tuple[Dict[str, int], Dict[str, float], int]":
    """Pareto rank + crowding for the feasible members of ``digests``."""
    unique = list(dict.fromkeys(digests))
    feasible = [d for d in unique if evaluations[d].feasible]
    if not feasible:
        return {}, {}, 0
    matrix = np.asarray(
        [evaluations[d].objectives for d in feasible], dtype=float
    )
    ranks, crowding = rank_and_crowd(matrix)
    rank_of = {d: int(r) for d, r in zip(feasible, ranks)}
    crowd_of = {d: float(c) for d, c in zip(feasible, crowding)}
    return rank_of, crowd_of, int(ranks.max())


def _tournament_pick(
    rng: np.random.Generator,
    digests: Sequence[str],
    key: Callable[[str], Tuple[int, float, int]],
    size: int,
) -> str:
    entrants = [
        digests[int(i)]
        for i in rng.integers(len(digests), size=max(1, size))
    ]
    return min(entrants, key=key)


def _crossover(
    rng: np.random.Generator,
    space: DesignSpace,
    mother: dict,
    father: dict,
    config: GAConfig,
) -> dict:
    child = {}
    if rng.random() < config.crossover_rate:
        for name in space.names:
            donor = mother if rng.random() < 0.5 else father
            child[name] = donor[name]
    else:
        child = dict(mother)
    return child


def _mutate(
    rng: np.random.Generator,
    space: DesignSpace,
    child: dict,
    config: GAConfig,
) -> dict:
    mutant = dict(child)
    for parameter in space.parameters:
        if rng.random() < config.mutation_rate:
            mutant[parameter.name] = parameter.sample(rng)
    return mutant


def run_search(
    space: DesignSpace,
    evaluate: EvaluateFn,
    config: GAConfig,
    seed: int,
    constraint: Optional[Callable[[dict], bool]] = None,
    on_generation: Optional[Callable[[GenerationRecord], None]] = None,
) -> SearchResult:
    """Run the genetic search; see the module docstring for semantics."""
    genotypes: Dict[str, dict] = {}
    evaluations: Dict[str, Evaluation] = {}
    evaluated_order: List[str] = []
    first_seen: Dict[str, int] = {}
    history: List[GenerationRecord] = []
    exhausted = False

    def note(digest: str, genotype: dict) -> None:
        if digest not in genotypes:
            genotypes[digest] = dict(genotype)
            first_seen[digest] = len(first_seen)

    def evaluate_new(digests: Sequence[str]) -> "tuple[List[str], bool]":
        """Evaluate not-yet-known digests; returns (fresh, hit_budget)."""
        fresh = [
            d
            for d in dict.fromkeys(digests)
            if d not in evaluations
        ]
        if config.budget is not None:
            headroom = config.budget - len(evaluated_order)
            if len(fresh) > headroom:
                fresh = fresh[: max(0, headroom)]
                hit = True
            else:
                hit = False
        else:
            hit = False
        if fresh:
            verdicts = evaluate(fresh, {d: genotypes[d] for d in fresh})
            missing = [d for d in fresh if d not in verdicts]
            if missing:
                raise RuntimeError(
                    f"evaluate callback dropped candidates {missing[:3]}"
                )
            for digest in fresh:
                evaluations[digest] = verdicts[digest]
                evaluated_order.append(digest)
        return fresh, hit

    # -- generation 0: seeded random population -----------------------
    rng = np.random.default_rng([seed, _TAG_INIT])
    population: List[str] = []
    while len(population) < config.population:
        genotype = space.sample_valid(rng, constraint)
        digest = space.candidate_digest(genotype)
        note(digest, genotype)
        population.append(digest)

    for generation in range(config.generations):
        fresh, hit = evaluate_new(population)
        if hit:
            exhausted = True
        # Drop members the budget prevented us from evaluating.
        population = [d for d in population if d in evaluations]
        if not population:
            break
        ranks, crowding, worst = _rank_population(
            population, evaluations, first_seen
        )
        frontier = sorted(d for d, r in ranks.items() if r == 0)
        feasible_objs = [
            evaluations[d].objectives
            for d in evaluated_order
            if evaluations[d].feasible
        ]
        best = (
            list(np.asarray(feasible_objs, dtype=float).min(axis=0))
            if feasible_objs
            else []
        )
        record = GenerationRecord(
            generation=generation,
            population=list(population),
            evaluated=list(fresh),
            frontier=frontier,
            best=[float(b) for b in best],
        )
        history.append(record)
        if on_generation is not None:
            on_generation(record)
        if exhausted or generation == config.generations - 1:
            break

        # -- breed the next generation ---------------------------------
        rng = np.random.default_rng([seed, _TAG_GEN, generation])
        key = lambda d: _penalty_key(  # noqa: E731
            d, first_seen, ranks, crowding, worst
        )
        survivors = sorted(dict.fromkeys(population), key=key)
        next_population = survivors[: config.elites]
        while len(next_population) < config.population:
            mother = genotypes[
                _tournament_pick(rng, population, key, config.tournament)
            ]
            father = genotypes[
                _tournament_pick(rng, population, key, config.tournament)
            ]
            child = _mutate(
                rng, space, _crossover(rng, space, mother, father, config),
                config,
            )
            if constraint is not None and not constraint(
                space.normalize(child)
            ):
                child = space.sample_valid(rng, constraint)
            digest = space.candidate_digest(child)
            note(digest, child)
            next_population.append(digest)
        population = next_population

    return SearchResult(
        genotypes=genotypes,
        evaluations=evaluations,
        history=history,
        evaluated_order=evaluated_order,
        exhausted_budget=exhausted,
    )
