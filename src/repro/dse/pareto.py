"""Pareto dominance over objective matrices (all objectives minimized).

The ranking core the campaign engine shares between the GA's selection
pressure and the final frontier report: strict dominance, the
nondominated frontier, full nondominated sorting (NSGA-II style fronts)
and crowding distance.  Everything operates on a dense ``(n_candidates,
n_objectives)`` float64 matrix so the hot loops stay vectorized.
"""

from __future__ import annotations

from typing import List

import numpy as np
from numpy.typing import ArrayLike, NDArray

from repro.analysis.arraysan import contracted


def _as_objective_matrix(objectives: ArrayLike) -> NDArray[np.float64]:
    matrix = np.asarray(objectives, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("objectives must be a (n_candidates, m) matrix")
    if not np.all(np.isfinite(matrix)):
        raise ValueError("objective values must be finite")
    return matrix


def dominates(a: ArrayLike, b: ArrayLike) -> bool:
    """Strict Pareto dominance: ``a`` <= ``b`` everywhere, < somewhere."""
    left = np.asarray(a, dtype=float).ravel()
    right = np.asarray(b, dtype=float).ravel()
    if left.shape != right.shape:
        raise ValueError("objective vectors must have the same length")
    return bool(np.all(left <= right) and np.any(left < right))


@contracted
def pareto_frontier(objectives: ArrayLike) -> List[int]:
    """Indices of the nondominated rows, ascending.

    A row is on the frontier iff no other row strictly dominates it.
    Duplicate rows of a nondominated point are all kept (none dominates
    its copy), so the frontier of a multiset is well-defined.
    """
    matrix = _as_objective_matrix(objectives)
    n = matrix.shape[0]
    frontier = []
    for i in range(n):
        # Vectorized: does any row dominate row i?
        leq = np.all(matrix <= matrix[i], axis=1)
        lt = np.any(matrix < matrix[i], axis=1)
        if not np.any(leq & lt):
            frontier.append(i)
    return frontier


@contracted
def nondominated_sort(objectives: ArrayLike) -> NDArray[np.int64]:
    """Front index per row: 0 for the frontier, 1 for the frontier of
    the rest, and so on (lower is fitter)."""
    matrix = _as_objective_matrix(objectives)
    n = matrix.shape[0]
    ranks = np.full(n, -1, dtype=np.int64)
    remaining = np.arange(n)
    front = 0
    while remaining.size:
        subset = matrix[remaining]
        local = pareto_frontier(subset)
        ranks[remaining[local]] = front
        keep = np.ones(remaining.size, dtype=bool)
        keep[local] = False
        remaining = remaining[keep]
        front += 1
    return ranks


@contracted
def crowding_distance(objectives: ArrayLike) -> NDArray[np.float64]:
    """NSGA-II crowding distance within one front (bigger = lonelier).

    Boundary points of every objective get ``inf``; interior points sum
    the normalized gaps to their sorted neighbors.  Computed per front
    by the caller — passing a whole population mixes fronts and is
    meaningless.
    """
    matrix = _as_objective_matrix(objectives)
    n, m = matrix.shape
    distance = np.zeros(n, dtype=np.float64)
    if n <= 2:
        distance[:] = np.inf
        return distance
    for j in range(m):
        order = np.argsort(matrix[:, j], kind="stable")
        column = matrix[order, j]
        span = column[-1] - column[0]
        distance[order[0]] = np.inf
        distance[order[-1]] = np.inf
        if span <= 0.0:
            continue
        gaps = (column[2:] - column[:-2]) / span
        distance[order[1:-1]] += gaps
    return distance


def rank_and_crowd(
    objectives: ArrayLike,
) -> "tuple[NDArray[np.int64], NDArray[np.float64]]":
    """(front rank, within-front crowding distance) for every row."""
    matrix = _as_objective_matrix(objectives)
    ranks = nondominated_sort(matrix)
    crowding = np.zeros(matrix.shape[0], dtype=np.float64)
    for front in np.unique(ranks):
        members = np.flatnonzero(ranks == front)
        crowding[members] = crowding_distance(matrix[members])
    return ranks, crowding
