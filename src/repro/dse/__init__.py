"""chaos-dse: design-space exploration campaigns over the modeling stack.

Declarative typed design spaces, fractional-factorial screening, seeded
genetic search with Pareto/MCDM ranking, and self-contained HTML
frontier reports — every candidate evaluation a cacheable, crash-
resumable task of the experiment engine.  See ``docs/dse.md``.
"""

from repro.dse.factorial import (
    FactorEffect,
    main_effects,
    rank_factors,
    screening_candidates,
    two_level_design,
)
from repro.dse.ga import (
    Evaluation,
    GAConfig,
    GenerationRecord,
    SearchResult,
    run_search,
)
from repro.dse.mcdm import (
    DEFAULT_WEIGHTS,
    mcdm_ranking,
    mcdm_scores,
    minmax_normalize,
    normalize_weights,
)
from repro.dse.objectives import (
    OBJECTIVE_NAMES,
    CampaignSubstrate,
    build_substrate,
    candidate_feature_set,
    candidate_task,
    chaos_space,
    evaluate_candidate,
    space_constraint,
)
from repro.dse.pareto import (
    crowding_distance,
    dominates,
    nondominated_sort,
    pareto_frontier,
    rank_and_crowd,
)
from repro.dse.report import render_report, save_report
from repro.dse.runner import (
    CampaignConfig,
    CampaignEvaluator,
    CampaignResult,
    ScreenResult,
    git_commit,
    load_campaign,
    rank_candidates,
    save_campaign,
    screen_campaign,
    search_campaign,
)
from repro.dse.space import (
    Categorical,
    DesignSpace,
    FloatRange,
    IntRange,
    SpaceError,
)

__all__ = [
    "DEFAULT_WEIGHTS",
    "OBJECTIVE_NAMES",
    "CampaignConfig",
    "CampaignEvaluator",
    "CampaignResult",
    "CampaignSubstrate",
    "Categorical",
    "DesignSpace",
    "Evaluation",
    "FactorEffect",
    "FloatRange",
    "GAConfig",
    "GenerationRecord",
    "IntRange",
    "ScreenResult",
    "SearchResult",
    "SpaceError",
    "build_substrate",
    "candidate_feature_set",
    "candidate_task",
    "chaos_space",
    "crowding_distance",
    "dominates",
    "evaluate_candidate",
    "git_commit",
    "load_campaign",
    "main_effects",
    "mcdm_ranking",
    "mcdm_scores",
    "minmax_normalize",
    "nondominated_sort",
    "normalize_weights",
    "pareto_frontier",
    "rank_and_crowd",
    "rank_candidates",
    "rank_factors",
    "render_report",
    "run_search",
    "save_campaign",
    "save_report",
    "screen_campaign",
    "screening_candidates",
    "search_campaign",
    "space_constraint",
    "two_level_design",
]
