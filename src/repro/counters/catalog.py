"""Programmatic construction of the ~250-counter Perfmon catalog.

Windows Server 2008 R2 exposes roughly 10,000 counters; the paper pre-
selects ~250 related to hardware and OS activity (processor, memory,
physical disk, process, job object, file-system cache, network) and lets
Algorithm 1 reduce them to 10-20.  This module builds the equivalent
catalog for a simulated platform:

* canonical counters (the ones Table II ends up selecting) derive
  faithfully from latent activity;
* correlated aliases (|r| > 0.95 with a canonical counter) exercise the
  step 1 correlation pruning;
* definitional sums (``Packets/sec = Sent + Received``) exercise the
  step 2 co-dependence elimination;
* constants, drifts and pure-noise counters exercise the L1/stepwise
  steps, which must discard them.

Counter counts scale with the platform (per-core and per-disk instances),
landing between ~230 (2-core, 1 disk) and ~330 (8-core, 6 disks).
"""

from __future__ import annotations

import numpy as np

from repro.counters.definitions import (
    CounterCatalog,
    CounterCategory,
    CounterDefinition,
    DerivationContext,
)
from repro.platforms.specs import PlatformSpec

_PAGE = 4096.0
_MTU = 1500.0
_IO_CHUNK = 64 * 1024.0

_PROCESS_INSTANCES = (
    "_Total",
    "dryadvertex",
    "dryadmanager",
    "system",
    "svchost#1",
    "svchost#2",
    "svchost#3",
    "svchost#4",
    "services",
    "lsass",
    "wininit",
    "winlogon",
    "perfmon",
    "smss",
    "csrss",
    "taskhost",
    "wmiprvse",
    "explorer",
    "spoolsv",
    "dwm",
)
"""Process instances: the Dryad daemons plus Windows background services."""



def _variable_chunk(
    ctx: DerivationContext, nominal: float, sigma: float = 0.45
) -> np.ndarray:
    """Per-second IO transfer size: real workloads mix small and large IOs,
    so operations/sec is *not* proportional to bytes/sec.  This is what
    keeps definitional sums like Transfers = Reads + Writes from being
    trivially caught by correlation pruning (they are eliminated by the
    step 2 co-dependence rule instead)."""
    n = ctx.activity.n_seconds
    log_walk = np.cumsum(ctx.rng.normal(0.0, sigma / 6.0, n))
    log_walk -= log_walk.mean()
    return nominal * np.exp(np.clip(log_walk, -1.2, 1.2))


# ----------------------------------------------------------------------
# Category builders
# ----------------------------------------------------------------------

def _add_processor(catalog: CounterCatalog, spec: PlatformSpec) -> None:
    cat = CounterCategory.PROCESSOR

    def total_time(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.cpu_util * 100.0

    # Canonical: Table II's "Total Processor Time %".
    catalog.add(CounterDefinition(
        r"\Processor(_Total)\% Processor Time", cat, total_time,
        noise_sigma=0.015, additive_sigma=0.3,
    ))

    def total_interrupts(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.interrupts_per_sec

    catalog.add(CounterDefinition(
        r"\Processor(_Total)\Interrupts/sec", cat, total_interrupts,
        noise_sigma=0.04,
    ))

    def total_dpc(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.dpc_time_frac * 100.0

    catalog.add(CounterDefinition(
        r"\Processor(_Total)\% DPC Time", cat, total_dpc,
        noise_sigma=0.06, additive_sigma=0.05,
    ))

    def total_user(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.cpu_util * 100.0 * 0.82

    # Correlated alias of % Processor Time (r ~ 1): step 1 fodder.
    catalog.add(CounterDefinition(
        r"\Processor(_Total)\% User Time", cat, total_user,
        noise_sigma=0.02, additive_sigma=0.2,
    ))

    def total_privileged(ctx: DerivationContext) -> np.ndarray:
        return (
            ctx.activity.cpu_util * 18.0
            + ctx.activity.dpc_time_frac * 100.0
        )

    catalog.add(CounterDefinition(
        r"\Processor(_Total)\% Privileged Time", cat, total_privileged,
        noise_sigma=0.05, additive_sigma=0.1,
    ))

    def total_idle(ctx: DerivationContext) -> np.ndarray:
        return 100.0 - ctx.activity.cpu_util * 100.0

    # Anti-correlated alias (r ~ -1): step 1 must catch |r| > 0.95.
    catalog.add(CounterDefinition(
        r"\Processor(_Total)\% Idle Time", cat, total_idle,
        noise_sigma=0.01, additive_sigma=0.3,
    ))

    def total_interrupt_time(ctx: DerivationContext) -> np.ndarray:
        return np.clip(ctx.activity.interrupts_per_sec / 40000.0, 0, 1) * 100.0

    catalog.add(CounterDefinition(
        r"\Processor(_Total)\% Interrupt Time", cat, total_interrupt_time,
        noise_sigma=0.08, additive_sigma=0.05,
    ))

    for core in range(spec.n_cores):
        def core_time(ctx: DerivationContext, c=core) -> np.ndarray:
            return ctx.activity.core_util[c] * 100.0

        catalog.add(CounterDefinition(
            rf"\Processor({core})\% Processor Time", cat, core_time,
            noise_sigma=0.02, additive_sigma=0.4,
        ))

        def core_user(ctx: DerivationContext, c=core) -> np.ndarray:
            return ctx.activity.core_util[c] * 82.0

        catalog.add(CounterDefinition(
            rf"\Processor({core})\% User Time", cat, core_user,
            noise_sigma=0.03, additive_sigma=0.4,
        ))

        def core_interrupts(ctx: DerivationContext, c=core) -> np.ndarray:
            return ctx.activity.interrupts_per_sec / ctx.spec.n_cores

        catalog.add(CounterDefinition(
            rf"\Processor({core})\Interrupts/sec", cat, core_interrupts,
            noise_sigma=0.10,
        ))

        def core_dpc(ctx: DerivationContext, c=core) -> np.ndarray:
            return ctx.activity.dpc_time_frac * 100.0

        catalog.add(CounterDefinition(
            rf"\Processor({core})\% DPC Time", cat, core_dpc,
            noise_sigma=0.10, additive_sigma=0.05,
        ))

        def core_dpcs_queued(ctx: DerivationContext, c=core) -> np.ndarray:
            return (
                ctx.activity.dpc_time_frac * 5.0e4 / ctx.spec.n_cores
                + 20.0
            )

        catalog.add(CounterDefinition(
            rf"\Processor({core})\DPCs Queued/sec", cat, core_dpcs_queued,
            noise_sigma=0.12,
        ))


def _add_processor_performance(catalog: CounterCatalog, spec: PlatformSpec) -> None:
    cat = CounterCategory.PROCESSOR_PERFORMANCE

    # Canonical: Table II's "Processor_0 Processor Frequency" — one core's
    # frequency proxies the whole system (Section V-D).
    for core in range(spec.n_cores):
        def core_frequency(ctx: DerivationContext, c=core) -> np.ndarray:
            return ctx.activity.core_freq_ghz[c] * 1000.0

        catalog.add(CounterDefinition(
            rf"\Processor Performance({core})\Frequency MHz", cat,
            core_frequency, noise_sigma=0.0, additive_sigma=0.5,
        ))

    def percent_max_freq(ctx: DerivationContext) -> np.ndarray:
        return (
            ctx.activity.core_freq_ghz.mean(axis=0)
            / ctx.spec.max_freq_ghz * 100.0
        )

    catalog.add(CounterDefinition(
        r"\Processor Performance(_Total)\% of Maximum Frequency", cat,
        percent_max_freq, noise_sigma=0.0, additive_sigma=0.3,
    ))


def _add_memory(catalog: CounterCatalog, spec: PlatformSpec) -> None:
    cat = CounterCategory.MEMORY

    def page_faults(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.page_faults_per_sec

    catalog.add(CounterDefinition(
        r"\Memory\Page Faults/sec", cat, page_faults, noise_sigma=0.04,
    ))

    def cache_faults(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.cache_faults_per_sec

    catalog.add(CounterDefinition(
        r"\Memory\Cache Faults/sec", cat, cache_faults, noise_sigma=0.05,
    ))

    def pages(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.mem_pages_per_sec

    catalog.add(CounterDefinition(
        r"\Memory\Pages/sec", cat, pages, noise_sigma=0.05,
    ))

    def committed(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.committed_bytes

    catalog.add(CounterDefinition(
        r"\Memory\Committed Bytes", cat, committed, noise_sigma=0.01,
    ))

    def page_reads(ctx: DerivationContext) -> np.ndarray:
        # Hard-fault disk reads: couples memory pressure to storage.
        return (
            0.12 * ctx.activity.mem_pages_per_sec
            + 0.25 * ctx.activity.disk_read_bytes / _PAGE / 8.0
        )

    catalog.add(CounterDefinition(
        r"\Memory\Page Reads/sec", cat, page_reads, noise_sigma=0.08,
    ))

    def pool_nonpaged_allocs(ctx: DerivationContext) -> np.ndarray:
        packets = ctx.activity.net_total_bytes / _MTU
        iops = ctx.activity.disk_total_bytes / _IO_CHUNK
        return 4.0e4 + 2.0 * packets + 6.0 * iops

    catalog.add(CounterDefinition(
        r"\Memory\Pool Nonpaged Allocs", cat, pool_nonpaged_allocs,
        noise_sigma=0.03,
    ))

    # Correlated aliases and decoys below (registered after canonicals).
    def pages_input(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.mem_pages_per_sec * 0.55

    catalog.add(CounterDefinition(
        r"\Memory\Pages Input/sec", cat, pages_input, noise_sigma=0.03,
    ))

    def pages_output(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.mem_pages_per_sec * 0.45

    catalog.add(CounterDefinition(
        r"\Memory\Pages Output/sec", cat, pages_output, noise_sigma=0.03,
    ))

    def available_bytes(ctx: DerivationContext) -> np.ndarray:
        total = ctx.spec.memory_gb * 2.0**30
        return np.maximum(total - ctx.activity.committed_bytes, 0.0)

    catalog.add(CounterDefinition(
        r"\Memory\Available Bytes", cat, available_bytes, noise_sigma=0.01,
    ))

    def transition_faults(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.page_faults_per_sec * 0.35

    catalog.add(CounterDefinition(
        r"\Memory\Transition Faults/sec", cat, transition_faults,
        noise_sigma=0.04,
    ))

    def demand_zero_faults(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.page_faults_per_sec * 0.4

    catalog.add(CounterDefinition(
        r"\Memory\Demand Zero Faults/sec", cat, demand_zero_faults,
        noise_sigma=0.05,
    ))

    def pool_paged_allocs(ctx: DerivationContext) -> np.ndarray:
        return 6.0e4 * np.ones(ctx.activity.n_seconds)

    catalog.add(CounterDefinition(
        r"\Memory\Pool Paged Allocs", cat, pool_paged_allocs,
        noise_sigma=0.005, informative=False,
    ))

    def commit_limit(ctx: DerivationContext) -> np.ndarray:
        return np.full(
            ctx.activity.n_seconds, ctx.spec.memory_gb * 2.0**30 * 1.5
        )

    catalog.add(CounterDefinition(
        r"\Memory\Commit Limit", cat, commit_limit,
        noise_sigma=0.0, informative=False,
    ))

    def free_ptes(ctx: DerivationContext) -> np.ndarray:
        return 3.0e5 + ctx.rng.normal(0.0, 500.0, ctx.activity.n_seconds)

    catalog.add(CounterDefinition(
        r"\Memory\Free System Page Table Entries", cat, free_ptes,
        noise_sigma=0.002, informative=False,
    ))

    def pool_nonpaged_bytes(ctx: DerivationContext) -> np.ndarray:
        packets = ctx.activity.net_total_bytes / _MTU
        return 9.0e7 + 400.0 * packets

    catalog.add(CounterDefinition(
        r"\Memory\Pool Nonpaged Bytes", cat, pool_nonpaged_bytes,
        noise_sigma=0.02,
    ))

    def pool_paged_bytes(ctx: DerivationContext) -> np.ndarray:
        return np.full(ctx.activity.n_seconds, 1.6e8)

    catalog.add(CounterDefinition(
        r"\Memory\Pool Paged Bytes", cat, pool_paged_bytes,
        noise_sigma=0.01, informative=False,
    ))

    def cache_bytes(ctx: DerivationContext) -> np.ndarray:
        return 2.0e8 + ctx.activity.committed_bytes * 0.05

    catalog.add(CounterDefinition(
        r"\Memory\Cache Bytes", cat, cache_bytes, noise_sigma=0.02,
    ))

    def cache_bytes_peak(ctx: DerivationContext) -> np.ndarray:
        observed = (2.0e8 + ctx.activity.committed_bytes * 0.05) * np.exp(
            ctx.rng.normal(0.0, 0.005, ctx.activity.n_seconds)
        )
        return np.maximum.accumulate(observed)

    catalog.add(CounterDefinition(
        r"\Memory\Cache Bytes Peak", cat, cache_bytes_peak,
        noise_sigma=0.0,
    ))

    def write_copies(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.page_faults_per_sec * 0.02 + 2.0

    catalog.add(CounterDefinition(
        r"\Memory\Write Copies/sec", cat, write_copies, noise_sigma=0.2,
    ))

    def system_code_bytes(ctx: DerivationContext) -> np.ndarray:
        return np.full(ctx.activity.n_seconds, 3.2e6)

    catalog.add(CounterDefinition(
        r"\Memory\System Code Total Bytes", cat, system_code_bytes,
        noise_sigma=0.0, informative=False,
    ))

    def paging_usage(ctx: DerivationContext) -> np.ndarray:
        total = ctx.spec.memory_gb * 2.0**30 * 1.5
        return ctx.activity.committed_bytes / total * 100.0

    catalog.add(CounterDefinition(
        r"\Paging File(_Total)\% Usage", cat, paging_usage,
        noise_sigma=0.02,
    ))

    def paging_usage_peak(ctx: DerivationContext) -> np.ndarray:
        total = ctx.spec.memory_gb * 2.0**30 * 1.5
        observed = ctx.activity.committed_bytes / total * 100.0 * np.exp(
            ctx.rng.normal(0.0, 0.01, ctx.activity.n_seconds)
        )
        return np.maximum.accumulate(observed)

    catalog.add(CounterDefinition(
        r"\Paging File(_Total)\% Usage Peak", cat, paging_usage_peak,
        noise_sigma=0.0,
    ))


def _add_physical_disk(catalog: CounterCatalog, spec: PlatformSpec) -> None:
    cat = CounterCategory.PHYSICAL_DISK

    def total_disk_time(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.disk_busy_frac * 100.0

    # Canonical: Table II "Disk Total Disk Time %".
    catalog.add(CounterDefinition(
        r"\PhysicalDisk(_Total)\% Disk Time", cat, total_disk_time,
        noise_sigma=0.05, additive_sigma=0.2,
    ))

    def total_disk_bytes(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.disk_total_bytes

    # Canonical: Table II "Disk Total Disk Bytes/sec".
    catalog.add(CounterDefinition(
        r"\PhysicalDisk(_Total)\Disk Bytes/sec", cat, total_disk_bytes,
        noise_sigma=0.04,
    ))

    def total_read_bytes(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.disk_read_bytes

    catalog.add(CounterDefinition(
        r"\PhysicalDisk(_Total)\Disk Read Bytes/sec", cat, total_read_bytes,
        noise_sigma=0.04,
    ))

    def total_write_bytes(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.disk_write_bytes

    catalog.add(CounterDefinition(
        r"\PhysicalDisk(_Total)\Disk Write Bytes/sec", cat, total_write_bytes,
        noise_sigma=0.04,
    ))

    def total_reads(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.disk_read_bytes / _variable_chunk(ctx, _IO_CHUNK)

    catalog.add(CounterDefinition(
        r"\PhysicalDisk(_Total)\Disk Reads/sec", cat, total_reads,
        noise_sigma=0.05,
    ))

    def total_writes(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.disk_write_bytes / _variable_chunk(ctx, _IO_CHUNK)

    catalog.add(CounterDefinition(
        r"\PhysicalDisk(_Total)\Disk Writes/sec", cat, total_writes,
        noise_sigma=0.05,
    ))

    def total_transfers(ctx: DerivationContext) -> np.ndarray:
        # Never observed directly: registered as a definitional sum below.
        return ctx.activity.disk_total_bytes / _IO_CHUNK

    # Definitional sum: Transfers/sec = Reads/sec + Writes/sec (step 2).
    catalog.add(CounterDefinition(
        r"\PhysicalDisk(_Total)\Disk Transfers/sec", cat, total_transfers,
        noise_sigma=0.05,
        sum_of=(
            r"\PhysicalDisk(_Total)\Disk Reads/sec",
            r"\PhysicalDisk(_Total)\Disk Writes/sec",
        ),
    ))

    def queue_length(ctx: DerivationContext) -> np.ndarray:
        busy = ctx.activity.disk_busy_frac
        return busy / np.maximum(1.0 - 0.9 * busy, 0.1)

    catalog.add(CounterDefinition(
        r"\PhysicalDisk(_Total)\Avg. Disk Queue Length", cat, queue_length,
        noise_sigma=0.10,
    ))

    for disk in range(spec.n_disks):
        share = 1.0 / spec.n_disks

        def disk_time(ctx: DerivationContext) -> np.ndarray:
            return ctx.activity.disk_busy_frac * 100.0

        catalog.add(CounterDefinition(
            rf"\PhysicalDisk({disk})\% Disk Time", cat, disk_time,
            noise_sigma=0.12, additive_sigma=0.3,
        ))

        def disk_bytes(ctx: DerivationContext, s=share) -> np.ndarray:
            return ctx.activity.disk_total_bytes * s

        catalog.add(CounterDefinition(
            rf"\PhysicalDisk({disk})\Disk Bytes/sec", cat, disk_bytes,
            noise_sigma=0.15,
        ))

        def disk_queue(ctx: DerivationContext) -> np.ndarray:
            busy = ctx.activity.disk_busy_frac
            return busy / np.maximum(1.0 - 0.9 * busy, 0.1)

        catalog.add(CounterDefinition(
            rf"\PhysicalDisk({disk})\Avg. Disk Queue Length", cat, disk_queue,
            noise_sigma=0.2,
        ))

        def disk_read_bytes(ctx: DerivationContext, s=share) -> np.ndarray:
            return ctx.activity.disk_read_bytes * s

        catalog.add(CounterDefinition(
            rf"\PhysicalDisk({disk})\Disk Read Bytes/sec", cat,
            disk_read_bytes, noise_sigma=0.15,
        ))

        def disk_write_bytes(ctx: DerivationContext, s=share) -> np.ndarray:
            return ctx.activity.disk_write_bytes * s

        catalog.add(CounterDefinition(
            rf"\PhysicalDisk({disk})\Disk Write Bytes/sec", cat,
            disk_write_bytes, noise_sigma=0.15,
        ))

        def disk_latency(ctx: DerivationContext) -> np.ndarray:
            busy = ctx.activity.disk_busy_frac
            return 0.002 + 0.02 * busy**2

        catalog.add(CounterDefinition(
            rf"\PhysicalDisk({disk})\Avg. Disk sec/Transfer", cat,
            disk_latency, noise_sigma=0.2,
        ))


def _add_network(catalog: CounterCatalog, spec: PlatformSpec) -> None:
    cat = CounterCategory.NETWORK
    interface = "Ethernet"

    def datagrams(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.net_total_bytes / _MTU

    # Canonical: Table II "Datagram/sec".
    catalog.add(CounterDefinition(
        rf"\Network Interface({interface})\Datagrams/sec", cat, datagrams,
        noise_sigma=0.04,
    ))

    def bytes_sent(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.net_sent_bytes

    catalog.add(CounterDefinition(
        rf"\Network Interface({interface})\Bytes Sent/sec", cat, bytes_sent,
        noise_sigma=0.04,
    ))

    def bytes_received(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.net_recv_bytes

    catalog.add(CounterDefinition(
        rf"\Network Interface({interface})\Bytes Received/sec", cat,
        bytes_received, noise_sigma=0.04,
    ))

    def bytes_total(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.net_total_bytes

    # Definitional sum (step 2 fodder).
    catalog.add(CounterDefinition(
        rf"\Network Interface({interface})\Bytes Total/sec", cat, bytes_total,
        noise_sigma=0.04,
        sum_of=(
            rf"\Network Interface({interface})\Bytes Sent/sec",
            rf"\Network Interface({interface})\Bytes Received/sec",
        ),
    ))

    def packets_sent(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.net_sent_bytes / _variable_chunk(ctx, _MTU, 0.3)

    catalog.add(CounterDefinition(
        rf"\Network Interface({interface})\Packets Sent/sec", cat,
        packets_sent, noise_sigma=0.05,
    ))

    def packets_received(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.net_recv_bytes / _variable_chunk(ctx, _MTU, 0.3)

    catalog.add(CounterDefinition(
        rf"\Network Interface({interface})\Packets Received/sec", cat,
        packets_received, noise_sigma=0.05,
    ))

    def packets(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.net_total_bytes / _MTU

    catalog.add(CounterDefinition(
        rf"\Network Interface({interface})\Packets/sec", cat, packets,
        noise_sigma=0.05,
        sum_of=(
            rf"\Network Interface({interface})\Packets Sent/sec",
            rf"\Network Interface({interface})\Packets Received/sec",
        ),
    ))

    def bandwidth(ctx: DerivationContext) -> np.ndarray:
        return np.full(ctx.activity.n_seconds, ctx.spec.nic_max_bps * 8.0)

    catalog.add(CounterDefinition(
        rf"\Network Interface({interface})\Current Bandwidth", cat, bandwidth,
        noise_sigma=0.0, informative=False,
    ))

    def output_queue(ctx: DerivationContext) -> np.ndarray:
        saturation = ctx.activity.net_sent_bytes / ctx.spec.nic_max_bps
        return np.maximum(saturation - 0.7, 0.0) * 20.0

    catalog.add(CounterDefinition(
        rf"\Network Interface({interface})\Output Queue Length", cat,
        output_queue, noise_sigma=0.3,
    ))

    # Loopback interface: pure OS chatter, uninformative.
    def loopback_bytes(ctx: DerivationContext) -> np.ndarray:
        return 1.0e4 * np.ones(ctx.activity.n_seconds)

    catalog.add(CounterDefinition(
        r"\Network Interface(Loopback)\Bytes Total/sec", cat, loopback_bytes,
        noise_sigma=0.5, informative=False,
    ))

    def loopback_packets(ctx: DerivationContext) -> np.ndarray:
        return 30.0 * np.ones(ctx.activity.n_seconds)

    catalog.add(CounterDefinition(
        r"\Network Interface(Loopback)\Packets/sec", cat, loopback_packets,
        noise_sigma=0.5, informative=False,
    ))

    def tcp_segments_sent(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.net_sent_bytes / _variable_chunk(ctx, _MTU, 0.3) * 0.92

    catalog.add(CounterDefinition(
        r"\TCPv4\Segments Sent/sec", cat, tcp_segments_sent,
        noise_sigma=0.06,
    ))

    def tcp_segments_received(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.net_recv_bytes / _variable_chunk(ctx, _MTU, 0.3) * 0.92

    catalog.add(CounterDefinition(
        r"\TCPv4\Segments Received/sec", cat, tcp_segments_received,
        noise_sigma=0.06,
    ))

    def tcp_segments(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.net_total_bytes / _MTU * 0.92

    catalog.add(CounterDefinition(
        r"\TCPv4\Segments/sec", cat, tcp_segments, noise_sigma=0.06,
        sum_of=(
            r"\TCPv4\Segments Sent/sec",
            r"\TCPv4\Segments Received/sec",
        ),
    ))

    def tcp_connections(ctx: DerivationContext) -> np.ndarray:
        active = (ctx.activity.net_total_bytes > 1.0e5).astype(float)
        return 12.0 + 40.0 * active

    catalog.add(CounterDefinition(
        r"\TCPv4\Connections Established", cat, tcp_connections,
        noise_sigma=0.05,
    ))


def _add_process(catalog: CounterCatalog, spec: PlatformSpec) -> None:
    cat = CounterCategory.PROCESS

    def total_page_faults(ctx: DerivationContext) -> np.ndarray:
        # Mostly the Memory counter, but misses kernel-attributed faults —
        # imperfectly correlated, so both can survive step 1 (as both do in
        # Table II on the Xeons).
        extra = 250.0 * ctx.activity.cpu_util
        return ctx.activity.page_faults_per_sec * 0.82 + extra

    catalog.add(CounterDefinition(
        r"\Process(_Total)\Page Faults/sec", cat, total_page_faults,
        noise_sigma=0.10,
    ))

    def total_io_data(ctx: DerivationContext) -> np.ndarray:
        return (
            0.75 * ctx.activity.disk_total_bytes
            + 0.35 * ctx.activity.net_total_bytes
        )

    # Canonical: Table II "Total IO Data Bytes/sec" (Athlon).
    catalog.add(CounterDefinition(
        r"\Process(_Total)\IO Data Bytes/sec", cat, total_io_data,
        noise_sigma=0.08,
    ))

    def total_processor(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.cpu_util * 100.0 * ctx.spec.n_cores

    catalog.add(CounterDefinition(
        r"\Process(_Total)\% Processor Time", cat, total_processor,
        noise_sigma=0.02, additive_sigma=0.5,
    ))

    def total_working_set(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.committed_bytes * 0.62

    catalog.add(CounterDefinition(
        r"\Process(_Total)\Working Set", cat, total_working_set,
        noise_sigma=0.02,
    ))

    def total_threads(ctx: DerivationContext) -> np.ndarray:
        return 900.0 + 60.0 * ctx.activity.cpu_util

    catalog.add(CounterDefinition(
        r"\Process(_Total)\Thread Count", cat, total_threads,
        noise_sigma=0.01,
    ))

    def total_handles(ctx: DerivationContext) -> np.ndarray:
        return 2.4e4 * np.ones(ctx.activity.n_seconds)

    catalog.add(CounterDefinition(
        r"\Process(_Total)\Handle Count", cat, total_handles,
        noise_sigma=0.01, informative=False,
    ))

    # Per-process instances: the Dryad vertex does the real work; service
    # processes contribute background noise (and pad the catalog the way a
    # real Perfmon capture does).
    rng_share = np.random.default_rng(1234)  # fixed per-catalog shares
    for instance in _PROCESS_INSTANCES[1:]:
        is_worker = instance.startswith("dryad")
        cpu_share = 0.85 if instance == "dryadvertex" else float(
            rng_share.uniform(0.001, 0.02)
        )

        def proc_cpu(ctx: DerivationContext, s=cpu_share, worker=is_worker):
            base = ctx.activity.cpu_util * 100.0 * ctx.spec.n_cores * s
            if not worker:
                jitter = ctx.rng.gamma(1.5, 0.2, ctx.activity.n_seconds)
                return base * 0.1 + jitter
            return base

        catalog.add(CounterDefinition(
            rf"\Process({instance})\% Processor Time", cat, proc_cpu,
            noise_sigma=0.10, informative=is_worker,
        ))

        def proc_io(ctx: DerivationContext, worker=is_worker) -> np.ndarray:
            if worker:
                return 0.7 * (
                    ctx.activity.disk_total_bytes
                    + 0.4 * ctx.activity.net_total_bytes
                )
            return 2.0e3 * np.ones(ctx.activity.n_seconds)

        catalog.add(CounterDefinition(
            rf"\Process({instance})\IO Data Bytes/sec", cat, proc_io,
            noise_sigma=0.15, informative=is_worker,
        ))

        def proc_ws(ctx: DerivationContext, worker=is_worker) -> np.ndarray:
            if worker:
                return ctx.activity.committed_bytes * 0.45
            return 3.0e7 * np.ones(ctx.activity.n_seconds)

        catalog.add(CounterDefinition(
            rf"\Process({instance})\Working Set", cat, proc_ws,
            noise_sigma=0.03, informative=is_worker,
        ))

        def proc_faults(ctx: DerivationContext, worker=is_worker) -> np.ndarray:
            if worker:
                return ctx.activity.page_faults_per_sec * 0.7
            return 20.0 * np.ones(ctx.activity.n_seconds)

        catalog.add(CounterDefinition(
            rf"\Process({instance})\Page Faults/sec", cat, proc_faults,
            noise_sigma=0.15, informative=is_worker,
        ))

        def proc_threads(ctx: DerivationContext) -> np.ndarray:
            return 40.0 * np.ones(ctx.activity.n_seconds)

        catalog.add(CounterDefinition(
            rf"\Process({instance})\Thread Count", cat, proc_threads,
            noise_sigma=0.05, informative=False,
        ))

        def proc_handles(ctx: DerivationContext) -> np.ndarray:
            return 800.0 * np.ones(ctx.activity.n_seconds)

        catalog.add(CounterDefinition(
            rf"\Process({instance})\Handle Count", cat, proc_handles,
            noise_sigma=0.05, informative=False,
        ))


def _add_job_object(catalog: CounterCatalog, spec: PlatformSpec) -> None:
    cat = CounterCategory.JOB_OBJECT
    job = "DryadJob"

    def page_file_peak(ctx: DerivationContext) -> np.ndarray:
        # Running maximum: ratchets up as the job's memory footprint grows.
        # Sampling noise applies to the footprint *before* the ratchet —
        # the observed counter itself is exactly monotone, as on Windows.
        footprint = ctx.activity.committed_bytes * 0.55 * np.exp(
            ctx.rng.normal(0.0, 0.01, ctx.activity.n_seconds)
        )
        return np.maximum.accumulate(footprint)

    # Canonical: Table II "Total Page File Bytes Peak" (all platforms).
    catalog.add(CounterDefinition(
        rf"\Job Object Details({job}/_Total)\Page File Bytes Peak", cat,
        page_file_peak, noise_sigma=0.0,
    ))

    def page_file_bytes(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.committed_bytes * 0.55

    catalog.add(CounterDefinition(
        rf"\Job Object Details({job}/_Total)\Page File Bytes", cat,
        page_file_bytes, noise_sigma=0.02,
    ))

    def job_working_set(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.committed_bytes * 0.5

    catalog.add(CounterDefinition(
        rf"\Job Object Details({job}/_Total)\Working Set", cat,
        job_working_set, noise_sigma=0.02,
    ))

    def job_ws_peak(ctx: DerivationContext) -> np.ndarray:
        footprint = ctx.activity.committed_bytes * 0.5 * np.exp(
            ctx.rng.normal(0.0, 0.01, ctx.activity.n_seconds)
        )
        return np.maximum.accumulate(footprint)

    catalog.add(CounterDefinition(
        rf"\Job Object Details({job}/_Total)\Working Set Peak", cat,
        job_ws_peak, noise_sigma=0.0,
    ))

    def job_cpu(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.cpu_util * 100.0 * ctx.spec.n_cores * 0.8

    catalog.add(CounterDefinition(
        rf"\Job Object Details({job}/_Total)\% Processor Time", cat,
        job_cpu, noise_sigma=0.05,
    ))

    def job_processes(ctx: DerivationContext) -> np.ndarray:
        return 4.0 + (ctx.activity.cpu_util > 0.1) * 4.0

    catalog.add(CounterDefinition(
        rf"\Job Object Details({job}/_Total)\Process Count", cat,
        job_processes, noise_sigma=0.0,
    ))


def _add_filesystem_cache(catalog: CounterCatalog, spec: PlatformSpec) -> None:
    cat = CounterCategory.FILESYSTEM_CACHE

    def data_map_pins(ctx: DerivationContext) -> np.ndarray:
        iops = ctx.activity.disk_total_bytes / _IO_CHUNK
        return 0.4 * iops + 3.0 * ctx.activity.cpu_util

    catalog.add(CounterDefinition(
        r"\Cache\Data Map Pins/sec", cat, data_map_pins, noise_sigma=0.10,
    ))

    def pin_reads(ctx: DerivationContext) -> np.ndarray:
        return 0.3 * ctx.activity.disk_read_bytes / _PAGE / 4.0

    catalog.add(CounterDefinition(
        r"\Cache\Pin Reads/sec", cat, pin_reads, noise_sigma=0.10,
    ))

    def pin_read_hits(ctx: DerivationContext) -> np.ndarray:
        return 98.0 - 25.0 * ctx.activity.disk_busy_frac

    catalog.add(CounterDefinition(
        r"\Cache\Pin Read Hits %", cat, pin_read_hits,
        noise_sigma=0.01, additive_sigma=0.5,
    ))

    def copy_reads(ctx: DerivationContext) -> np.ndarray:
        return (
            2.2 * ctx.activity.cache_faults_per_sec
            + 600.0 * ctx.activity.cpu_util
        )

    catalog.add(CounterDefinition(
        r"\Cache\Copy Reads/sec", cat, copy_reads, noise_sigma=0.08,
    ))

    def fast_reads_not_possible(ctx: DerivationContext) -> np.ndarray:
        return 0.08 * ctx.activity.disk_write_bytes / _PAGE

    catalog.add(CounterDefinition(
        r"\Cache\Fast Reads Not Possible/sec", cat, fast_reads_not_possible,
        noise_sigma=0.15,
    ))

    def lazy_write_flushes(ctx: DerivationContext) -> np.ndarray:
        return 0.25 * ctx.activity.disk_write_bytes / _IO_CHUNK

    catalog.add(CounterDefinition(
        r"\Cache\Lazy Write Flushes/sec", cat, lazy_write_flushes,
        noise_sigma=0.12,
    ))

    def lazy_write_pages(ctx: DerivationContext) -> np.ndarray:
        return 0.25 * ctx.activity.disk_write_bytes / _PAGE

    catalog.add(CounterDefinition(
        r"\Cache\Lazy Write Pages/sec", cat, lazy_write_pages,
        noise_sigma=0.12,
    ))

    def copy_read_hits(ctx: DerivationContext) -> np.ndarray:
        return 92.0 - 18.0 * ctx.activity.disk_busy_frac

    catalog.add(CounterDefinition(
        r"\Cache\Copy Read Hits %", cat, copy_read_hits,
        noise_sigma=0.01, additive_sigma=0.6,
    ))

    def fast_reads(ctx: DerivationContext) -> np.ndarray:
        return 900.0 * ctx.activity.cpu_util + 0.5 * ctx.activity.cache_faults_per_sec

    catalog.add(CounterDefinition(
        r"\Cache\Fast Reads/sec", cat, fast_reads, noise_sigma=0.10,
    ))

    def mdl_reads(ctx: DerivationContext) -> np.ndarray:
        return 0.1 * ctx.activity.net_sent_bytes / _PAGE

    catalog.add(CounterDefinition(
        r"\Cache\MDL Reads/sec", cat, mdl_reads, noise_sigma=0.15,
    ))

    def read_aheads(ctx: DerivationContext) -> np.ndarray:
        return 0.15 * ctx.activity.disk_read_bytes / _PAGE

    catalog.add(CounterDefinition(
        r"\Cache\Read Aheads/sec", cat, read_aheads, noise_sigma=0.12,
    ))

    def data_flushes(ctx: DerivationContext) -> np.ndarray:
        return 0.2 * ctx.activity.disk_write_bytes / _IO_CHUNK + 5.0

    catalog.add(CounterDefinition(
        r"\Cache\Data Flushes/sec", cat, data_flushes, noise_sigma=0.12,
    ))


def _add_system(catalog: CounterCatalog, spec: PlatformSpec) -> None:
    cat = CounterCategory.SYSTEM

    def context_switches(ctx: DerivationContext) -> np.ndarray:
        packets = ctx.activity.net_total_bytes / _MTU
        return (
            1500.0
            + 9000.0 * ctx.activity.cpu_util * ctx.spec.n_cores
            + 0.4 * packets
        )

    catalog.add(CounterDefinition(
        r"\System\Context Switches/sec", cat, context_switches,
        noise_sigma=0.06,
    ))

    def system_calls(ctx: DerivationContext) -> np.ndarray:
        return 4000.0 + 30000.0 * ctx.activity.cpu_util * ctx.spec.n_cores

    catalog.add(CounterDefinition(
        r"\System\System Calls/sec", cat, system_calls, noise_sigma=0.06,
    ))

    def file_reads(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.disk_read_bytes / _IO_CHUNK + 20.0

    catalog.add(CounterDefinition(
        r"\System\File Read Operations/sec", cat, file_reads,
        noise_sigma=0.08,
    ))

    def file_writes(ctx: DerivationContext) -> np.ndarray:
        return ctx.activity.disk_write_bytes / _IO_CHUNK + 10.0

    catalog.add(CounterDefinition(
        r"\System\File Write Operations/sec", cat, file_writes,
        noise_sigma=0.08,
    ))

    def processes(ctx: DerivationContext) -> np.ndarray:
        return np.full(ctx.activity.n_seconds, 60.0)

    catalog.add(CounterDefinition(
        r"\System\Processes", cat, processes, noise_sigma=0.01,
        informative=False,
    ))

    def threads(ctx: DerivationContext) -> np.ndarray:
        return 950.0 + 50.0 * ctx.activity.cpu_util

    catalog.add(CounterDefinition(
        r"\System\Threads", cat, threads, noise_sigma=0.01,
    ))

    def registry_quota(ctx: DerivationContext) -> np.ndarray:
        return np.full(ctx.activity.n_seconds, 0.12)

    catalog.add(CounterDefinition(
        r"\System\% Registry Quota In Use", cat, registry_quota,
        noise_sigma=0.005, informative=False,
    ))

    def processor_queue(ctx: DerivationContext) -> np.ndarray:
        pressure = np.maximum(ctx.activity.cpu_util - 0.85, 0.0)
        return pressure * 40.0

    catalog.add(CounterDefinition(
        r"\System\Processor Queue Length", cat, processor_queue,
        noise_sigma=0.3,
    ))

    def file_control_ops(ctx: DerivationContext) -> np.ndarray:
        iops = ctx.activity.disk_total_bytes / _IO_CHUNK
        return 120.0 + 0.3 * iops

    catalog.add(CounterDefinition(
        r"\System\File Control Operations/sec", cat, file_control_ops,
        noise_sigma=0.10,
    ))


def build_catalog(spec: PlatformSpec) -> CounterCatalog:
    """The full Perfmon-style counter catalog for one platform."""
    catalog = CounterCatalog(spec=spec)
    _add_processor(catalog, spec)
    _add_processor_performance(catalog, spec)
    _add_memory(catalog, spec)
    _add_physical_disk(catalog, spec)
    _add_network(catalog, spec)
    _add_process(catalog, spec)
    _add_job_object(catalog, spec)
    _add_filesystem_cache(catalog, spec)
    _add_system(catalog, spec)
    return catalog
