"""Simulated OS performance counters (the ~250-counter Perfmon catalog)."""

from repro.counters.catalog import build_catalog
from repro.counters.definitions import (
    CounterCatalog,
    CounterCategory,
    CounterDefinition,
    DerivationContext,
)
from repro.counters.derivation import derive_counter, derive_counters

__all__ = [
    "CounterCatalog",
    "CounterCategory",
    "CounterDefinition",
    "DerivationContext",
    "build_catalog",
    "derive_counter",
    "derive_counters",
]
