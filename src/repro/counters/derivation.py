"""Derive observed counter matrices from latent activity.

``derive_counters`` is the ETW/Perfmon sampling path: it walks a platform's
counter catalog, evaluates each counter's noiseless value from the latent
``ActivityTrace``, and applies that counter's observation noise from a
stream keyed on (machine, run, counter index) — so the same machine-run
always logs the same counter values, independent of evaluation order.
"""

from __future__ import annotations

import numpy as np

from repro.activity import ActivityTrace
from repro.counters.definitions import (
    CounterCatalog,
    CounterDefinition,
    DerivationContext,
)


def derive_counter(
    definition: CounterDefinition,
    activity: ActivityTrace,
    catalog: CounterCatalog,
    rng: np.random.Generator,
    run_index: int = 0,
) -> np.ndarray:
    """Observed values of a single counter for one machine-run."""
    context = DerivationContext(
        activity=activity, spec=catalog.spec, rng=rng, run_index=run_index
    )
    values = np.asarray(definition.derive(context), dtype=float)
    if values.shape != (activity.n_seconds,):
        raise ValueError(
            f"derivation of {definition.name!r} returned shape "
            f"{values.shape}, expected ({activity.n_seconds},)"
        )
    if definition.noise_sigma > 0:
        values = values * np.exp(
            rng.normal(0.0, definition.noise_sigma, size=values.shape)
        )
    if definition.additive_sigma > 0:
        values = values + rng.normal(
            0.0, definition.additive_sigma, size=values.shape
        )
    return values


def derive_counters(
    catalog: CounterCatalog,
    activity: ActivityTrace,
    machine_seed: int,
    run_index: int,
) -> np.ndarray:
    """(T, n_counters) observed counter matrix for one machine-run.

    Counters declared as definitional sums (``sum_of``) are computed as the
    exact sum of their components' *observed* values — the co-dependence
    that step 2 of Algorithm 1 eliminates is exact in the data, as it is in
    Windows.
    """
    n_seconds = activity.n_seconds
    matrix = np.empty((n_seconds, len(catalog)), dtype=float)
    for index, definition in enumerate(catalog.definitions):
        rng = np.random.default_rng([machine_seed, run_index, index])
        if definition.sum_of is not None:
            left = catalog.index_of(definition.sum_of[0])
            right = catalog.index_of(definition.sum_of[1])
            if left >= index or right >= index:
                raise ValueError(
                    f"{definition.name!r}: sum components must be "
                    "registered before the sum"
                )
            matrix[:, index] = matrix[:, left] + matrix[:, right]
        else:
            matrix[:, index] = derive_counter(
                definition, activity, catalog, rng, run_index=run_index
            )
    return matrix
