"""Counter taxonomy: categories, definitions, derivation context.

A ``CounterDefinition`` describes one OS performance counter: its
Windows-style name (``\\Object(Instance)\\Counter``), its category (the
paper's Table II groups counters by object), how its noiseless value
derives from latent machine activity, and its observation noise.

Definitions may also declare an exact *co-dependence* (``sum_of``): the
counter is by definition the sum of two other counters, which is what
step 2 of Algorithm 1 eliminates using the counter documentation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.activity import ActivityTrace
from repro.platforms.specs import PlatformSpec


class CounterCategory(enum.Enum):
    """Perfmon object families used in Table II."""

    NETWORK = "Network"
    MEMORY = "Memory"
    PHYSICAL_DISK = "Physical Disk"
    PROCESS = "Process"
    PROCESSOR = "Processor"
    FILESYSTEM_CACHE = "File System Cache"
    JOB_OBJECT = "Job Object Details"
    PROCESSOR_PERFORMANCE = "Processor Performance"
    SYSTEM = "System"


@dataclass
class DerivationContext:
    """Everything a counter derivation can see for one machine-run."""

    activity: ActivityTrace
    spec: PlatformSpec
    rng: np.random.Generator
    """Counter-specific stream: deterministic per (machine, run, counter)."""

    run_index: int = 0
    """Which execution this is: counters that persist across job runs
    (e.g. System Up Time) depend on it."""


Derivation = Callable[[DerivationContext], np.ndarray]


@dataclass(frozen=True)
class CounterDefinition:
    """One OS performance counter."""

    name: str
    category: CounterCategory
    derive: Derivation
    noise_sigma: float = 0.02
    """Relative (multiplicative lognormal) observation noise."""

    additive_sigma: float = 0.0
    """Absolute Gaussian observation noise, in counter units."""

    sum_of: tuple[str, str] | None = None
    """If set, this counter is definitionally the sum of two others."""

    informative: bool = True
    """Ground truth: does this counter reflect real machine activity?
    (Used by tests and analysis, never by the selection algorithm.)"""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("counter name must be non-empty")
        if self.noise_sigma < 0 or self.additive_sigma < 0:
            raise ValueError("noise levels must be nonnegative")


@dataclass
class CounterCatalog:
    """All counters of one platform, in a stable canonical order.

    Canonical Table II counters are registered *before* their correlated
    aliases within each category, so the step 1 correlation pruning (which
    keeps the earliest member of each correlated group) retains the
    canonical names.
    """

    spec: PlatformSpec
    definitions: list[CounterDefinition] = field(default_factory=list)
    _index: dict[str, int] = field(default_factory=dict)

    def add(self, definition: CounterDefinition) -> None:
        if definition.name in self._index:
            raise ValueError(f"duplicate counter name {definition.name!r}")
        if definition.sum_of is not None:
            for component in definition.sum_of:
                if component not in self._index:
                    raise ValueError(
                        f"{definition.name!r} declared as sum of unknown "
                        f"counter {component!r}; register components first"
                    )
        self._index[definition.name] = len(self.definitions)
        self.definitions.append(definition)

    def __len__(self) -> int:
        return len(self.definitions)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    @property
    def names(self) -> list[str]:
        return [d.name for d in self.definitions]

    def index_of(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(f"unknown counter {name!r}")

    def __reduce__(self):
        # Derivations are closures, which cannot cross a process
        # boundary; catalogs are deterministic functions of their spec,
        # so pickling ships the spec and rebuilds on the other side
        # (process-pool workers of the experiment engine rely on this).
        from repro.counters.catalog import build_catalog

        return (build_catalog, (self.spec,))

    def definition(self, name: str) -> CounterDefinition:
        return self.definitions[self.index_of(name)]

    def by_category(self, category: CounterCategory) -> list[CounterDefinition]:
        return [d for d in self.definitions if d.category is category]

    @property
    def codependent_triples(self) -> list[tuple[str, str, str]]:
        """(sum, addend, addend) triples declared in the definitions."""
        return [
            (d.name, d.sum_of[0], d.sum_of[1])
            for d in self.definitions
            if d.sum_of is not None
        ]
