"""Pooling cluster runs into regression datasets.

The paper pools counters and power measurements from all machines in a
cluster when fitting the cluster-wide machine model (Section IV), and
evaluates with 5-fold cross-validation where the training set comes from
*separate runs* than the test set and is about ten times smaller
(Section V).  This module provides both operations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.runner import ClusterRun


@dataclass
class Dataset:
    """A pooled (design matrix, power) pair ready for model fitting."""

    design: np.ndarray
    power: np.ndarray
    feature_names: list[str]

    def __post_init__(self):
        self.design = np.asarray(self.design, dtype=float)
        self.power = np.asarray(self.power, dtype=float).ravel()
        if self.design.ndim != 2:
            raise ValueError("design must be 2-D")
        if self.design.shape[0] != self.power.shape[0]:
            raise ValueError("design and power row counts differ")
        if self.design.shape[1] != len(self.feature_names):
            raise ValueError("feature_names length must match design columns")

    @property
    def n_samples(self) -> int:
        return self.design.shape[0]

    @property
    def n_features(self) -> int:
        return self.design.shape[1]

    def subsample(self, fraction: float, rng: np.random.Generator) -> "Dataset":
        """A random row subset (used to shrink training folds ~10x)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        n_keep = max(int(round(self.n_samples * fraction)), 1)
        rows = rng.choice(self.n_samples, size=n_keep, replace=False)
        rows.sort()
        return Dataset(
            design=self.design[rows],
            power=self.power[rows],
            feature_names=list(self.feature_names),
        )


def pool_runs(
    runs: list[ClusterRun],
    counter_names: list[str],
    machine_ids: list[str] | None = None,
) -> Dataset:
    """Stack machine-seconds from several runs into one dataset.

    Parameters
    ----------
    runs:
        Cluster runs to pool (typically all runs of a training fold).
    counter_names:
        Counters to extract, in feature order.
    machine_ids:
        Restrict pooling to these machines (e.g. one platform's machines
        in a heterogeneous cluster).  Defaults to every machine present.
    """
    if not runs:
        raise ValueError("need at least one run to pool")
    design_blocks = []
    power_blocks = []
    for run in runs:
        ids = machine_ids if machine_ids is not None else run.machine_ids
        for machine_id in ids:
            try:
                log = run.logs[machine_id]
            except KeyError:
                raise KeyError(
                    f"run {run.run_index} has no machine {machine_id!r}"
                )
            design_blocks.append(log.select(counter_names))
            power_blocks.append(log.power_w)
    return Dataset(
        design=np.vstack(design_blocks),
        power=np.concatenate(power_blocks),
        feature_names=list(counter_names),
    )


@dataclass(frozen=True)
class Fold:
    """One cross-validation fold: run indices for train and test."""

    train_runs: tuple[int, ...]
    test_runs: tuple[int, ...]


def runwise_folds(n_runs: int, n_folds: int | None = None) -> list[Fold]:
    """Leave-out-style folds over runs: train on one run, test on the rest.

    With the paper's 5 runs this yields 5 folds whose training data come
    from a different execution than the test data.
    """
    if n_runs < 2:
        raise ValueError("cross-validation needs at least two runs")
    n_folds = n_runs if n_folds is None else min(n_folds, n_runs)
    folds = []
    for fold_index in range(n_folds):
        train = (fold_index,)
        test = tuple(i for i in range(n_runs) if i != fold_index)
        folds.append(Fold(train_runs=train, test_runs=test))
    return folds
