"""Execute workload runs on a cluster and collect telemetry.

``execute_runs`` is the data-collection campaign of Section III: run each
workload several times on the instrumented cluster, logging every
machine's counters and metered power at 1 Hz.  Different runs get
different scheduler partitionings (and different noise), which is what
makes the paper's train-on-one-run / test-on-others protocol meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import Cluster
from repro.telemetry.perfmon import PerfmonLog
from repro.telemetry.sampler import sample_machine_run
from repro.workloads.base import Workload


@dataclass
class ClusterRun:
    """All machine logs from one execution of one workload."""

    cluster_name: str
    workload_name: str
    run_index: int
    logs: dict[str, PerfmonLog]

    def __post_init__(self):
        if not self.logs:
            raise ValueError("a run must contain at least one machine log")
        lengths = {log.n_seconds for log in self.logs.values()}
        if len(lengths) != 1:
            raise ValueError(
                f"machine logs disagree on run length: {sorted(lengths)}"
            )

    @property
    def n_seconds(self) -> int:
        return next(iter(self.logs.values())).n_seconds

    @property
    def machine_ids(self) -> list[str]:
        return list(self.logs)

    def cluster_power(self) -> np.ndarray:
        """(T,) total metered AC power across all machines."""
        return np.sum([log.power_w for log in self.logs.values()], axis=0)


def execute_runs(
    cluster: Cluster,
    workload: Workload,
    n_runs: int = 5,
    seed: int | None = None,
) -> list[ClusterRun]:
    """Run a workload ``n_runs`` times on a cluster, collecting telemetry."""
    if n_runs < 1:
        raise ValueError("need at least one run")
    base_seed = cluster.seed if seed is None else seed

    runs: list[ClusterRun] = []
    for run_index in range(n_runs):
        traces = workload.generate_run(
            cluster.machines, run_index=run_index, seed=base_seed
        )
        logs: dict[str, PerfmonLog] = {}
        for machine_index, machine in enumerate(cluster.machines):
            catalog = cluster.catalog_for(machine.spec.key)
            meter = cluster.meters[machine.machine_id]
            machine_seed = _machine_sampling_seed(base_seed, machine_index)
            logs[machine.machine_id] = sample_machine_run(
                machine=machine,
                catalog=catalog,
                activity=traces[machine.machine_id],
                meter=meter,
                machine_seed=machine_seed,
                run_index=run_index,
            )
        runs.append(
            ClusterRun(
                cluster_name=cluster.name,
                workload_name=workload.name,
                run_index=run_index,
                logs=logs,
            )
        )
    return runs


def _machine_sampling_seed(base_seed: int, machine_index: int) -> int:
    """Distinct, stable sampling seed per machine."""
    return base_seed * 1000 + machine_index
