"""Execute workload runs on a cluster and collect telemetry.

``execute_runs`` is the data-collection campaign of Section III: run each
workload several times on the instrumented cluster, logging every
machine's counters and metered power at 1 Hz.  Different runs get
different scheduler partitionings (and different noise), which is what
makes the paper's train-on-one-run / test-on-others protocol meaningful.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import Cluster
from repro.telemetry.perfmon import PerfmonLog
from repro.telemetry.sampler import sample_machine_run
from repro.workloads.base import Workload


@dataclass
class ClusterRun:
    """All machine logs from one execution of one workload."""

    cluster_name: str
    workload_name: str
    run_index: int
    logs: dict[str, PerfmonLog]

    def __post_init__(self):
        if not self.logs:
            raise ValueError("a run must contain at least one machine log")
        lengths = {log.n_seconds for log in self.logs.values()}
        if len(lengths) != 1:
            raise ValueError(
                f"machine logs disagree on run length: {sorted(lengths)}"
            )

    @property
    def n_seconds(self) -> int:
        return next(iter(self.logs.values())).n_seconds

    @property
    def machine_ids(self) -> list[str]:
        return list(self.logs)

    def cluster_power(self) -> np.ndarray:
        """(T,) total metered AC power across all machines."""
        return np.sum([log.power_w for log in self.logs.values()], axis=0)

    def content_digest(self) -> str:
        """SHA-256 over every log's counters and power (cache identity)."""
        digest = hashlib.sha256()
        digest.update(
            f"{self.cluster_name}/{self.workload_name}/"
            f"{self.run_index}".encode()
        )
        for machine_id in self.machine_ids:
            log = self.logs[machine_id]
            digest.update(machine_id.encode())
            digest.update("\x00".join(log.counter_names).encode())
            digest.update(np.ascontiguousarray(log.counters).tobytes())
            digest.update(np.ascontiguousarray(log.power_w).tobytes())
        return digest.hexdigest()


def runs_content_digest(runs: list[ClusterRun]) -> str:
    """One digest covering a whole measurement campaign, in run order."""
    digest = hashlib.sha256()
    for run in runs:
        digest.update(run.content_digest().encode())
    return digest.hexdigest()


def generate_run(
    cluster: Cluster,
    workload: Workload,
    run_index: int,
    base_seed: int,
) -> ClusterRun:
    """Generate one run's telemetry; self-contained and order-independent.

    Every machine's sampling seed derives from ``(base_seed, machine
    index)`` and the workload trace from ``(base_seed, run_index)``, so
    runs compute bit-identical logs whether generated serially or as
    parallel engine tasks.
    """
    traces = workload.generate_run(
        cluster.machines, run_index=run_index, seed=base_seed
    )
    logs: dict[str, PerfmonLog] = {}
    for machine_index, machine in enumerate(cluster.machines):
        catalog = cluster.catalog_for(machine.spec.key)
        meter = cluster.meters[machine.machine_id]
        machine_seed = _machine_sampling_seed(base_seed, machine_index)
        logs[machine.machine_id] = sample_machine_run(
            machine=machine,
            catalog=catalog,
            activity=traces[machine.machine_id],
            meter=meter,
            machine_seed=machine_seed,
            run_index=run_index,
        )
    return ClusterRun(
        cluster_name=cluster.name,
        workload_name=workload.name,
        run_index=run_index,
        logs=logs,
    )


def run_task(config: dict, payload, deps, seed) -> ClusterRun:
    """Engine task: generate one cluster run.

    Not cacheable (the result is an in-memory dataclass, and generation
    is cheap relative to model fitting); determinism comes from the
    explicit seeds in ``config``, not the engine-derived ``seed``.
    """
    del deps, seed
    cluster, workload = payload
    return generate_run(
        cluster, workload, config["run_index"], config["base_seed"]
    )


def execute_runs(
    cluster: Cluster,
    workload: Workload,
    n_runs: int = 5,
    seed: int | None = None,
    jobs: int | None = None,
) -> list[ClusterRun]:
    """Run a workload ``n_runs`` times on a cluster, collecting telemetry.

    With ``jobs > 1`` the runs are generated as parallel engine tasks
    (bit-identical to the serial order); ``jobs=None`` follows the
    process-wide engine options.
    """
    from repro.engine import TaskGraph, TaskSpec, resolve_jobs, run_graph

    if n_runs < 1:
        raise ValueError("need at least one run")
    base_seed = cluster.seed if seed is None else seed
    jobs = resolve_jobs(jobs)

    if jobs == 1 or n_runs == 1:
        return [
            generate_run(cluster, workload, run_index, base_seed)
            for run_index in range(n_runs)
        ]

    graph = TaskGraph([
        TaskSpec(
            key=f"{cluster.name}/{workload.name}/run{run_index}",
            fn="repro.cluster.runner:run_task",
            config={"run_index": run_index, "base_seed": base_seed},
            payload=(cluster, workload),
            cacheable=False,
        )
        for run_index in range(n_runs)
    ])
    results = run_graph(graph, jobs=jobs, root_seed=base_seed)
    return [
        results[f"{cluster.name}/{workload.name}/run{run_index}"]
        for run_index in range(n_runs)
    ]


def _machine_sampling_seed(base_seed: int, machine_index: int) -> int:
    """Distinct, stable sampling seed per machine."""
    return base_seed * 1000 + machine_index
