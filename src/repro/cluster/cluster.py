"""Cluster assembly: homogeneous and heterogeneous machine groups.

Each cluster owns its machines (with their individual manufacturing
variation), one WattsUp meter per machine, and one counter catalog per
platform present in the cluster.  The paper's six homogeneous clusters
have five machines each; the heterogeneous experiment combines five
Core 2 Duo and five Opteron machines (Section V-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.counters.catalog import build_catalog
from repro.counters.definitions import CounterCatalog
from repro.platforms.machine import SimulatedMachine
from repro.platforms.specs import PlatformSpec
from repro.powermeter.wattsup import WattsUpPro

DEFAULT_CLUSTER_SIZE = 5
DEFAULT_SEED = 2012  # IISWC 2012


@dataclass
class Cluster:
    """A group of instrumented machines."""

    name: str
    machines: list[SimulatedMachine]
    meters: dict[str, WattsUpPro]
    catalogs: dict[str, CounterCatalog] = field(repr=False)
    seed: int = DEFAULT_SEED

    def __post_init__(self):
        if not self.machines:
            raise ValueError("a cluster needs at least one machine")
        ids = [m.machine_id for m in self.machines]
        if len(set(ids)) != len(ids):
            raise ValueError("machine ids must be unique")
        for machine in self.machines:
            if machine.spec.key not in self.catalogs:
                raise ValueError(
                    f"no counter catalog for platform {machine.spec.key!r}"
                )
            if machine.machine_id not in self.meters:
                raise ValueError(
                    f"no power meter for machine {machine.machine_id!r}"
                )

    @property
    def n_machines(self) -> int:
        return len(self.machines)

    @property
    def platform_keys(self) -> tuple[str, ...]:
        """Distinct platforms present, in machine order."""
        seen: list[str] = []
        for machine in self.machines:
            if machine.spec.key not in seen:
                seen.append(machine.spec.key)
        return tuple(seen)

    @property
    def is_homogeneous(self) -> bool:
        return len(self.platform_keys) == 1

    def machines_of(self, platform_key: str) -> list[SimulatedMachine]:
        return [m for m in self.machines if m.spec.key == platform_key]

    def catalog_for(self, platform_key: str) -> CounterCatalog:
        try:
            return self.catalogs[platform_key]
        except KeyError:
            raise KeyError(f"no catalog for platform {platform_key!r}")

    @classmethod
    def homogeneous(
        cls,
        spec: PlatformSpec,
        n_machines: int = DEFAULT_CLUSTER_SIZE,
        seed: int = DEFAULT_SEED,
    ) -> "Cluster":
        """A paper-style cluster: ``n_machines`` identical-spec machines."""
        machines = [
            SimulatedMachine.build(spec, index, seed=seed)
            for index in range(n_machines)
        ]
        meters = {
            machine.machine_id: WattsUpPro.build(index, seed=seed)
            for index, machine in enumerate(machines)
        }
        return cls(
            name=f"{spec.key}-cluster",
            machines=machines,
            meters=meters,
            catalogs={spec.key: build_catalog(spec)},
            seed=seed,
        )

    @classmethod
    def heterogeneous(
        cls,
        groups: list[tuple[PlatformSpec, int]],
        seed: int = DEFAULT_SEED,
        name: str | None = None,
    ) -> "Cluster":
        """A mixed cluster from (platform, count) groups.

        Machine variation streams match the homogeneous clusters': machine
        ``i`` of each platform is the *same physical machine* here as in
        that platform's own cluster, so per-platform machine models carry
        over — the composability the paper demonstrates.
        """
        if not groups:
            raise ValueError("need at least one platform group")
        machines: list[SimulatedMachine] = []
        catalogs: dict[str, CounterCatalog] = {}
        for spec, count in groups:
            if count < 1:
                raise ValueError(f"{spec.key}: group count must be >= 1")
            machines.extend(
                SimulatedMachine.build(spec, index, seed=seed)
                for index in range(count)
            )
            if spec.key not in catalogs:
                catalogs[spec.key] = build_catalog(spec)
        meters = {
            machine.machine_id: WattsUpPro.build(index, seed=seed)
            for index, machine in enumerate(machines)
        }
        label = name or "+".join(f"{spec.key}x{count}" for spec, count in groups)
        return cls(
            name=label, machines=machines, meters=meters,
            catalogs=catalogs, seed=seed,
        )
