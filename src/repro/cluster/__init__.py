"""Cluster assembly, workload execution and dataset pooling."""

from repro.cluster.cluster import DEFAULT_CLUSTER_SIZE, DEFAULT_SEED, Cluster
from repro.cluster.dataset import Dataset, Fold, pool_runs, runwise_folds
from repro.cluster.runner import ClusterRun, execute_runs

__all__ = [
    "Cluster",
    "ClusterRun",
    "DEFAULT_CLUSTER_SIZE",
    "DEFAULT_SEED",
    "Dataset",
    "Fold",
    "execute_runs",
    "pool_runs",
    "runwise_folds",
]
