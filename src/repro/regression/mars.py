"""Multivariate Adaptive Regression Splines (Friedman, 1991), from scratch.

The paper's piecewise-linear power model (Eq. 2) is MARS restricted to
degree 1 (additive hinges), and its quadratic model (Eq. 3) is MARS with
degree-2 basis interactions.  This implementation follows the classic
two-stage algorithm:

* **Forward pass** — greedily grow a basis set.  Each step considers, for
  every existing (parent) basis, every feature the parent does not already
  use, and a grid of candidate knots; it adds the reflected hinge pair that
  most reduces the training RSS.  Candidate scoring is done incrementally:
  new columns are orthogonalized against the QR factorization of the current
  basis matrix, so each candidate costs O(n·k) instead of a full refit.
* **Backward pass** — prune bases one at a time, keeping the subset with the
  lowest Generalized Cross-Validation (GCV) score, which penalizes model
  size and guards against overfitting to a single run's scheduler layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analysis.arraysan import contracted
from repro.regression.hinge import (
    INTERCEPT_BASIS,
    BasisFunction,
    Hinge,
    evaluate_bases,
)
from repro.regression.kernels import matvec

_EPS = 1e-10


@dataclass(frozen=True)
class MARSModel:
    """A fitted MARS model: a basis expansion plus linear coefficients."""

    bases: tuple[BasisFunction, ...]
    coefficients: np.ndarray
    gcv: float
    training_rss: float
    n_samples: int
    max_degree: int

    @property
    def n_terms(self) -> int:
        """Number of basis functions including the intercept."""
        return len(self.bases)

    @property
    def knots(self) -> tuple[float, ...]:
        """All knot locations used by non-linear hinges."""
        return tuple(
            h.knot for b in self.bases for h in b.hinges if h.sign != 0
        )

    @property
    def features_used(self) -> frozenset[int]:
        used: set[int] = set()
        for basis in self.bases:
            used |= basis.features
        return frozenset(used)

    def predict(self, design: np.ndarray) -> np.ndarray:
        design = np.asarray(design, dtype=float)
        if design.ndim != 2:
            raise ValueError("design matrix must be 2-D")
        matrix = evaluate_bases(self.bases, design)
        # Batch-size-invariant kernel: serving scores the same rows in
        # arbitrary micro-batch groupings and must get identical watts.
        return matvec(matrix, self.coefficients)

    def describe(self, feature_names: Optional[Sequence[str]] = None) -> str:
        parts = []
        for coefficient, basis in zip(self.coefficients, self.bases):
            parts.append(f"{coefficient:+.4g}*{basis.describe(feature_names)}")
        return " ".join(parts)


def _knot_candidates(
    column: np.ndarray, parent_values: np.ndarray, n_candidates: int
) -> np.ndarray:
    """Quantile-spaced candidate knots over points where the parent is live."""
    active = column[parent_values != 0.0]
    if active.size < 4:
        return np.empty(0)
    quantiles = np.linspace(0.05, 0.95, n_candidates)
    knots = np.unique(np.quantile(active, quantiles))
    # A knot at an extreme makes one hinge identically zero; drop those.
    low, high = active.min(), active.max()
    return knots[(knots > low) & (knots < high)]


def _pair_rss_reductions(
    q_matrix: np.ndarray,
    residual: np.ndarray,
    plus_columns: np.ndarray,
    minus_columns: np.ndarray,
) -> np.ndarray:
    """RSS reduction from adding each (plus, minus) column pair.

    Columns are first orthogonalized against the current basis (via its
    orthonormal factor ``q_matrix``); the exact reduction for a pair is then
    b' G^-1 b where G is the pair's 2x2 Gram matrix and b its correlation
    with the residual.
    """
    def orthogonalize(columns: np.ndarray) -> np.ndarray:
        return columns - q_matrix @ (q_matrix.T @ columns)

    u_plus = orthogonalize(plus_columns)
    u_minus = orthogonalize(minus_columns)

    g11 = np.einsum("ij,ij->j", u_plus, u_plus)
    g22 = np.einsum("ij,ij->j", u_minus, u_minus)
    g12 = np.einsum("ij,ij->j", u_plus, u_minus)
    b1 = u_plus.T @ residual
    b2 = u_minus.T @ residual

    determinant = g11 * g22 - g12 * g12
    reductions = np.zeros(plus_columns.shape[1])

    # Non-degenerate pairs: solve the 2x2 normal equations.
    ok = determinant > _EPS * np.maximum(g11 * g22, _EPS)
    with np.errstate(divide="ignore", invalid="ignore"):
        reductions_ok = (
            g22 * b1 * b1 - 2.0 * g12 * b1 * b2 + g11 * b2 * b2
        ) / determinant
    reductions[ok] = reductions_ok[ok]

    # Degenerate pairs (one hinge numerically redundant): best single column.
    single_plus = np.where(g11 > _EPS, b1 * b1 / np.maximum(g11, _EPS), 0.0)
    single_minus = np.where(g22 > _EPS, b2 * b2 / np.maximum(g22, _EPS), 0.0)
    best_single = np.maximum(single_plus, single_minus)
    reductions[~ok] = best_single[~ok]
    return reductions


def _forward_pass(
    design: np.ndarray,
    response: np.ndarray,
    max_degree: int,
    max_terms: int,
    n_knot_candidates: int,
    min_rss_decrease: float,
) -> list[BasisFunction]:
    n_samples = design.shape[0]
    n_features = design.shape[1]
    bases: list[BasisFunction] = [INTERCEPT_BASIS]
    basis_matrix = np.ones((n_samples, 1))
    q_matrix, _ = np.linalg.qr(basis_matrix)
    residual = response - q_matrix @ (q_matrix.T @ response)
    rss = float(residual @ residual)
    total_ss = max(rss, _EPS)

    feature_columns = [design[:, j] for j in range(n_features)]
    feature_is_constant = [
        bool(np.all(column == column[0])) for column in feature_columns
    ]

    while len(bases) + 2 <= max_terms:
        best = None  # (reduction, parent_index, feature, knot)
        for parent_index, parent in enumerate(bases):
            if parent.degree >= max_degree:
                continue
            parent_values = basis_matrix[:, parent_index]
            for feature in range(n_features):
                if feature_is_constant[feature] or parent.involves(feature):
                    continue
                column = feature_columns[feature]
                knots = _knot_candidates(
                    column, parent_values, n_knot_candidates
                )
                if knots.size == 0:
                    continue
                plus = parent_values[:, None] * np.maximum(
                    column[:, None] - knots[None, :], 0.0
                )
                minus = parent_values[:, None] * np.maximum(
                    knots[None, :] - column[:, None], 0.0
                )
                reductions = _pair_rss_reductions(
                    q_matrix, residual, plus, minus
                )
                local_best = int(np.argmax(reductions))
                reduction = float(reductions[local_best])
                if best is None or reduction > best[0]:
                    best = (
                        reduction,
                        parent_index,
                        feature,
                        float(knots[local_best]),
                    )

        if best is None or best[0] < min_rss_decrease * total_ss:
            break

        _, parent_index, feature, knot = best
        parent = bases[parent_index]
        new_plus = parent.extended(Hinge(feature=feature, knot=knot, sign=+1))
        new_minus = parent.extended(Hinge(feature=feature, knot=knot, sign=-1))
        for new_basis in (new_plus, new_minus):
            bases.append(new_basis)
        basis_matrix = evaluate_bases(bases, design)
        q_matrix, _ = np.linalg.qr(basis_matrix)
        residual = response - q_matrix @ (q_matrix.T @ response)
        new_rss = float(residual @ residual)
        if rss - new_rss < min_rss_decrease * total_ss:
            # The exact refit confirms no useful progress; undo and stop.
            bases = bases[:-2]
            break
        rss = new_rss

    return bases


def _gcv(rss: float, n_samples: int, n_terms: int, penalty: float) -> float:
    effective = n_terms + penalty * max(n_terms - 1, 0) / 2.0
    if effective >= n_samples:
        # More effective parameters than samples: the model is not
        # identifiable and must never win the pruning comparison.  (The
        # squared denominator would otherwise hide this case.)
        return np.inf
    denominator = (1.0 - effective / n_samples) ** 2
    return (rss / n_samples) / denominator


def _backward_pass(
    design: np.ndarray,
    response: np.ndarray,
    bases: list[BasisFunction],
    penalty: float,
) -> tuple[list[BasisFunction], np.ndarray, float, float]:
    """Prune bases to minimize GCV; returns (bases, coefficients, gcv, rss)."""
    n_samples = design.shape[0]

    def fit_subset(
        subset: list[BasisFunction],
    ) -> tuple[np.ndarray, float]:
        matrix = evaluate_bases(subset, design)
        coefficients, _, _, _ = np.linalg.lstsq(matrix, response, rcond=None)
        residual = response - matrix @ coefficients
        rss = float(residual @ residual)
        return coefficients, rss

    current = list(bases)
    coefficients, rss = fit_subset(current)
    best_bases = list(current)
    best_coefficients = coefficients
    best_rss = rss
    best_gcv = _gcv(rss, n_samples, len(current), penalty)

    while len(current) > 1:
        trial_best = None  # (gcv, index, coefficients, rss)
        for index in range(1, len(current)):  # never drop the intercept
            subset = current[:index] + current[index + 1:]
            subset_coefficients, subset_rss = fit_subset(subset)
            subset_gcv = _gcv(subset_rss, n_samples, len(subset), penalty)
            if trial_best is None or subset_gcv < trial_best[0]:
                trial_best = (subset_gcv, index, subset_coefficients, subset_rss)
        if trial_best is None:
            break
        gcv_value, index, coefficients, rss = trial_best
        current = current[:index] + current[index + 1:]
        if gcv_value < best_gcv:
            best_gcv = gcv_value
            best_bases = list(current)
            best_coefficients = coefficients
            best_rss = rss

    return best_bases, best_coefficients, best_gcv, best_rss


@contracted
def fit_mars(
    design: np.ndarray,
    response: np.ndarray,
    max_degree: int = 1,
    max_terms: int = 17,
    n_knot_candidates: int = 12,
    penalty: float = 3.0,
    min_rss_decrease: float = 1e-5,
) -> MARSModel:
    """Fit a MARS model.

    Parameters
    ----------
    design:
        ``(n, p)`` raw feature matrix (no intercept column).
    response:
        ``(n,)`` target vector.
    max_degree:
        1 gives the paper's piecewise-linear model (Eq. 2); 2 the quadratic
        model (Eq. 3).
    max_terms:
        Cap on basis functions (including the intercept) grown by the
        forward pass.
    n_knot_candidates:
        Quantile grid size per (parent, feature) candidate search.
    penalty:
        The GCV per-knot penalty "d" (Friedman recommends 2-4).
    min_rss_decrease:
        Forward pass stops when the best candidate improves training RSS by
        less than this fraction of the total sum of squares.
    """
    design = np.asarray(design, dtype=float)
    y = np.asarray(response, dtype=float).ravel()
    if design.ndim != 2:
        raise ValueError("design matrix must be 2-D")
    if design.shape[0] != y.shape[0]:
        raise ValueError("design and response lengths differ")
    if design.shape[0] < 8:
        raise ValueError("MARS needs at least 8 samples")
    if max_degree not in (1, 2):
        raise ValueError("max_degree must be 1 or 2")
    if max_terms < 3:
        raise ValueError("max_terms must allow at least one hinge pair")

    bases = _forward_pass(
        design,
        y,
        max_degree=max_degree,
        max_terms=max_terms,
        n_knot_candidates=n_knot_candidates,
        min_rss_decrease=min_rss_decrease,
    )
    pruned_bases, coefficients, gcv, rss = _backward_pass(
        design, y, bases, penalty=penalty
    )
    return MARSModel(
        bases=tuple(pruned_bases),
        coefficients=np.asarray(coefficients, dtype=float),
        gcv=float(gcv),
        training_rss=float(rss),
        n_samples=int(design.shape[0]),
        max_degree=max_degree,
    )
