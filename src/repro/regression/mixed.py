"""Random-intercept (mixed) models and the pooling-suitability test.

Section IV of the paper considers hierarchical Bayesian / mixed models as
the alternative to pooling all machines' data, and reports that "according
to the results of the recommended statistical tests in [Gelman et al.],
comparing the variances in the different models, pooling is a suitable
approach with no significant loss of accuracy."

This module provides the machinery behind that sentence:

* ``fit_random_intercept`` — the classic LSDV (least-squares with dummy
  variables) estimator: shared slopes across machines, one intercept per
  machine, absorbing machine-to-machine offsets;
* ``pooling_suitability`` — the variance comparison: if per-machine
  intercepts barely reduce residual variance relative to the fully pooled
  fit, pooling loses nothing and the simpler model wins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike

from repro.regression.ols import fit_ols


@dataclass(frozen=True)
class RandomInterceptFit:
    """Shared slopes + per-group intercepts."""

    slopes: np.ndarray
    group_intercepts: dict[object, float]
    grand_intercept: float
    residual_variance: float
    n_samples: int

    def predict(self, design: np.ndarray, groups: ArrayLike) -> np.ndarray:
        """Predict rows whose group labels are known.

        Unseen groups fall back to the grand intercept — the situation of
        applying a machine model to a machine never metered.
        """
        design = np.asarray(design, dtype=float)
        labels = np.asarray(groups)
        if design.shape[0] != labels.shape[0]:
            raise ValueError("design and groups lengths differ")
        intercepts = np.array([
            self.group_intercepts.get(group, self.grand_intercept)
            for group in labels
        ])
        return intercepts + design @ self.slopes


def fit_random_intercept(
    design: np.ndarray, response: np.ndarray, groups: ArrayLike
) -> RandomInterceptFit:
    """LSDV estimation: within-group demeaning for slopes, then per-group
    intercepts from the group-mean residuals."""
    design = np.asarray(design, dtype=float)
    y = np.asarray(response, dtype=float).ravel()
    labels = np.asarray(groups)
    if design.ndim != 2:
        raise ValueError("design must be 2-D")
    if not (design.shape[0] == y.shape[0] == labels.shape[0]):
        raise ValueError("design, response and groups lengths differ")

    unique_groups = list(dict.fromkeys(labels.tolist()))
    if len(unique_groups) < 1:
        raise ValueError("need at least one group")

    # Within-group demeaning removes the intercepts from the slope fit.
    design_centered = design.copy()
    y_centered = y.copy()
    group_masks: dict[object, np.ndarray] = {}
    for group in unique_groups:
        mask = labels == group
        group_masks[group] = mask
        design_centered[mask] -= design[mask].mean(axis=0)
        y_centered[mask] -= y[mask].mean()

    # No-intercept least squares on the demeaned data.
    slopes, _, _, _ = np.linalg.lstsq(design_centered, y_centered, rcond=None)

    group_intercepts: dict[object, float] = {}
    residual_sum = 0.0
    for group, mask in group_masks.items():
        offset = float(np.mean(y[mask] - design[mask] @ slopes))
        group_intercepts[group] = offset
        residuals = y[mask] - offset - design[mask] @ slopes
        residual_sum += float(residuals @ residuals)

    dof = y.size - design.shape[1] - len(unique_groups)
    residual_variance = residual_sum / dof if dof > 0 else float("nan")
    grand_intercept = float(np.mean(list(group_intercepts.values())))
    return RandomInterceptFit(
        slopes=np.asarray(slopes, dtype=float),
        group_intercepts=group_intercepts,
        grand_intercept=grand_intercept,
        residual_variance=float(residual_variance),
        n_samples=int(y.size),
    )


@dataclass(frozen=True)
class PoolingSuitability:
    """Outcome of the pooled-vs-mixed variance comparison."""

    pooled_variance: float
    mixed_variance: float
    intercept_spread_w: float
    """Standard deviation of the per-group intercepts, in watts."""

    @property
    def variance_ratio(self) -> float:
        """mixed / pooled residual variance (1.0 = pooling loses nothing)."""
        if self.pooled_variance <= 0:
            return 1.0
        return self.mixed_variance / self.pooled_variance

    @property
    def rmse_inflation(self) -> float:
        """How much larger the pooled model's rmse is than the mixed
        model's — the accuracy the paper's variance comparison is about."""
        if self.mixed_variance <= 0:
            return 1.0
        return float(np.sqrt(self.pooled_variance / self.mixed_variance))

    def pooling_is_suitable(self, max_rmse_inflation: float = 1.25) -> bool:
        """Pooling is suitable when dropping the per-machine intercepts
        costs only a marginal rmse increase (default: <25%, roughly one
        DRE point at the paper's accuracy levels — the same order the
        paper treats as negligible for the general feature set)."""
        return self.rmse_inflation <= max_rmse_inflation


def pooling_suitability(
    design: np.ndarray, response: np.ndarray, groups: ArrayLike
) -> PoolingSuitability:
    """Compare a fully pooled OLS fit against the random-intercept fit."""
    pooled = fit_ols(design, response)
    mixed = fit_random_intercept(design, response, groups)
    intercepts = np.array(list(mixed.group_intercepts.values()))
    return PoolingSuitability(
        pooled_variance=pooled.residual_variance,
        mixed_variance=mixed.residual_variance,
        intercept_spread_w=float(np.std(intercepts)),
    )
