"""Hinge basis functions for piecewise-linear (MARS) power models.

Equation 2 of the paper writes the piecewise-linear model in terms of basis
functions B+(x, t) = max(x - t, 0) and B-(x, t) = max(t - x, 0); the knots t
partition each feature's range into linear regions.  A ``BasisFunction`` is
a product of such hinges (degree 2 products give the quadratic model of
Eq. 3) and evaluates itself on a raw design matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analysis.arraysan import contracted


@dataclass(frozen=True)
class Hinge:
    """A single hinge h(x) over one feature.

    ``sign=+1`` gives max(x - knot, 0); ``sign=-1`` gives max(knot - x, 0).
    ``sign=0`` denotes the identity (a plain linear term, used when the
    forward pass decides a feature enters linearly).
    """

    feature: int
    knot: float
    sign: int

    def __post_init__(self) -> None:
        if self.sign not in (-1, 0, +1):
            raise ValueError(f"sign must be -1, 0 or +1, got {self.sign}")
        if self.feature < 0:
            raise ValueError("feature index must be nonnegative")

    def evaluate(self, design: np.ndarray) -> np.ndarray:
        column = design[:, self.feature]
        if self.sign == 0:
            return column.astype(float, copy=True)
        if self.sign > 0:
            return np.maximum(column - self.knot, 0.0)
        return np.maximum(self.knot - column, 0.0)

    def describe(self, feature_names: Optional[Sequence[str]] = None) -> str:
        name = (
            feature_names[self.feature]
            if feature_names is not None
            else f"x{self.feature}"
        )
        if self.sign == 0:
            return name
        if self.sign > 0:
            return f"max({name} - {self.knot:.4g}, 0)"
        return f"max({self.knot:.4g} - {name}, 0)"


@dataclass(frozen=True)
class BasisFunction:
    """A product of hinges; the empty product is the intercept basis."""

    hinges: tuple[Hinge, ...] = ()

    @property
    def degree(self) -> int:
        return len(self.hinges)

    @property
    def features(self) -> frozenset[int]:
        return frozenset(h.feature for h in self.hinges)

    def involves(self, feature: int) -> bool:
        return feature in self.features

    def evaluate(self, design: np.ndarray) -> np.ndarray:
        design = np.asarray(design, dtype=float)
        if design.ndim != 2:
            raise ValueError("design matrix must be 2-D")
        result = np.ones(design.shape[0])
        for hinge in self.hinges:
            result = result * hinge.evaluate(design)
        return result

    def extended(self, hinge: Hinge) -> "BasisFunction":
        """A new basis equal to this one times an extra hinge."""
        if self.involves(hinge.feature):
            raise ValueError(
                f"basis already involves feature {hinge.feature}; MARS bases "
                "use each feature at most once"
            )
        return BasisFunction(hinges=self.hinges + (hinge,))

    def describe(self, feature_names: Optional[Sequence[str]] = None) -> str:
        if not self.hinges:
            return "1"
        return " * ".join(h.describe(feature_names) for h in self.hinges)


INTERCEPT_BASIS = BasisFunction()


@contracted
def evaluate_bases(
    bases: Sequence[BasisFunction], design: np.ndarray
) -> np.ndarray:
    """Stack basis evaluations into an (n, len(bases)) matrix."""
    design = np.asarray(design, dtype=float)
    if not bases:
        return np.empty((design.shape[0], 0))
    return np.column_stack([basis.evaluate(design) for basis in bases])
