"""Batch-size-invariant numeric kernels for prediction hot paths.

The serving layer scores micro-batches whose composition depends on
arrival timing: one tick may score 3 rows for a machine, the next 40
rows across 12 machines.  ``numpy``'s ``@`` dispatches matrix-vector
products to BLAS ``gemv``, whose reduction order (and therefore the
last-ulp rounding) can change with the number of rows — so the same
sample could predict slightly different watts depending on which other
samples happened to share its batch.

``matvec`` routes the product through ``np.einsum``, which reduces each
output element independently with a fixed-order loop over the feature
axis.  The result is *partition-invariant*: predicting rows one at a
time, in micro-batches, or as one full matrix produces bit-identical
values.  Every model family's predict path uses it, which is what lets
``repro replay`` promise bit-identical online == offline predictions.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.arraysan import contracted, hot_path


@contracted
@hot_path
def matvec(matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """``matrix @ vector`` with a batch-size-invariant reduction.

    Each output element is an independent fixed-order sum over the
    feature axis, so ``matvec(m[i:j], v)`` equals ``matvec(m, v)[i:j]``
    bit-for-bit for any row partition.

    Contracted (see ``repro.analysis.signatures.ARRAY_CONTRACTS``):
    ``matrix`` is a C-contiguous float64 ``(n, k)``, ``vector`` a
    float64 ``(k,)``; anything else either changes rounding (dtype) or
    forces einsum to stride/copy (layout), both of which break the
    partition-invariance guarantee above.
    """
    return np.einsum("ij,j->i", matrix, vector)
