"""L1-regularized linear regression (lasso) by coordinate descent.

Step 3 of Algorithm 1 uses an L1 penalty to discard irrelevant counters in a
high-dimensional space before stepwise refinement.  We implement the
standard cyclic coordinate-descent solver on standardized predictors, plus a
geometric regularization path with BIC-based selection so callers do not
have to hand-tune the penalty per platform.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.arraysan import contracted


def soft_threshold(value: float, threshold: float) -> float:
    """The lasso shrinkage operator sign(v) * max(|v| - t, 0)."""
    if value > threshold:
        return value - threshold
    if value < -threshold:
        return value + threshold
    return 0.0


@dataclass(frozen=True)
class LassoFit:
    """A lasso solution on the original (unstandardized) scale."""

    intercept: float
    coefficients: np.ndarray
    alpha: float
    n_iterations: int
    converged: bool

    @property
    def selected(self) -> np.ndarray:
        """Indices of features with nonzero coefficients."""
        return np.flatnonzero(self.coefficients != 0.0)

    def predict(self, design: np.ndarray) -> np.ndarray:
        design = np.asarray(design, dtype=float)
        return self.intercept + design @ self.coefficients


def _standardize(
    design: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Center/scale columns; constant columns get unit scale (and zero z)."""
    mean = design.mean(axis=0)
    scale = design.std(axis=0)
    scale = np.where(scale > 0, scale, 1.0)
    return (design - mean) / scale, mean, scale


def max_alpha(design: np.ndarray, response: np.ndarray) -> float:
    """Smallest penalty that zeroes every coefficient (path entry point)."""
    design = np.asarray(design, dtype=float)
    y = np.asarray(response, dtype=float).ravel()
    z, _, _ = _standardize(design)
    centered = y - y.mean()
    n = y.size
    return float(np.max(np.abs(z.T @ centered)) / n) if design.size else 0.0


def _coordinate_descent(
    gram: np.ndarray,
    correlations: np.ndarray,
    column_norms: np.ndarray,
    alpha: float,
    beta0: np.ndarray,
    max_iterations: int,
    tolerance: float,
) -> tuple[np.ndarray, int, bool]:
    """Covariance-form cyclic coordinate descent.

    Works on the Gram matrix G = Z'Z/n and correlations c = Z'y/n, so each
    coordinate update costs O(p) regardless of sample count — important
    because Algorithm 1 runs hundreds of lasso fits over pooled 1 Hz data.
    """
    p = correlations.size
    beta = beta0.copy()
    gradient = correlations - gram @ beta  # c - G beta
    converged = False
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        max_delta = 0.0
        for j in range(p):
            norm = column_norms[j]
            if norm == 0.0:
                continue  # constant column: never selected
            old = beta[j]
            rho = gradient[j] + norm * old
            new = soft_threshold(rho, alpha) / norm
            if new != old:
                delta = new - old
                gradient -= gram[:, j] * delta
                beta[j] = new
                max_delta = max(max_delta, abs(delta))
        if max_delta < tolerance:
            converged = True
            break
    return beta, iteration, converged


@contracted
def fit_lasso(
    design: np.ndarray,
    response: np.ndarray,
    alpha: float,
    max_iterations: int = 1000,
    tolerance: float = 1e-7,
) -> LassoFit:
    """Solve (1/2n)||y - b0 - Xb||^2 + alpha * ||b||_1 by coordinate descent.

    Predictors are standardized internally; the returned coefficients are on
    the original scale.
    """
    design = np.asarray(design, dtype=float)
    y = np.asarray(response, dtype=float).ravel()
    if design.ndim != 2:
        raise ValueError("design matrix must be 2-D")
    n, p = design.shape
    if y.shape[0] != n:
        raise ValueError("design and response lengths differ")
    if alpha < 0:
        raise ValueError("alpha must be nonnegative")

    z, mean, scale = _standardize(design)
    y_mean = y.mean()
    gram = (z.T @ z) / n
    correlations = (z.T @ (y - y_mean)) / n
    column_norms = np.diag(gram).copy()

    beta, iteration, converged = _coordinate_descent(
        gram=gram,
        correlations=correlations,
        column_norms=column_norms,
        alpha=alpha,
        beta0=np.zeros(p),
        max_iterations=max_iterations,
        tolerance=tolerance,
    )

    coefficients = beta / scale
    intercept = float(y_mean - mean @ coefficients)
    return LassoFit(
        intercept=intercept,
        coefficients=coefficients,
        alpha=float(alpha),
        n_iterations=iteration,
        converged=converged,
    )


@dataclass(frozen=True)
class LassoPathResult:
    """The fit chosen from a regularization path plus the path itself."""

    best: LassoFit
    alphas: np.ndarray
    bics: np.ndarray
    fits: tuple[LassoFit, ...]


def fit_lasso_path(
    design: np.ndarray,
    response: np.ndarray,
    n_alphas: int = 30,
    alpha_min_ratio: float = 1e-3,
    max_features: int | None = None,
) -> LassoPathResult:
    """Fit a geometric alpha path and pick the fit with the lowest BIC.

    ``max_features`` optionally caps model size: path entries selecting more
    features are disqualified, which mirrors the paper's goal of reducing to
    "on the order of 10" counters per machine.
    """
    design = np.asarray(design, dtype=float)
    y = np.asarray(response, dtype=float).ravel()
    n = y.size
    alpha_top = max_alpha(design, y)
    if alpha_top <= 0:
        fit = fit_lasso(design, y, alpha=0.0)
        return LassoPathResult(
            best=fit,
            alphas=np.array([0.0]),
            bics=np.array([0.0]),
            fits=(fit,),
        )

    alphas = alpha_top * np.geomspace(1.0, alpha_min_ratio, n_alphas)

    # Precompute the covariance-form quantities once and warm-start each
    # path entry from the previous solution.
    z, mean, scale = _standardize(design)
    y_mean = y.mean()
    gram = (z.T @ z) / n
    correlations = (z.T @ (y - y_mean)) / n
    column_norms = np.diag(gram).copy()

    fits = []
    bics = []
    beta = np.zeros(design.shape[1])
    for alpha in alphas:
        beta, n_iterations, converged = _coordinate_descent(
            gram=gram,
            correlations=correlations,
            column_norms=column_norms,
            alpha=float(alpha),
            beta0=beta,
            max_iterations=1000,
            tolerance=1e-7,
        )
        coefficients = beta / scale
        intercept = float(y_mean - mean @ coefficients)
        fit = LassoFit(
            intercept=intercept,
            coefficients=coefficients,
            alpha=float(alpha),
            n_iterations=n_iterations,
            converged=converged,
        )
        residual = y - fit.predict(design)
        rss = float(residual @ residual)
        k = int(np.count_nonzero(fit.coefficients)) + 1
        bic = n * np.log(max(rss, 1e-12) / n) + k * np.log(n)
        if max_features is not None and k - 1 > max_features:
            bic = np.inf
        fits.append(fit)
        bics.append(bic)

    bics = np.asarray(bics)
    best_index = int(np.argmin(bics))
    return LassoPathResult(
        best=fits[best_index],
        alphas=alphas,
        bics=bics,
        fits=tuple(fits),
    )
