"""Backward stepwise elimination driven by the Wald significance test.

Steps 4 and 6 of Algorithm 1 iteratively remove features whose coefficient
cannot be distinguished from zero (low Wald confidence), refitting after
each removal.  The elimination is one-at-a-time — always the currently
least significant feature — which is the standard conservative variant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.regression.ols import OLSFit, fit_ols


@dataclass(frozen=True)
class StepwiseResult:
    """Outcome of a backward-elimination run."""

    selected: tuple[int, ...]
    eliminated: tuple[int, ...]
    fit: OLSFit
    history: tuple[tuple[int, float], ...]
    """Sequence of (feature_index, p_value) removals in order."""


def backward_eliminate(
    design: np.ndarray,
    response: np.ndarray,
    significance: float = 0.05,
    min_features: int = 1,
) -> StepwiseResult:
    """Remove features until every survivor passes the Wald test.

    Parameters
    ----------
    design:
        ``(n, p)`` matrix without intercept.
    response:
        ``(n,)`` target vector.
    significance:
        Wald p-value above which a coefficient is deemed insignificant.
    min_features:
        Never eliminate below this many features (the power models always
        retain at least one predictor).

    Returns the surviving feature indices (into the original design), the
    eliminated ones in removal order, and the final OLS fit on survivors.
    """
    design = np.asarray(design, dtype=float)
    if design.ndim != 2:
        raise ValueError("design matrix must be 2-D")
    n, p = design.shape
    if p == 0:
        raise ValueError("design matrix has no features")
    if min_features < 1:
        raise ValueError("min_features must be at least 1")

    remaining = list(range(p))
    removals: list[tuple[int, float]] = []

    while True:
        fit = fit_ols(design[:, remaining], response)
        if len(remaining) <= min_features:
            break
        slope_p_values = fit.p_values[1:]  # skip the intercept
        worst_local = int(np.argmax(slope_p_values))
        worst_p = float(slope_p_values[worst_local])
        if not np.isfinite(worst_p):
            worst_p = 1.0
        if worst_p <= significance:
            break
        removed = remaining.pop(worst_local)
        removals.append((removed, worst_p))

    return StepwiseResult(
        selected=tuple(remaining),
        eliminated=tuple(index for index, _ in removals),
        fit=fit,
        history=tuple(removals),
    )
