"""Ordinary least squares with inference statistics.

This is the regression workhorse for the linear and switching power models
(Eqs. 1 and 4) and for the stepwise-elimination steps of Algorithm 1, which
need per-coefficient Wald statistics.

OS performance counters span wildly different scales (bytes/second in the
billions next to utilization fractions), so the fit standardizes predictors
internally and solves via a single SVD with one consistent rank cutoff;
directions dropped as numerically unidentifiable yield infinite standard
errors (p-value 1), which is exactly the signal stepwise elimination needs
to discard a redundant counter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.analysis.arraysan import contracted
from repro.regression.kernels import matvec

_RCOND = 1e-8
"""Relative singular-value cutoff; below this a direction is unidentified."""


@contracted
def add_intercept(design: np.ndarray) -> np.ndarray:
    """Prepend a column of ones to a design matrix."""
    design = np.asarray(design, dtype=float)
    if design.ndim != 2:
        raise ValueError(f"design matrix must be 2-D, got {design.ndim}-D")
    ones = np.ones((design.shape[0], 1))
    return np.hstack([ones, design])


@dataclass(frozen=True)
class OLSFit:
    """A fitted least-squares model with inference statistics.

    Attributes
    ----------
    coefficients:
        ``(p + 1,)`` vector; index 0 is the intercept.
    standard_errors:
        Wald standard errors (``inf`` where the design was numerically
        rank-deficient and the coefficient is not identified).
    p_values:
        Two-sided Wald/t-test p-values for ``coefficient == 0``.
    residual_variance:
        Unbiased estimate of the noise variance.
    r_squared:
        Coefficient of determination on the training data.
    rank:
        Numerical rank of the centered/scaled predictor matrix plus one
        (the intercept).
    """

    coefficients: np.ndarray
    standard_errors: np.ndarray
    p_values: np.ndarray
    residual_variance: float
    r_squared: float
    rank: int
    n_samples: int

    @property
    def intercept(self) -> float:
        return float(self.coefficients[0])

    @property
    def slopes(self) -> np.ndarray:
        """Coefficients excluding the intercept."""
        return self.coefficients[1:]

    def predict(self, design: np.ndarray) -> np.ndarray:
        """Predict responses for a raw (no-intercept) design matrix."""
        design = np.asarray(design, dtype=float)
        if design.ndim != 2:
            raise ValueError("design matrix must be 2-D")
        if design.shape[1] != self.coefficients.size - 1:
            raise ValueError(
                f"design has {design.shape[1]} features but the model was "
                f"fitted with {self.coefficients.size - 1}"
            )
        # Batch-size-invariant kernel: serving scores the same rows in
        # arbitrary micro-batch groupings and must get identical watts.
        return self.intercept + matvec(design, self.slopes)


@contracted
def fit_ols(design: np.ndarray, response: np.ndarray) -> OLSFit:
    """Fit ``response ~ 1 + design`` by least squares.

    Parameters
    ----------
    design:
        ``(n, p)`` matrix of predictors *without* an intercept column.
    response:
        ``(n,)`` vector of observed values.
    """
    design = np.asarray(design, dtype=float)
    y = np.asarray(response, dtype=float).ravel()
    if design.ndim != 2:
        raise ValueError("design matrix must be 2-D")
    n, p = design.shape
    if y.shape[0] != n:
        raise ValueError(
            f"design has {n} rows but response has {y.shape[0]} entries"
        )
    if n < p + 1:
        raise ValueError(
            f"need at least {p + 1} samples to fit {p} features "
            f"plus an intercept, got {n}"
        )

    # Standardize: center and scale columns (constant columns get zero z).
    mean = design.mean(axis=0)
    scale = design.std(axis=0)
    scale_safe = np.where(scale > 0, scale, 1.0)
    z = (design - mean) / scale_safe
    y_mean = y.mean()
    y_centered = y - y_mean

    if p > 0:
        u, singular_values, vt = np.linalg.svd(z, full_matrices=False)
        if singular_values.size and singular_values[0] > 0:
            keep = singular_values > _RCOND * singular_values[0]
        else:
            keep = np.zeros_like(singular_values, dtype=bool)
        rank_z = int(keep.sum())
        inv_singular = np.where(keep, 1.0 / np.where(keep, singular_values, 1.0), 0.0)
        slopes_std = vt.T @ (inv_singular * (u.T @ y_centered))
        # Null-space participation per coefficient: how much of the
        # coefficient's direction was dropped as unidentifiable.
        dropped = ~keep
        null_participation = (
            (vt[dropped] ** 2).sum(axis=0) if dropped.any() else np.zeros(p)
        )
        var_std_diag = (vt.T ** 2 @ inv_singular**2)
    else:
        rank_z = 0
        slopes_std = np.zeros(0)
        null_participation = np.zeros(0)
        var_std_diag = np.zeros(0)

    fitted = y_mean + (z @ slopes_std if p else 0.0)
    residuals = y - fitted
    rss = float(residuals @ residuals)
    rank = rank_z + 1  # intercept
    dof = n - rank
    residual_variance = rss / dof if dof > 0 else float("nan")

    slopes = slopes_std / scale_safe
    # Constant columns carry no information: force an exact zero.
    slopes = np.where(scale > 0, slopes, 0.0)
    intercept = float(y_mean - mean @ slopes)

    with np.errstate(invalid="ignore"):
        slope_se_std = np.sqrt(np.maximum(residual_variance, 0.0) * var_std_diag)
    slope_se = slope_se_std / scale_safe
    unidentified = (null_participation > 1e-10) | (scale == 0)
    slope_se = np.where(unidentified, np.inf, slope_se)

    # Intercept variance: with centered predictors, var(b0) decomposes as
    # var(ybar) + m' Cov(slopes) m where m is the (mean/scale) vector.
    m = mean / scale_safe
    if p > 0 and np.isfinite(residual_variance):
        cov_std = (vt.T * inv_singular**2) @ vt * residual_variance
        intercept_var = residual_variance / n + float(m @ cov_std @ m)
    else:
        intercept_var = residual_variance / n if n else float("nan")
    intercept_se = float(np.sqrt(max(intercept_var, 0.0)))

    standard_errors = np.concatenate([[intercept_se], slope_se])
    coefficients = np.concatenate([[intercept], slopes])

    with np.errstate(divide="ignore", invalid="ignore"):
        t_statistics = np.where(
            standard_errors > 0, coefficients / standard_errors, np.inf
        )
    if dof > 0:
        p_values = 2.0 * stats.t.sf(np.abs(t_statistics), df=dof)
    else:
        p_values = np.ones_like(t_statistics)
    p_values = np.where(np.isinf(standard_errors), 1.0, p_values)
    p_values = np.where(
        (standard_errors == 0) & (coefficients == 0), 1.0, p_values
    )

    total_ss = float(y_centered @ y_centered)
    r_squared = 1.0 - rss / total_ss if total_ss > 0 else 0.0

    return OLSFit(
        coefficients=coefficients,
        standard_errors=standard_errors,
        p_values=np.asarray(p_values, dtype=float),
        residual_variance=float(residual_variance),
        r_squared=float(r_squared),
        rank=int(rank),
        n_samples=int(n),
    )
