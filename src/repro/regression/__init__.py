"""From-scratch regression toolkit: OLS + Wald, lasso, stepwise, MARS."""

from repro.regression.hinge import BasisFunction, Hinge, evaluate_bases
from repro.regression.lasso import (
    LassoFit,
    LassoPathResult,
    fit_lasso,
    fit_lasso_path,
    max_alpha,
    soft_threshold,
)
from repro.regression.mars import MARSModel, fit_mars
from repro.regression.mixed import (
    PoolingSuitability,
    RandomInterceptFit,
    fit_random_intercept,
    pooling_suitability,
)
from repro.regression.ols import OLSFit, add_intercept, fit_ols
from repro.regression.stepwise import StepwiseResult, backward_eliminate

__all__ = [
    "BasisFunction",
    "Hinge",
    "LassoFit",
    "LassoPathResult",
    "MARSModel",
    "OLSFit",
    "PoolingSuitability",
    "RandomInterceptFit",
    "StepwiseResult",
    "add_intercept",
    "backward_eliminate",
    "evaluate_bases",
    "fit_lasso",
    "fit_lasso_path",
    "fit_mars",
    "fit_ols",
    "fit_random_intercept",
    "max_alpha",
    "pooling_suitability",
    "soft_threshold",
]
