"""Content-addressed on-disk artifact cache.

Entries live at ``<root>/<key[:2]>/<key>.json`` and wrap the task result
with a SHA-256 checksum of its canonical JSON.  Reads verify the checksum
and treat any mismatch, truncation or parse error as a miss (the corrupt
file is removed so the recomputed artifact replaces it).  Writes go
through a temp file in the same directory followed by ``os.replace``, so
a crash mid-write can never leave a half-written entry behind.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from dataclasses import dataclass
from typing import Any

from repro.engine.hashing import canonical_json, canonical_result, sha256_hex

DEFAULT_CACHE_DIR = ".repro-cache"

MISS = object()
"""Sentinel returned by :meth:`ArtifactCache.get` for absent entries."""

_ENTRY_FORMAT = 1


def atomic_write_json(path: str | os.PathLike, payload: Any) -> None:
    """Write JSON so readers see either the old file or the new one.

    The payload is serialized to a temporary file in the target's
    directory, flushed and ``fsync``'d so the bytes are durable *before*
    the atomic rename — otherwise a crash between ``os.replace`` and the
    kernel writeback could leave an entry whose checksum the next read
    has to evict — then renamed over the destination.  On any failure
    the temp file is removed and nothing is left at ``path``.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


@dataclass(frozen=True)
class CacheStats:
    """Size summary for one cache directory."""

    root: str
    n_entries: int
    total_bytes: int

    def render(self) -> str:
        return (
            f"artifact cache at {self.root}: {self.n_entries} entries, "
            f"{self.total_bytes / 1024:.1f} KiB"
        )


class ArtifactCache:
    """A directory of checksummed, atomically-written task artifacts."""

    def __init__(self, root: str | os.PathLike = DEFAULT_CACHE_DIR):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Any:
        """The cached result for ``key``, or :data:`MISS`.

        A corrupted entry (bad JSON, wrong shape, or checksum mismatch)
        is deleted and reported as a miss so it gets recomputed, never
        served.
        """
        path = self._path(key)
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            return MISS
        except (OSError, json.JSONDecodeError):
            self._evict(path)
            return MISS
        if (
            not isinstance(entry, dict)
            or entry.get("format") != _ENTRY_FORMAT
            or entry.get("key") != key
            or "result" not in entry
            or entry.get("checksum")
            != sha256_hex(canonical_json(entry["result"], strict=False))
        ):
            self._evict(path)
            return MISS
        return entry["result"]

    def put(self, key: str, result: Any) -> None:
        """Store ``result`` (must be JSON-serializable) atomically.

        The result is normalized through the canonical JSON round-trip
        first, so what lands on disk is exactly what :meth:`get` will
        parse back — no tuple/list or int-key/str-key divergence.
        """
        result = canonical_result(result)
        atomic_write_json(self._path(key), {
            "format": _ENTRY_FORMAT,
            "key": key,
            "checksum": sha256_hex(canonical_json(result, strict=False)),
            "result": result,
        })

    @staticmethod
    def _evict(path: pathlib.Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def _entries(self) -> list[pathlib.Path]:
        return sorted(self.root.glob("*/*.json"))

    def stats(self) -> CacheStats:
        entries = self._entries()
        return CacheStats(
            root=str(self.root),
            n_entries=len(entries),
            total_bytes=sum(path.stat().st_size for path in entries),
        )

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        entries = self._entries()
        for path in entries:
            self._evict(path)
        for bucket in self.root.glob("*"):
            if bucket.is_dir() and not any(bucket.iterdir()):
                bucket.rmdir()
        return len(entries)
