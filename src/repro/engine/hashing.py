"""Canonical hashing: the engine's content-addressed identities.

Every cached artifact is keyed by a SHA-256 over a *canonical* JSON
rendering of (task function, config, root seed, code version).  Canonical
means: dict insertion order never matters, tuples and lists are
interchangeable, and numpy scalars collapse to their Python equivalents —
so two configs that compare equal always hash equal, while changing any
single field changes the key.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any

import numpy as np


def canonical_payload(value: Any, strict: bool = True) -> Any:
    """Normalize ``value`` into plain JSON types, deterministically.

    Mappings keep only their (string-keyed) items, sequences become
    lists, numpy scalars become Python scalars.  With ``strict`` (the
    config rule) non-finite floats are rejected loudly rather than
    hashed ambiguously; results use ``strict=False`` so a NaN metric is
    still representable.
    """
    if isinstance(value, dict):
        normalized = {}
        for key in value:
            if not isinstance(key, str):
                raise TypeError(
                    f"config keys must be strings, got {type(key).__name__}"
                )
            normalized[key] = canonical_payload(value[key], strict)
        return normalized
    if isinstance(value, (list, tuple)):
        return [canonical_payload(item, strict) for item in value]
    if isinstance(value, np.generic):
        return canonical_payload(value.item(), strict)
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if strict and not math.isfinite(value):
            raise ValueError("non-finite floats cannot be hashed canonically")
        return value
    if isinstance(value, str):
        return value
    raise TypeError(
        f"cannot canonicalize {type(value).__name__} for hashing"
    )


def _json_default(value: Any) -> Any:
    """``json.dumps`` fallback: collapse numpy values to Python ones."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(
        f"task result of type {type(value).__name__} is not JSON-serializable"
    )


def canonical_result(value: Any) -> Any:
    """Round-trip ``value`` through the cache's exact JSON encoding.

    A computed task result may contain tuples, int-keyed dicts, or numpy
    scalars; its warm-cache replay cannot (JSON has neither), so serving
    the raw object cold and the parsed JSON warm would violate the
    engine's "cold == warm bit-for-bit" contract.  The executor passes
    every cacheable result through this round-trip *before* returning or
    caching it, so both paths observe the identical canonical form
    (tuple → list, ``{1: ...}`` → ``{"1": ...}``, ``np.float64`` →
    ``float``).
    """
    return json.loads(json.dumps(value, allow_nan=True, default=_json_default))


def canonical_json(value: Any, strict: bool = True) -> str:
    """The unique JSON string for ``value`` (sorted keys, no whitespace)."""
    return json.dumps(
        canonical_payload(value, strict),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=not strict,
    )


def sha256_hex(text: str | bytes) -> str:
    if isinstance(text, str):
        text = text.encode("utf-8")
    return hashlib.sha256(text).hexdigest()


def cache_key(
    fn: str,
    config: dict,
    seed: int,
    code_version: str,
    task_key: str = "",
) -> str:
    """The content address of one task's artifact.

    Covers everything that determines the result: the task function, its
    full config, the run's root seed, the task's own key (which selects
    its derived seed stream), and the code version.
    """
    return sha256_hex(canonical_json({
        "fn": fn,
        "config": config,
        "seed": seed,
        "task_key": task_key,
        "code_version": code_version,
    }))


def digest_arrays(*arrays: np.ndarray) -> str:
    """SHA-256 over the shapes, dtypes and raw bytes of numpy arrays."""
    digest = hashlib.sha256()
    for array in arrays:
        array = np.ascontiguousarray(array)
        digest.update(str(array.shape).encode())
        digest.update(str(array.dtype).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()
