"""Process-wide engine defaults: parallelism, cache location, failure policy.

Library entry points (``sweep_models``, ``cross_validate``,
``execute_runs``) accept explicit ``jobs``/``cache``/``failure_policy``
arguments; when a caller passes ``None`` they fall back to the defaults
here, which the CLI sets from ``--jobs``/``--cache-dir``/``--no-cache``/
``--failure-policy`` and CI sets from the ``REPRO_JOBS`` /
``REPRO_CACHE_DIR`` / ``REPRO_FAILURE_POLICY`` environment variables.
That lets a flag on ``repro reproduce`` parallelize every sweep inside an
experiment driver without threading arguments through each one.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.engine.cache import ArtifactCache
from repro.engine.executor import FAIL_FAST, FAILURE_POLICIES

ENV_JOBS = "REPRO_JOBS"
ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_FAILURE_POLICY = "REPRO_FAILURE_POLICY"


@dataclass(frozen=True)
class EngineOptions:
    """Resolved engine defaults."""

    jobs: int = 1
    cache_dir: str | None = None
    failure_policy: str = FAIL_FAST

    def __post_init__(self):
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.failure_policy not in FAILURE_POLICIES:
            raise ValueError(
                f"failure_policy must be one of {FAILURE_POLICIES}, "
                f"got {self.failure_policy!r}"
            )

    def open_cache(self) -> ArtifactCache | None:
        if self.cache_dir is None:
            return None
        return ArtifactCache(self.cache_dir)


_default: EngineOptions | None = None


def set_default_options(
    jobs: int = 1,
    cache_dir: str | None = None,
    failure_policy: str = FAIL_FAST,
) -> EngineOptions:
    """Install process-wide defaults (the CLI's engine flags)."""
    global _default
    _default = EngineOptions(
        jobs=jobs, cache_dir=cache_dir, failure_policy=failure_policy
    )
    return _default


def reset_default_options() -> None:
    global _default
    _default = None


def default_options() -> EngineOptions:
    """The installed defaults, else environment-derived ones."""
    if _default is not None:
        return _default
    jobs_text = os.environ.get(ENV_JOBS, "")
    try:
        jobs = max(1, int(jobs_text))
    except ValueError:
        jobs = 1
    policy = os.environ.get(ENV_FAILURE_POLICY, "") or FAIL_FAST
    if policy not in FAILURE_POLICIES:
        policy = FAIL_FAST
    return EngineOptions(
        jobs=jobs,
        cache_dir=os.environ.get(ENV_CACHE_DIR) or None,
        failure_policy=policy,
    )


def resolve_jobs(jobs: int | None) -> int:
    return default_options().jobs if jobs is None else max(1, jobs)


def resolve_cache(cache: ArtifactCache | None | bool) -> ArtifactCache | None:
    """Resolve a caller's cache argument.

    ``None`` means "use the default" (which is no cache unless a default
    cache dir is configured); ``False`` means "explicitly no cache";
    an :class:`ArtifactCache` is used as-is.
    """
    if cache is False:
        return None
    if cache is None:
        return default_options().open_cache()
    return cache


def resolve_failure_policy(failure_policy: str | None) -> str:
    """``None`` means the process-wide default (``fail_fast`` unless
    configured); anything else must be a valid policy name."""
    if failure_policy is None:
        return default_options().failure_policy
    if failure_policy not in FAILURE_POLICIES:
        raise ValueError(
            f"failure_policy must be one of {FAILURE_POLICIES}, "
            f"got {failure_policy!r}"
        )
    return failure_policy
