"""Code-version fingerprint for cache invalidation.

A cached artifact is only valid for the source tree that produced it, so
the cache key folds in a digest over every ``.py`` file of the installed
``repro`` package.  Editing any module therefore invalidates every cache
entry — the conservative rule the golden-result suite relies on.

Set ``REPRO_CODE_VERSION`` to pin the fingerprint explicitly (e.g. to a
release tag) when the conservative whole-package rule is too eager.
"""

from __future__ import annotations

import hashlib
import os
import pathlib

_ENV_OVERRIDE = "REPRO_CODE_VERSION"
_cached_version: str | None = None


def compute_code_version() -> str:
    """Digest the package's own source files (sorted, path-prefixed)."""
    package_root = pathlib.Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


def code_version() -> str:
    """The process-wide code fingerprint (env override, else computed)."""
    override = os.environ.get(_ENV_OVERRIDE)
    if override:
        return override
    global _cached_version
    if _cached_version is None:
        _cached_version = compute_code_version()
    return _cached_version
