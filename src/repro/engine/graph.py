"""The work graph: tasks plus their declared dependencies.

``TaskGraph`` validates eagerly (duplicate keys at ``add`` time, unknown
dependencies and cycles at ``topological_order`` time) and orders
deterministically: ready tasks are emitted in insertion order, so the
serial executor visits tasks in exactly the order callers declared them,
independent of how the dependency structure interleaves.
"""

from __future__ import annotations

from collections import deque

from repro.engine.spec import TaskSpec


class GraphError(ValueError):
    """An invalid task graph (duplicate key, unknown dep, or cycle)."""


class TaskGraph:
    """A DAG of :class:`TaskSpec` keyed by task key."""

    def __init__(self, tasks: list[TaskSpec] | None = None):
        self._tasks: dict[str, TaskSpec] = {}
        for task in tasks or []:
            self.add(task)

    def add(self, task: TaskSpec) -> TaskSpec:
        if task.key in self._tasks:
            raise GraphError(f"duplicate task key {task.key!r}")
        self._tasks[task.key] = task
        return task

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, key: str) -> bool:
        return key in self._tasks

    def get(self, key: str) -> TaskSpec:
        return self._tasks[key]

    @property
    def keys(self) -> list[str]:
        return list(self._tasks)

    @property
    def tasks(self) -> list[TaskSpec]:
        return list(self._tasks.values())

    def dependents(self) -> dict[str, list[str]]:
        """Reverse adjacency: key -> keys that declared it as a dep."""
        reverse: dict[str, list[str]] = {key: [] for key in self._tasks}
        for task in self._tasks.values():
            for dep in task.deps:
                if dep not in self._tasks:
                    raise GraphError(
                        f"task {task.key!r} depends on unknown task {dep!r}"
                    )
                reverse[dep].append(task.key)
        return reverse

    def topological_order(self) -> list[TaskSpec]:
        """Kahn's algorithm with insertion-order tie-breaking.

        Raises :class:`GraphError` on unknown dependencies or cycles,
        naming the tasks involved.
        """
        reverse = self.dependents()
        in_degree = {
            key: len(task.deps) for key, task in self._tasks.items()
        }
        ready = deque(
            key for key, degree in in_degree.items() if degree == 0
        )
        order: list[TaskSpec] = []
        while ready:
            key = ready.popleft()
            order.append(self._tasks[key])
            for dependent in reverse[key]:
                in_degree[dependent] -= 1
                if in_degree[dependent] == 0:
                    ready.append(dependent)
        if len(order) != len(self._tasks):
            stuck = sorted(
                key for key, degree in in_degree.items() if degree > 0
            )
            raise GraphError(
                f"dependency cycle among tasks: {', '.join(stuck)}"
            )
        return order
